//! # exion
//!
//! Meta-crate of the EXION reproduction (HPCA 2025: "EXION: Exploiting
//! Inter- and Intra-Iteration Output Sparsity for Diffusion Models").
//!
//! This crate re-exports every subsystem so examples and downstream users can
//! depend on a single crate:
//!
//! * [`tensor`] — dense math substrate (matrices, activations, quantization),
//! * [`core`] — FFN-Reuse, eager prediction, ConMerge,
//! * [`model`] — the diffusion-workload zoo and generation pipeline,
//! * [`dram`] — the DRAM timing model,
//! * [`sim`] — the cycle-level EXION hardware simulator,
//! * [`gpu`] — analytical GPU and Cambricon-D baselines,
//! * [`serve`] — request-level serving simulation with continuous batching.
//!
//! # Examples
//!
//! ```
//! use exion::model::{Ablation, GenerationPipeline, ModelConfig, ModelKind};
//!
//! let config = ModelConfig::for_kind(ModelKind::Mld).shrunk(2, 3);
//! let policy = Ablation::FfnReuse.policy(&config);
//! let mut pipeline = GenerationPipeline::new(&config, policy, 42);
//! let (motion, report) = pipeline.generate("a person walks forward", 7);
//! assert_eq!(motion.rows(), config.sim.tokens);
//! assert!(report.ffn_ops().reduction() > 0.0);
//! ```

pub use exion_core as core;
pub use exion_dram as dram;
pub use exion_gpu as gpu;
pub use exion_model as model;
pub use exion_serve as serve;
pub use exion_sim as sim;
pub use exion_tensor as tensor;
