//! Event-calendar core pins: the heap-driven cluster loop must reproduce
//! the pre-refactor unit-scan loop bit for bit on the four standard
//! `BENCH_serve.json` scenarios (fixed seeds, sinks on and off), idle
//! units must execute nothing during arrival gaps, metric snapshots must
//! land on exact cadence multiples, and conservation + determinism must
//! hold on randomized fleet-sized placements.

use exion::serve::{MemorySink, ServeReport, ServeSimulator, SliceKind};
use exion_bench::experiments::serve_sweep::standard_scenarios;
use proptest::prelude::*;

/// FNV-style fold over the deterministic completion stream — the same
/// fingerprint `tests/serving.rs` pins policy refactors with: completion
/// ids, clocks (f64 bit patterns), instance assignments, and preemption
/// counts.
fn fingerprint(report: &ServeReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(report.arrivals as u64);
    for c in &report.completions {
        mix(c.id);
        mix(c.finished_ms.to_bits());
        mix(c.admitted_ms.to_bits());
        mix(c.instance as u64);
        mix(c.preemptions as u64);
    }
    h
}

/// The horizon the goldens below were captured at.
const GOLDEN_HORIZON_MS: f64 = 1_200.0;

/// Fingerprints of the four standard scenarios, captured on the
/// pre-event-core unit-scan loop (same toolchain, same seeds) immediately
/// before the calendar refactor. The event core must reproduce each run
/// bit for bit, with and without a telemetry sink attached.
const GOLDEN_FINGERPRINTS: [(&str, u64); 4] = [
    ("poisson_90pct_exion4", 0xfcd3_cad0_f4b6_c883),
    ("bursty_preemptive_edf_exion24", 0x47d0_5a21_314b_51d2),
    ("tp2_gang_video_exion4", 0xaf23_68ff_4876_2c10),
    ("planned_diurnal_exion4", 0x7494_0884_e39d_a282),
];

#[test]
fn standard_scenario_fingerprints_survive_the_event_core() {
    for (scenario, config, trace) in standard_scenarios(GOLDEN_HORIZON_MS) {
        let golden = GOLDEN_FINGERPRINTS
            .iter()
            .find(|(name, _)| *name == scenario)
            .map(|&(_, fp)| fp)
            .expect("every standard scenario carries a golden");
        let untraced = ServeSimulator::new(config.clone()).run(&trace);
        let mut sink = MemorySink::new();
        let traced = ServeSimulator::new(config.clone()).run_traced(&trace, &mut sink);
        assert!(!sink.is_empty(), "{scenario}: traced run must emit");
        assert_eq!(
            fingerprint(&untraced),
            golden,
            "{scenario}: untraced fingerprint {:#018x} diverged from the \
             pre-refactor golden",
            fingerprint(&untraced),
        );
        assert_eq!(
            fingerprint(&traced),
            golden,
            "{scenario}: traced fingerprint diverged from the golden"
        );
        assert_eq!(untraced, traced, "{scenario}: sink perturbed the run");
        // Latency attribution is a pure observer: switching it off must
        // change nothing but the report's attribution field itself.
        assert!(
            untraced.attribution.is_some(),
            "{scenario}: attribution is on by default"
        );
        let mut disabled_config = config;
        disabled_config.attribution = false;
        let disabled = ServeSimulator::new(disabled_config).run(&trace);
        assert!(
            disabled.attribution.is_none(),
            "{scenario}: disabled run must not attribute"
        );
        assert_eq!(
            fingerprint(&disabled),
            golden,
            "{scenario}: attribution perturbed the simulation"
        );
        assert_eq!(
            disabled.completions, untraced.completions,
            "{scenario}: attribution perturbed the completion stream"
        );
    }
}

/// A long arrival gap must cost nothing: with the calendar core, an idle
/// unit has no scheduled event until the next arrival wakes it, so no
/// busy slice may start inside the gap and the iteration count must be
/// exactly what the two bursts of work need.
#[test]
fn idle_units_execute_nothing_during_an_arrival_gap() {
    use exion::serve::{ServeConfig, TraceConfig, TrafficPattern, WorkloadMix};
    use exion::sim::config::HwConfig;

    // Two short bursts separated by a 60 s dead zone. The bursty MMPP at
    // a tiny calm rate would be fragile; a hand-made gap is exact: run
    // one Poisson trace, then re-run with the same trace shifted — here
    // we just use a very low rate over a long horizon so gaps dominate.
    let config = ServeConfig::new(HwConfig::exion4());
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson { rate_rps: 0.05 },
        horizon_ms: 120_000.0,
        seed: 0x6A9,
        mix: WorkloadMix::text_to_motion(),
    };
    let mut sink = MemorySink::new();
    let mut sim = ServeSimulator::new(config);
    let report = sim.run_traced(&trace, &mut sink);
    assert!(report.arrivals >= 2, "need at least one gap");
    assert_eq!(report.completed, report.arrivals);
    let profile = sim.last_run_profile().expect("profile");
    // Every iteration carries at least one request row: the unit never
    // busy-waits through empty simulated time.
    let max_steps: u64 = report.completions.iter().map(|c| c.steps as u64).sum();
    assert!(
        profile.iterations <= max_steps,
        "{} iterations for {} total requested steps: the idle path \
         executed work during gaps",
        profile.iterations,
        max_steps
    );
    // The calendar executes a bounded number of events: unit boundaries
    // (≤ one per iteration + one wake per arrival + terminal pops), never
    // one per simulated millisecond.
    assert!(
        profile.events_executed <= profile.iterations + 4 * report.arrivals as u64 + 16,
        "{} events for {} iterations / {} arrivals",
        profile.events_executed,
        profile.iterations,
        report.arrivals
    );
    // No busy slice may lie strictly inside an arrival gap: collect the
    // arrival times, and check every busy slice starts at or after an
    // arrival that is still in flight.
    let mut arrivals: Vec<f64> = sink
        .spans
        .iter()
        .filter(|s| matches!(s.event, exion::serve::RequestEvent::Arrival))
        .map(|s| s.at_ms)
        .collect();
    arrivals.sort_by(f64::total_cmp);
    let completions: Vec<(f64, f64)> = report
        .completions
        .iter()
        .map(|c| (c.arrival_ms, c.finished_ms))
        .collect();
    for s in sink.slices.iter().filter(|s| s.kind == SliceKind::Busy) {
        let covered = completions
            .iter()
            .any(|&(a, f)| s.start_ms >= a - 1e-9 && s.start_ms < f + 1e-9);
        assert!(
            covered,
            "busy slice at {} ms lies outside every request's lifetime",
            s.start_ms
        );
    }
}

/// `stats_interval_ms` is a recurring calendar event: every snapshot
/// timestamp must be an exact multiple of the cadence.
#[test]
fn metric_snapshots_land_on_exact_cadence_multiples() {
    use exion::serve::{ServeConfig, TraceConfig, TrafficPattern, WorkloadMix};
    use exion::sim::config::HwConfig;

    let interval = 75.0;
    let config = ServeConfig::builder(HwConfig::exion4())
        .stats_interval_ms(interval)
        .build();
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson { rate_rps: 30.0 },
        horizon_ms: 1_000.0,
        seed: 0x57A7,
        mix: WorkloadMix::text_to_motion(),
    };
    let report = ServeSimulator::new(config).run(&trace);
    assert!(report.series.len() >= 5, "cadence must fire repeatedly");
    for (i, snap) in report.series.iter().enumerate() {
        let k = (snap.at_ms / interval).round();
        assert!(
            (snap.at_ms - k * interval).abs() < 1e-9,
            "snapshot {i} at {} ms is not a multiple of {interval} ms",
            snap.at_ms
        );
        assert_eq!(snap.at_ms, (i as f64 + 1.0) * interval, "gap in cadence");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Calendar-core invariants on randomized fleet-sized placements:
    /// conservation (served + shed == arrivals, demanded rows == executed
    /// rows) and determinism (two runs of the same config produce the
    /// same fingerprint, so heap tie-breaking is total, not incidental).
    #[test]
    fn fleet_sized_runs_conserve_requests_and_are_deterministic(
        replicas in 1usize..12,
        gangs in 0usize..4,
        rate_decirps in 50u64..400,
        seed_shift in 0u64..1_000,
    ) {
        use exion::serve::{
            Placement, PartitionStrategy, ServeConfig, TraceConfig, TrafficPattern,
            WorkloadMix,
        };
        use exion::sim::config::HwConfig;

        let placement = Placement::mixed(replicas, gangs, PartitionStrategy::Tensor { ways: 2 });
        let config = ServeConfig::builder(HwConfig::exion4())
            .placement(placement)
            .policy_name("edf")
            .build();
        let trace = TraceConfig {
            pattern: TrafficPattern::Poisson { rate_rps: rate_decirps as f64 / 10.0 },
            horizon_ms: 400.0,
            seed: 0xF1EE7 ^ seed_shift,
            mix: WorkloadMix::text_to_motion(),
        };
        let report = ServeSimulator::new(config.clone()).run(&trace);
        prop_assert_eq!(
            report.completed + report.shed_requests,
            report.arrivals,
            "served + shed must equal arrivals once the cluster drains"
        );
        let demanded: u64 = report.completions.iter().map(|c| c.steps as u64).sum();
        let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
        prop_assert_eq!(demanded, executed, "row conservation across the fleet");
        let rerun = ServeSimulator::new(config).run(&trace);
        prop_assert_eq!(
            fingerprint(&report),
            fingerprint(&rerun),
            "same config + seed must replay bit for bit"
        );
    }
}
