//! Scheduler invariants of the serving simulator: conservation (every
//! admitted request completes exactly once), monotonicity (mean latency is
//! non-decreasing in offered load), and determinism (identical seeds give
//! identical traces and reports).

use std::collections::HashSet;

use exion::serve::{Policy, ServeConfig, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix};
use exion::sim::config::HwConfig;

fn motion_trace(rate_rps: f64, seed: u64) -> TraceConfig {
    TraceConfig {
        pattern: TrafficPattern::Poisson { rate_rps },
        horizon_ms: 1_500.0,
        seed,
        mix: WorkloadMix::text_to_motion(),
    }
}

#[test]
fn conservation_every_request_completes_exactly_once() {
    for policy in Policy::ALL {
        for instances in [1, 3] {
            let mut sim = ServeSimulator::new(
                ServeConfig::new(HwConfig::exion4())
                    .with_policy(policy)
                    .with_instances(instances),
            );
            let capacity = sim.capacity_estimate_rps(&WorkloadMix::text_to_motion());
            let report = sim.run(&motion_trace(0.8 * capacity, 11));
            assert!(report.arrivals > 0);
            assert_eq!(
                report.completed,
                report.arrivals,
                "{} x{instances}: dropped or duplicated requests",
                policy.name()
            );
            let ids: HashSet<u64> = report.completions.iter().map(|c| c.id).collect();
            assert_eq!(ids.len(), report.completed, "duplicate completion ids");
            for c in &report.completions {
                assert!(c.arrival_ms <= c.admitted_ms, "admitted before arrival");
                assert!(c.admitted_ms < c.finished_ms, "finished before admission");
            }
        }
    }
}

#[test]
fn mean_latency_monotone_in_arrival_rate() {
    let mut sim = ServeSimulator::new(ServeConfig::new(HwConfig::exion4()));
    let capacity = sim.capacity_estimate_rps(&WorkloadMix::text_to_motion());
    let mut prev = 0.0f64;
    for frac in [0.25, 0.5, 1.0, 1.5] {
        let report = sim.run(&motion_trace(frac * capacity, 7));
        let mean = report.latency.mean;
        // Small tolerance: traces at different rates are different discrete
        // samples, so exact monotonicity only holds in expectation.
        assert!(
            mean >= 0.95 * prev,
            "mean latency fell from {prev} to {mean} at load {frac}"
        );
        prev = prev.max(mean);
    }
    // Across the sweep the knee must be visible end to end.
    assert!(prev > 0.0);
}

#[test]
fn identical_seeds_identical_reports() {
    let config = ServeConfig::new(HwConfig::exion24()).with_policy(Policy::Edf);
    let trace = motion_trace(40.0, 123);
    let a = ServeSimulator::new(config).run(&trace);
    let b = ServeSimulator::new(config).run(&trace);
    assert_eq!(a, b, "same seed and config must reproduce bit-identically");

    let c = ServeSimulator::new(config).run(&motion_trace(40.0, 124));
    assert_ne!(a.completions, c.completions, "different seeds must differ");
}

#[test]
fn sparsity_aware_preserves_sparse_iterations() {
    // Single-tenant image traffic at steady load: the sparsity-aware gate
    // must never run fewer sparse-phase iterations than free admission.
    let run_with = |policy: Policy| {
        let mut sim =
            ServeSimulator::new(ServeConfig::new(HwConfig::exion24()).with_policy(policy));
        let capacity = sim.capacity_estimate_rps(&WorkloadMix::text_to_image());
        sim.run(&TraceConfig {
            pattern: TrafficPattern::Poisson {
                rate_rps: 0.85 * capacity,
            },
            horizon_ms: 1_500.0,
            seed: 31,
            mix: WorkloadMix::text_to_image(),
        })
    };
    let fcfs = run_with(Policy::Fcfs);
    let aligned = run_with(Policy::SparsityAware);
    assert!(
        aligned.sparse_iteration_frac >= fcfs.sparse_iteration_frac,
        "aligned {} vs fcfs {}",
        aligned.sparse_iteration_frac,
        fcfs.sparse_iteration_frac
    );
}

#[test]
fn more_instances_cut_tail_latency_at_fixed_load() {
    let report_for = |instances: usize| {
        let mut sim =
            ServeSimulator::new(ServeConfig::new(HwConfig::exion4()).with_instances(instances));
        // Load that saturates one instance but not three.
        let one_cap = {
            let mut probe = ServeSimulator::new(ServeConfig::new(HwConfig::exion4()));
            probe.capacity_estimate_rps(&WorkloadMix::text_to_motion())
        };
        sim.run(&motion_trace(1.2 * one_cap, 99))
    };
    let single = report_for(1);
    let triple = report_for(3);
    assert!(
        triple.latency.p99 < single.latency.p99,
        "p99 {} vs {}",
        triple.latency.p99,
        single.latency.p99
    );
    assert!(triple.throughput_rps >= single.throughput_rps);
}
