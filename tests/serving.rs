//! Scheduler, residency, and control-plane invariants of the serving
//! simulator: conservation (every admitted request completes exactly once;
//! preempt/resume never loses or duplicates a DDIM step; under shedding,
//! served + shed + in-flight == arrivals), monotonicity (mean latency is
//! non-decreasing in offered load), determinism (identical seeds give
//! identical traces and reports), GSC capacity safety (occupancy never
//! exceeds capacity under any op sequence), the preemption win (the urgent
//! tenant class's p95 under preemptive EDF beats non-preemptive EDF and
//! FCFS on the seeded bursty trace), degrade-budget safety (a degraded
//! request's step budget stays deadline-feasible and above the quality
//! floor), and the trait-based control plane's exact parity with the
//! pre-refactor enum scheduler on a fixed seed.

use std::collections::HashSet;

use exion::model::config::{ModelConfig, ModelKind};
use exion::serve::{
    gsc_feasible, policy, CostModel, Placement, PlacementPlanner, PlannerConfig, ServeConfig,
    ServeReport, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix,
};
use exion::sim::config::HwConfig;
use exion::sim::partition::{Interconnect, PartitionPlan, PartitionStrategy, Topology};
use exion::sim::residency::{model_weight_bytes, EvictionPolicy, GscCache, GscObject};
use exion_bench::experiments::serve_sweep::{bursty_trace, bursty_trace_over};
use proptest::prelude::*;

fn motion_trace(rate_rps: f64, seed: u64) -> TraceConfig {
    TraceConfig {
        pattern: TrafficPattern::Poisson { rate_rps },
        horizon_ms: 1_500.0,
        seed,
        mix: WorkloadMix::text_to_motion(),
    }
}

#[test]
fn conservation_every_request_completes_exactly_once() {
    for policy in policy::builtin_policies() {
        for instances in [1, 3] {
            let mut sim = ServeSimulator::new(
                ServeConfig::builder(HwConfig::exion4())
                    .policy_arc(policy.clone())
                    .instances(instances)
                    .build(),
            );
            let capacity = sim.capacity_estimate_rps(&WorkloadMix::text_to_motion());
            let report = sim.run(&motion_trace(0.8 * capacity, 11));
            assert!(report.arrivals > 0);
            assert_eq!(
                report.completed,
                report.arrivals,
                "{} x{instances}: dropped or duplicated requests",
                policy.name()
            );
            let ids: HashSet<u64> = report.completions.iter().map(|c| c.id).collect();
            assert_eq!(ids.len(), report.completed, "duplicate completion ids");
            for c in &report.completions {
                assert!(c.arrival_ms <= c.admitted_ms, "admitted before arrival");
                assert!(c.admitted_ms < c.finished_ms, "finished before admission");
            }
        }
    }
}

#[test]
fn mean_latency_monotone_in_arrival_rate() {
    let mut sim = ServeSimulator::new(ServeConfig::new(HwConfig::exion4()));
    let capacity = sim.capacity_estimate_rps(&WorkloadMix::text_to_motion());
    let mut prev = 0.0f64;
    for frac in [0.25, 0.5, 1.0, 1.5] {
        let report = sim.run(&motion_trace(frac * capacity, 7));
        let mean = report.latency.mean;
        // Small tolerance: traces at different rates are different discrete
        // samples, so exact monotonicity only holds in expectation.
        assert!(
            mean >= 0.95 * prev,
            "mean latency fell from {prev} to {mean} at load {frac}"
        );
        prev = prev.max(mean);
    }
    // Across the sweep the knee must be visible end to end.
    assert!(prev > 0.0);
}

#[test]
fn identical_seeds_identical_reports() {
    let config = ServeConfig::builder(HwConfig::exion24())
        .policy_name("edf")
        .build();
    let trace = motion_trace(40.0, 123);
    let a = ServeSimulator::new(config.clone()).run(&trace);
    let b = ServeSimulator::new(config.clone()).run(&trace);
    assert_eq!(a, b, "same seed and config must reproduce bit-identically");

    let c = ServeSimulator::new(config).run(&motion_trace(40.0, 124));
    assert_ne!(a.completions, c.completions, "different seeds must differ");
}

#[test]
fn registry_and_struct_configs_are_equivalent() {
    // The serde-able name path and the concrete-type path must configure
    // the identical control plane.
    let trace = motion_trace(45.0, 321);
    let by_name = ServeSimulator::new(
        ServeConfig::builder(HwConfig::exion4())
            .policy_name("preemptive-edf")
            .admission_name("deadline")
            .build(),
    )
    .run(&trace);
    let by_struct = ServeSimulator::new(
        ServeConfig::builder(HwConfig::exion4())
            .policy(exion::serve::PreemptiveEdf)
            .admission(exion::serve::DeadlineFeasibility::default())
            .build(),
    )
    .run(&trace);
    assert_eq!(by_name, by_struct);
}

#[test]
fn sparsity_aware_preserves_sparse_iterations() {
    // Single-tenant image traffic at steady load: the sparsity-aware gate
    // must never run fewer sparse-phase iterations than free admission.
    let run_with = |policy: &str| {
        let mut sim = ServeSimulator::new(
            ServeConfig::builder(HwConfig::exion24())
                .policy_name(policy)
                .build(),
        );
        let capacity = sim.capacity_estimate_rps(&WorkloadMix::text_to_image());
        sim.run(&TraceConfig {
            pattern: TrafficPattern::Poisson {
                rate_rps: 0.85 * capacity,
            },
            horizon_ms: 1_500.0,
            seed: 31,
            mix: WorkloadMix::text_to_image(),
        })
    };
    let fcfs = run_with("fcfs");
    let aligned = run_with("sparsity-aware");
    assert!(
        aligned.sparse_iteration_frac >= fcfs.sparse_iteration_frac,
        "aligned {} vs fcfs {}",
        aligned.sparse_iteration_frac,
        fcfs.sparse_iteration_frac
    );
}

/// Runs the seeded bursty-MMPP multi-tenant trace (the acceptance trace of
/// the preemption work) under `policy` on EXION24 at 85% load.
fn bursty_run(policy: &str) -> exion::serve::ServeReport {
    let mut sim = ServeSimulator::new(
        ServeConfig::builder(HwConfig::exion24())
            .policy_name(policy)
            .build(),
    );
    let capacity = sim.capacity_estimate_rps(&WorkloadMix::multi_tenant());
    sim.run(&bursty_trace(capacity, 0.85, 2_000.0))
}

#[test]
fn preemption_conserves_ddim_steps() {
    let report = bursty_run("preemptive-edf");
    assert_eq!(report.completed, report.arrivals, "dropped or duplicated");
    assert!(report.preemptions > 0, "the bursty trace must preempt");
    // Every executed batch row is one DDIM step of one request; park/resume
    // must neither lose nor duplicate any: the rows the cluster executed
    // equal exactly the steps the completed requests demanded.
    let demanded: u64 = report
        .completions
        .iter()
        .map(|c| ModelConfig::for_kind(c.model).iterations as u64)
        .sum();
    let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
    assert_eq!(demanded, executed, "DDIM steps not conserved");
    // Preempted requests really resumed rather than restarting.
    assert!(report.completions.iter().any(|c| c.preemptions > 0));
}

#[test]
fn preemptive_edf_protects_the_urgent_class() {
    let fcfs = bursty_run("fcfs");
    let edf = bursty_run("edf");
    let preemptive = bursty_run("preemptive-edf");
    assert!(preemptive.preemptions > 0);
    assert_eq!(edf.preemptions, 0, "non-preemptive EDF must not park");
    // The urgent (3x-SLO) tenants' p95 must strictly improve over
    // non-preemptive EDF, and never regress against FCFS.
    for kind in [ModelKind::Mld, ModelKind::Mdm] {
        let pre = preemptive.class_latency(kind).p95;
        let non = edf.class_latency(kind).p95;
        let base = fcfs.class_latency(kind).p95;
        assert!(
            pre < non,
            "{}: preemptive p95 {pre} vs edf {non}",
            kind.name()
        );
        assert!(
            pre <= base,
            "{}: preemptive p95 {pre} vs fcfs {base}",
            kind.name()
        );
    }
    // Residency accounting is live and reported.
    assert!(preemptive.residency_hit_rate > 0.0 && preemptive.residency_hit_rate < 1.0);
    assert!(preemptive.weight_refill_bytes > 0);
}

#[test]
fn eviction_policies_preserve_conservation() {
    // Two instances: parked requests may migrate across GSCs on resume.
    for eviction in [EvictionPolicy::Lru, EvictionPolicy::CostAware] {
        let mut sim = ServeSimulator::new(
            ServeConfig::builder(HwConfig::exion4())
                .policy_name("preemptive-edf")
                .eviction(eviction)
                .instances(2)
                .build(),
        );
        let capacity = sim.capacity_estimate_rps(&WorkloadMix::multi_tenant());
        let report = sim.run(&bursty_trace(capacity, 1.7, 1_200.0));
        assert_eq!(report.completed, report.arrivals, "{}", eviction.name());
        let demanded: u64 = report
            .completions
            .iter()
            .map(|c| ModelConfig::for_kind(c.model).iterations as u64)
            .sum();
        let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
        assert_eq!(demanded, executed, "{}", eviction.name());
    }
}

/// Tiny deterministic generator for the cache op fuzzer (the vendored
/// proptest has no collection strategies, so the op stream derives from a
/// sampled seed).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The GSC invariant: whatever sequence of requests (pinned or not),
    /// removals, and pin flips runs against the cache, occupancy never
    /// exceeds capacity and resident fractions stay in [0, 1].
    #[test]
    fn gsc_occupancy_never_exceeds_capacity(
        seed in 0u64..100_000,
        capacity_mib in 1u64..96,
        ops in 16usize..120,
    ) {
        const MIB: u64 = 1024 * 1024;
        let mut rng = XorShift(seed);
        for policy in [EvictionPolicy::Lru, EvictionPolicy::CostAware] {
            let mut gsc = GscCache::new(capacity_mib * MIB, policy);
            for _ in 0..ops {
                let obj = if rng.next().is_multiple_of(2) {
                    GscObject::Weights(ModelKind::ALL[(rng.next() % 7) as usize])
                } else {
                    GscObject::Latent(rng.next() % 12)
                };
                match rng.next() % 8 {
                    0 => {
                        gsc.remove(obj);
                    }
                    1 => gsc.set_pinned(obj, rng.next().is_multiple_of(2)),
                    _ => {
                        // Footprints up to 2x capacity exercise the
                        // partial-residency truncation path.
                        let bytes = rng.next() % (2 * capacity_mib * MIB);
                        let cost = (rng.next() % 1000) as f64 / 100.0;
                        let pinned = rng.next().is_multiple_of(4);
                        let out = gsc.request(obj, bytes, cost, pinned);
                        prop_assert!(out.resident_bytes <= bytes);
                        prop_assert!(out.prior_bytes + out.refilled_bytes == bytes);
                    }
                }
                prop_assert!(
                    gsc.occupancy_bytes() <= gsc.capacity_bytes(),
                    "occupancy {} over capacity {} under {}",
                    gsc.occupancy_bytes(),
                    gsc.capacity_bytes(),
                    policy.name()
                );
                let frac = gsc.resident_fraction(obj);
                prop_assert!((0.0..=1.0).contains(&frac));
            }
        }
    }
}

#[test]
fn size_skew_mix_separates_cost_aware_eviction_from_lru() {
    // VideoCrafter2's working set dwarfs the GSC while MLD fits many times
    // over; under preemption the parked latents give eviction a real
    // choice, and ranking victims by refill cost keeps more of the
    // expensive tenant resident than recency does. (On the multi-tenant
    // mix the refill costs are too similar for the policies to diverge —
    // this mix exists to separate them.)
    let run_with = |eviction: EvictionPolicy| {
        let mut sim = ServeSimulator::new(
            ServeConfig::builder(HwConfig::exion4())
                .policy_name("preemptive-edf")
                .eviction(eviction)
                .build(),
        );
        let capacity = sim.capacity_estimate_rps(&WorkloadMix::size_skew());
        sim.run(&TraceConfig {
            pattern: TrafficPattern::Bursty {
                rate_rps: 1.0,
                burst_multiplier: 4.0,
                mean_dwell_ms: 400.0,
            }
            .with_mean_rps(0.9 * capacity),
            horizon_ms: 2_500.0,
            seed: 0x5E17E,
            mix: WorkloadMix::size_skew(),
        })
    };
    let lru = run_with(EvictionPolicy::Lru);
    let cost_aware = run_with(EvictionPolicy::CostAware);
    assert_eq!(lru.completed, lru.arrivals);
    assert_eq!(cost_aware.completed, cost_aware.arrivals);
    assert!(lru.preemptions > 0, "the skewed bursty trace must preempt");
    assert!(
        cost_aware.weight_refill_bytes < lru.weight_refill_bytes,
        "cost-aware refilled {} vs LRU {}",
        cost_aware.weight_refill_bytes,
        lru.weight_refill_bytes
    );
    assert!(
        cost_aware.residency_hit_rate > lru.residency_hit_rate,
        "cost-aware hit {} vs LRU {}",
        cost_aware.residency_hit_rate,
        lru.residency_hit_rate
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharding invariant: for any strategy and degree, the per-shard
    /// weight working-set bytes partition the whole model's bytes exactly —
    /// nothing double-counted, nothing dropped.
    #[test]
    fn shard_bytes_always_sum_to_the_model(
        kind_idx in 0usize..7,
        tensor in 0u64..2,
        degree in 1u32..7,
    ) {
        let kind = ModelKind::ALL[kind_idx];
        let model = ModelConfig::for_kind(kind);
        let strategy = if tensor == 1 {
            PartitionStrategy::Tensor { ways: degree }
        } else {
            PartitionStrategy::Pipeline { stages: degree }
        };
        let bpo = HwConfig::exion4().operand_bytes();
        let plan = PartitionPlan::new(&model, strategy, Interconnect::default(), bpo);
        prop_assert_eq!(plan.num_shards(), strategy.degree());
        let sum: u64 = (0..plan.num_shards()).map(|s| plan.shard_weight_bytes(s)).sum();
        prop_assert_eq!(sum, model_weight_bytes(&model, bpo), "{} {}", kind.name(), strategy.label());
        prop_assert_eq!(plan.total_weight_bytes(), sum);
    }
}

/// Runs the text-to-video trace on a sharded placement.
fn sharded_run(strategy: PartitionStrategy, rate_rps: f64, seed: u64) -> exion::serve::ServeReport {
    let mut sim = ServeSimulator::new(
        ServeConfig::builder(HwConfig::exion4())
            .placement(Placement::sharded(1, strategy))
            .build(),
    );
    sim.run(&TraceConfig {
        pattern: TrafficPattern::Poisson { rate_rps },
        horizon_ms: 1_500.0,
        seed,
        mix: WorkloadMix::text_to_video(),
    })
}

#[test]
fn gang_scheduling_is_deterministic_under_a_fixed_seed() {
    for strategy in [
        PartitionStrategy::Tensor { ways: 2 },
        PartitionStrategy::Pipeline { stages: 2 },
    ] {
        let a = sharded_run(strategy, 1.0, 77);
        let b = sharded_run(strategy, 1.0, 77);
        assert_eq!(
            a,
            b,
            "{}: same seed must reproduce bit-identically",
            strategy.label()
        );
        let c = sharded_run(strategy, 1.0, 78);
        assert_ne!(a.completions, c.completions, "{}", strategy.label());
    }
}

#[test]
fn gangs_serve_a_working_set_exceeding_model_with_per_shard_residency() {
    // The acceptance scenario: VideoCrafter2's per-iteration weight bytes
    // exceed one instance's GSC outright, yet a TP=2 (and a PP=2) gang
    // serves it with each member accounting its own shard's residency.
    let hw = HwConfig::exion4();
    let model = ModelConfig::for_kind(ModelKind::VideoCrafter2);
    let total = model_weight_bytes(&model, hw.operand_bytes());
    assert!(total as f64 > hw.gsc_bytes(), "VC2 must exceed the GSC");
    for strategy in [
        PartitionStrategy::Tensor { ways: 2 },
        PartitionStrategy::Pipeline { stages: 2 },
    ] {
        let report = sharded_run(strategy, 1.2, 13);
        assert!(report.arrivals > 0);
        assert_eq!(report.completed, report.arrivals, "{}", strategy.label());
        assert_eq!(report.gangs, 1);
        assert_eq!(report.per_instance.len(), 2);
        assert_eq!(report.per_gang[0].strategy, strategy.label());
        assert!(report.collective_bytes > 0, "{}", strategy.label());
        // Every member moved weight bytes for its own shard, and each
        // shard's working set (about half the model) still exceeds what a
        // 64 MiB GSC can hold — residency stays partial *per member*.
        for (i, inst) in report.per_instance.iter().enumerate() {
            let traffic = inst.weight_hit_bytes + inst.weight_refill_bytes;
            assert!(
                traffic > 0,
                "{} member {i} saw no weight traffic",
                strategy.label()
            );
            assert!(
                inst.residency_hit_rate < 1.0,
                "{} member {i}: an oversized shard cannot be fully resident",
                strategy.label()
            );
        }
        // DDIM-step conservation holds through gang execution.
        let demanded: u64 = report
            .completions
            .iter()
            .map(|c| ModelConfig::for_kind(c.model).iterations as u64)
            .sum();
        let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
        assert_eq!(demanded, executed, "{}", strategy.label());
    }
}

#[test]
fn more_instances_cut_tail_latency_at_fixed_load() {
    let report_for = |instances: usize| {
        let mut sim = ServeSimulator::new(
            ServeConfig::builder(HwConfig::exion4())
                .instances(instances)
                .build(),
        );
        // Load that saturates one instance but not three.
        let one_cap = {
            let mut probe = ServeSimulator::new(ServeConfig::new(HwConfig::exion4()));
            probe.capacity_estimate_rps(&WorkloadMix::text_to_motion())
        };
        sim.run(&motion_trace(1.2 * one_cap, 99))
    };
    let single = report_for(1);
    let triple = report_for(3);
    assert!(
        triple.latency.p99 < single.latency.p99,
        "p99 {} vs {}",
        triple.latency.p99,
        single.latency.p99
    );
    assert!(triple.throughput_rps >= single.throughput_rps);
}

/// Order-insensitive-free FNV-style fold over the report's completion
/// stream (ids ascending) — the parity currency of the control-plane
/// refactor. Must match the capture harness that recorded the pre-refactor
/// fingerprints bit for bit.
fn fingerprint(report: &ServeReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(report.arrivals as u64);
    for c in &report.completions {
        mix(c.id);
        mix(c.finished_ms.to_bits());
        mix(c.admitted_ms.to_bits());
        mix(c.instance as u64);
        mix(c.preemptions as u64);
    }
    h
}

#[test]
fn trait_policies_reproduce_the_pre_refactor_enum_runs() {
    // The fingerprints below were captured on this trace with the closed
    // `Policy` enum scheduler immediately before the trait-based control
    // plane replaced it (same toolchain, same seed). The trait-based FCFS
    // and EDF must reproduce those runs bit for bit: identical completion
    // ids, clocks (f64 bit patterns), instance assignments, and preemption
    // counts.
    let trace = TraceConfig {
        pattern: TrafficPattern::Bursty {
            rate_rps: 1.0,
            burst_multiplier: 4.0,
            mean_dwell_ms: 400.0,
        }
        .with_mean_rps(60.0),
        horizon_ms: 1_500.0,
        seed: 0xEA51,
        mix: WorkloadMix::multi_tenant(),
    };
    for (policy, expected) in [
        ("fcfs", 0xecc9_1e60_64ac_e07f_u64),
        ("edf", 0xfe6d_71da_5c2d_5525_u64),
    ] {
        let mut sim = ServeSimulator::new(
            ServeConfig::builder(HwConfig::exion24())
                .policy_name(policy)
                .build(),
        );
        let report = sim.run(&trace);
        assert_eq!(report.arrivals, 114, "{policy}: trace changed");
        assert_eq!(report.completed, 114, "{policy}: conservation changed");
        assert_eq!(
            fingerprint(&report),
            expected,
            "{policy}: trait-based run diverged from the pre-refactor enum run"
        );
    }
}

/// Runs the bursty motion trace under deadline-feasibility admission.
fn deadline_run(load_frac: f64, horizon_ms: f64, seed_shift: u64) -> ServeReport {
    let mix = WorkloadMix::text_to_motion();
    let capacity =
        ServeSimulator::new(ServeConfig::new(HwConfig::exion4())).capacity_estimate_rps(&mix);
    let mut trace = bursty_trace_over(capacity, load_frac, horizon_ms, mix);
    trace.seed ^= seed_shift;
    ServeSimulator::new(
        ServeConfig::builder(HwConfig::exion4())
            .policy_name("edf")
            .admission_name("deadline")
            .build(),
    )
    .run(&trace)
}

#[test]
fn shedding_conserves_requests_and_degrades_within_budget() {
    let report = deadline_run(1.5, 2_000.0, 0);
    assert!(report.arrivals > 0);
    assert!(report.shed_requests > 0, "1.5x load must shed");
    assert!(report.degraded_requests > 0, "1.5x load must degrade");
    // Conservation under shedding: the cluster drains, so in-flight is
    // zero and served + shed == arrivals, with disjoint id sets.
    assert_eq!(report.completed + report.shed_requests, report.arrivals);
    let completed: HashSet<u64> = report.completions.iter().map(|c| c.id).collect();
    let shed: HashSet<u64> = report.sheds.iter().map(|s| s.id).collect();
    assert_eq!(completed.len(), report.completed);
    assert_eq!(shed.len(), report.shed_requests);
    assert!(
        completed.is_disjoint(&shed),
        "a shed request cannot complete"
    );
    // Executed rows match the (possibly degraded) step budgets exactly.
    let demanded: u64 = report.completions.iter().map(|c| c.steps as u64).sum();
    let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
    assert_eq!(demanded, executed, "DDIM steps not conserved under degrade");
    // Per-class shed accounting adds up.
    let class_sheds: usize = WorkloadMix::text_to_motion()
        .kinds()
        .iter()
        .map(|&k| report.sheds.iter().filter(|s| s.model == k).count())
        .sum();
    assert_eq!(class_sheds, report.shed_requests);
    for &kind in &WorkloadMix::text_to_motion().kinds() {
        let rate = report.class_shed_rate(kind);
        assert!((0.0..=1.0).contains(&rate), "{}: {rate}", kind.name());
    }
    // Degrade-budget safety: every degraded completion ran fewer steps
    // than the full schedule, at least the 50% quality floor, and its
    // budget was deadline-feasible at the full-batch service rate when it
    // was admitted (wait >= 0, so steps * step_ms <= SLO slack).
    let mut cost =
        exion::serve::CostModel::new(HwConfig::exion4(), exion::sim::perf::SimAblation::All);
    let degraded: Vec<_> = report.completions.iter().filter(|c| c.degraded).collect();
    assert!(!degraded.is_empty());
    for c in &degraded {
        let config = ModelConfig::for_kind(c.model);
        let full = config.iterations;
        let floor = (0.5 * full as f64).ceil() as usize;
        assert!(c.steps < full, "degraded must run fewer than {full} steps");
        assert!(c.steps >= floor, "degraded below the quality floor");
        let step_ms = cost.generation_latency_ms(&config, 8) / full.max(1) as f64;
        assert!(
            c.steps as f64 * step_ms <= c.slo_ms + 1e-9,
            "budget {} x {step_ms} ms must fit the {} ms SLO",
            c.steps,
            c.slo_ms
        );
    }
    // Full-schedule completions are never marked degraded.
    for c in report.completions.iter().filter(|c| !c.degraded) {
        assert_eq!(c.steps, ModelConfig::for_kind(c.model).iterations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Request conservation under shedding holds for any seed and load:
    /// served + shed + in-flight == arrivals (in-flight is zero once the
    /// cluster drains), and every degraded completion stays inside the
    /// legal budget band.
    #[test]
    fn shedding_conservation_holds_across_seeds(
        seed_shift in 0u64..1_000,
        load_pct in 40u64..170,
    ) {
        let report = deadline_run(load_pct as f64 / 100.0, 600.0, seed_shift);
        prop_assert_eq!(
            report.completed + report.shed_requests,
            report.arrivals,
            "served + shed must equal arrivals"
        );
        let demanded: u64 = report.completions.iter().map(|c| c.steps as u64).sum();
        let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
        prop_assert_eq!(demanded, executed);
        for c in &report.completions {
            let full = ModelConfig::for_kind(c.model).iterations;
            if c.degraded {
                let floor = (0.5 * full as f64).ceil() as usize;
                prop_assert!(c.steps >= floor && c.steps < full, "budget band");
            } else {
                prop_assert_eq!(c.steps, full);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Planner invariants: for any budget, forecast, and mix, the chosen
    /// placement fits the budget, is GSC-feasible, and never scores below
    /// the worst enumerated candidate (it *is* the argmax of the beam).
    #[test]
    fn planner_output_is_gsc_feasible_and_never_worst(
        budget in 1usize..6,
        load_decirps in 1u64..40,
        mix_idx in 0usize..2,
    ) {
        let hw = HwConfig::exion4();
        let mix = if mix_idx == 0 {
            WorkloadMix::text_to_video()
        } else {
            WorkloadMix::text_to_motion()
        };
        let mut cost = CostModel::new(hw, exion::sim::perf::SimAblation::All);
        let planner = PlacementPlanner::new(PlannerConfig::new(budget));
        let forecast = load_decirps as f64 / 10.0;
        let out = planner.plan(&hw, &mix, forecast, &mut cost);
        let chosen = &out.chosen;
        prop_assert!(chosen.placement.total_instances() <= budget.max(1));
        prop_assert!(chosen.placement.units() >= 1);
        prop_assert!(
            chosen.placement.gangs == 0
                || gsc_feasible(&hw, &mix, chosen.placement.strategy),
            "{} is not GSC-feasible for the mix",
            chosen.label
        );
        let worst = out
            .candidates
            .iter()
            .map(|c| c.score)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            chosen.score >= worst,
            "chosen {} scores {} below the worst candidate {}",
            chosen.label,
            chosen.score,
            worst
        );
        prop_assert_eq!(chosen, &out.candidates[0]);
        // Scores and projections stay finite and ordered.
        for c in &out.candidates {
            prop_assert!(c.score.is_finite());
            prop_assert!(c.capacity_rps > 0.0);
            prop_assert!((0.0..=1.0).contains(&c.slo_attainment));
        }
    }
}

#[test]
fn all_to_all_strictly_beats_ring_collectives_at_world_size_4() {
    // The topology satellite: same wire bytes, but a fully connected
    // fabric spreads a tensor all-reduce across the three peer links.
    let bpo = HwConfig::exion4().operand_bytes();
    for kind in [ModelKind::VideoCrafter2, ModelKind::Dit] {
        let model = ModelConfig::for_kind(kind);
        let strategy = PartitionStrategy::Tensor { ways: 4 };
        let ring = PartitionPlan::new(&model, strategy, Interconnect::ring(), bpo);
        let full = PartitionPlan::new(&model, strategy, Interconnect::all_to_all(), bpo);
        assert_eq!(ring.collective_bytes(8), full.collective_bytes(8));
        assert!(
            full.collective_ms(8) < ring.collective_ms(8),
            "{}: all-to-all {} must beat ring {}",
            kind.name(),
            full.collective_ms(8),
            ring.collective_ms(8)
        );
    }
    assert_eq!(Interconnect::default().topology, Topology::Ring);
}

/// Runs the text-to-video mix under auto-placement on a diurnal ramp that
/// forces at least one re-plan (mirrors `serve_sweep::planner_comparison`'s
/// online half, at a test-sized horizon).
fn planned_diurnal_run(seed: u64) -> ServeReport {
    let hw = HwConfig::exion4();
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::builder(hw).instances(2).build())
        .capacity_estimate_rps(&mix);
    let planner = PlacementPlanner::new(PlannerConfig::new(2).with_replanning(1_000.0, 0.35));
    let mut sim = ServeSimulator::new(
        ServeConfig::builder(hw)
            .auto_placement(planner, 0.3 * capacity)
            .build(),
    );
    sim.run(&TraceConfig {
        pattern: TrafficPattern::Diurnal {
            peak_rps: 0.9 * capacity,
            trough_frac: 0.3,
        },
        horizon_ms: 4_000.0,
        seed,
        mix,
    })
}

#[test]
fn auto_placement_replans_conserve_requests_and_steps() {
    let report = planned_diurnal_run(0x5E17E);
    let pr = report.planner.as_ref().expect("planner accounting");
    assert!(pr.replan_count() >= 1, "the ramp must force a re-plan");
    assert!(pr.migration_bytes() > 0, "migrations are priced");
    assert!(!pr.epochs.is_empty());
    for e in &pr.epochs {
        assert!(e.error >= 0.0);
    }
    for r in &pr.replans {
        assert_ne!(r.from, r.to, "a re-plan event records a placement change");
    }
    // Conservation holds across the migration: every arrival completes
    // exactly once, and drained requests resume without losing steps.
    assert_eq!(report.completed, report.arrivals);
    let ids: HashSet<u64> = report.completions.iter().map(|c| c.id).collect();
    assert_eq!(ids.len(), report.completed);
    let demanded: u64 = report
        .completions
        .iter()
        .map(|c| ModelConfig::for_kind(c.model).iterations as u64)
        .sum();
    let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
    assert_eq!(
        demanded, executed,
        "DDIM steps not conserved across migration"
    );
    // Determinism: the same seed reproduces the run bit for bit.
    let again = planned_diurnal_run(0x5E17E);
    assert_eq!(report, again);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Auto-placement conservation holds for any seed — whatever epochs,
    /// re-plans, and drain timings a trace produces (including re-plans
    /// firing while part of the cluster sits idle-jumped ahead), every
    /// arrival still completes exactly once.
    #[test]
    fn auto_placement_conserves_across_seeds(seed in 0u64..10_000) {
        let report = planned_diurnal_run(seed);
        prop_assert_eq!(report.completed, report.arrivals);
        let demanded: u64 = report
            .completions
            .iter()
            .map(|c| ModelConfig::for_kind(c.model).iterations as u64)
            .sum();
        let executed: u64 = report.per_instance.iter().map(|s| s.rows_executed).sum();
        prop_assert_eq!(demanded, executed);
        if let Some(pr) = &report.planner {
            for r in &pr.replans {
                prop_assert!(r.at_ms.is_finite(), "migration hand-off must be finite");
            }
        }
    }
}
