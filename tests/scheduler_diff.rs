//! Differential pin of the indexed scheduler: on randomized traces the
//! bucket-indexed admission path (`Instance::admit`) must make decisions
//! identical to the retained linear-scan reference
//! (`Instance::admit_reference`) — same seeds, same joins, same parks,
//! same resumes, same clocks, and byte-identical queue evolution — across
//! all four builtin policies. Fingerprint parity of whole runs (sinks on
//! and off) is pinned separately by `tests/event_core.rs`' goldens; this
//! test closes the gap at the single-decision level, where a divergence
//! is actually debuggable.

use std::sync::Arc;

use exion::model::config::{ModelConfig, ModelKind};
use exion::serve::{policy, CostModel, Instance, ReadyQueue, Request, SchedContext};
use exion::sim::config::HwConfig;
use exion::sim::partition::Interconnect;
use exion::sim::perf::SimAblation;
use exion::sim::residency::EvictionPolicy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const KINDS: [ModelKind; 3] = [ModelKind::Mld, ModelKind::Mdm, ModelKind::StableDiffusion];

fn ctx_for(policy: Arc<dyn policy::SchedulerPolicy>, max_batch: usize) -> SchedContext {
    let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
    SchedContext::build(
        policy,
        max_batch,
        &KINDS,
        &mut cost,
        Interconnect::default(),
        |k| ModelConfig::for_kind(k).shrunk(1, 12),
        |_| None,
    )
}

/// One scripted arrival: model choice, inter-arrival gap, SLO tightness
/// (tight multipliers exercise the deadline-feasibility thrash guard and
/// the preempt/swap bounds), and — for a minority — synthetic parked
/// state (progress plus a possibly-foreign latent home), which lands the
/// request on the deferred path with a migration penalty.
#[derive(Debug, Clone)]
struct ScriptedArrival {
    kind_idx: usize,
    gap_ms: f64,
    slo_scale: f64,
    parked: Option<(usize, usize)>,
}

/// Samples one script from `seed` (the vendored proptest stub only exposes
/// range strategies, so composite shapes are drawn by hand). Roughly one
/// arrival in five is a tight-deadline straggler, one in five is effectively
/// unbounded, and one in five arrives pre-parked with progress.
fn sample_script(seed: u64, len: usize) -> Vec<ScriptedArrival> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_D1FF);
    (0..len)
        .map(|_| {
            let slo_scale = match rng.random_range(0u8..5) {
                0 => 0.05,
                4 => 1e6,
                _ => rng.random_range(0.5f64..4.0),
            };
            let parked = if rng.random_range(0u8..5) == 0 {
                Some((rng.random_range(1usize..6), rng.random_range(0usize..3)))
            } else {
                None
            };
            ScriptedArrival {
                kind_idx: rng.random_range(0usize..KINDS.len()),
                gap_ms: rng.random_range(0.0f64..30.0),
                slo_scale,
                parked,
            }
        })
        .collect()
}

/// Drives one (instance, queue) pair per scheduler through the same
/// script and asserts bit-equality after every decision.
fn run_differential(
    policy: Arc<dyn policy::SchedulerPolicy>,
    max_batch: usize,
    script: &[ScriptedArrival],
) {
    let ctx = ctx_for(policy, max_batch);
    let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
    let mut inst_a = Instance::new(0, &HwConfig::exion4(), EvictionPolicy::Lru);
    let mut inst_b = Instance::new(0, &HwConfig::exion4(), EvictionPolicy::Lru);
    let mut queue_a = ReadyQueue::new();
    let mut queue_b = ReadyQueue::new();

    let mut next_id = 0u64;
    let mut pending = script.iter();
    // Worst case every request runs its full 12 iterations solo, plus the
    // admit-only hops while arrivals trickle in.
    let mut steps_left = 16 * script.len() * 12 + 256;
    loop {
        // Release the next scripted arrival at (or after) the current
        // clock so fresh requests are visible by construction — the same
        // contract the cluster's releaser upholds.
        if let Some(a) = pending.next() {
            let kind = KINDS[a.kind_idx];
            let info = ctx.info(kind);
            let at_ms = inst_a.now_ms + a.gap_ms;
            let steps = info.config.iterations;
            let slo_ms = a.slo_scale * steps as f64 * info.warm_step_ms;
            let mut r = Request::new(next_id, kind, at_ms, slo_ms, steps);
            next_id += 1;
            if let Some((done, home)) = a.parked {
                r.steps_done = done.min(steps.saturating_sub(1)).max(1);
                r.preemptions = 1;
                r.parked_on = Some(home);
            }
            // The clock may sit behind the arrival: jump both mirrors
            // forward so the push lands visible (release semantics).
            inst_a.now_ms = inst_a.now_ms.max(at_ms);
            inst_b.now_ms = inst_b.now_ms.max(at_ms);
            queue_a.push(r, &ctx);
            queue_b.push(r, &ctx);
        } else if queue_a.is_empty() && inst_a.running.is_empty() {
            break;
        }
        steps_left -= 1;
        assert!(steps_left > 0, "differential driver failed to drain");

        let out_a = inst_a.admit(&mut queue_a, &ctx, &mut []);
        let out_b = inst_b.admit_reference(&mut queue_b, &ctx, &mut []);
        assert_eq!(out_a, out_b, "admit outcomes diverged");
        assert_eq!(
            inst_a.running, inst_b.running,
            "running batches diverged after admit"
        );
        assert_eq!(
            queue_a.as_slice(),
            queue_b.as_slice(),
            "queue evolution diverged after admit"
        );
        assert_eq!(
            inst_a.now_ms.to_bits(),
            inst_b.now_ms.to_bits(),
            "clocks diverged after admit"
        );
        assert_eq!(inst_a.active_model, inst_b.active_model);

        if inst_a.running.is_empty() {
            // Nothing admissible yet (a deferred request's ready time lies
            // ahead): jump past the earliest wake like the cluster would.
            if pending.len() == 0 {
                let wake = queue_a
                    .iter()
                    .map(|r| r.ready_ms)
                    .fold(f64::INFINITY, f64::min);
                assert!(wake.is_finite(), "stuck with an empty batch");
                inst_a.now_ms = inst_a.now_ms.max(wake);
                inst_b.now_ms = inst_b.now_ms.max(wake);
            }
            continue;
        }
        let done_a = inst_a.execute_iteration(&mut cost, &ctx);
        let done_b = inst_b.execute_iteration(&mut cost, &ctx);
        assert_eq!(done_a, done_b, "completions diverged");
        assert_eq!(
            inst_a.now_ms.to_bits(),
            inst_b.now_ms.to_bits(),
            "clocks diverged after execute"
        );
    }
    assert_eq!(queue_a.len(), 0);
    assert_eq!(inst_a.stats(1.0).preemptions, inst_b.stats(1.0).preemptions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_admission_matches_the_linear_reference(
        policy_idx in 0usize..4,
        max_batch in 1usize..6,
        script_len in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let policies = policy::builtin_policies();
        prop_assert_eq!(policies.len(), 4, "differential covers every builtin");
        let script = sample_script(seed, script_len);
        run_differential(policies[policy_idx].clone(), max_batch, &script);
    }
}
