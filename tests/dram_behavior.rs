//! Property tests of the DRAM model's timing sanity: completion times are
//! causal, bandwidth-bounded, and monotone in transfer size.

use exion::dram::{Dram, DramTiming};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A transfer never completes before its bandwidth-limited lower bound,
    /// and never before it starts.
    #[test]
    fn completion_is_causal_and_bandwidth_bounded(
        bytes in 32u64..1_000_000,
        start in 0.0f64..1e6,
        lpddr in any::<bool>(),
    ) {
        let timing = if lpddr { DramTiming::lpddr5() } else { DramTiming::gddr6() };
        let mut d = Dram::new(timing, 2);
        let done = d.transfer(0, bytes, false, start);
        prop_assert!(done > start);
        let min = d.min_transfer_ns(bytes);
        prop_assert!(done - start >= min * 0.99,
            "done in {} ns, bandwidth floor {} ns", done - start, min);
    }

    /// Larger transfers from the same state never finish earlier.
    #[test]
    fn completion_monotone_in_size(bytes in 64u64..500_000) {
        let mut a = Dram::new(DramTiming::lpddr5(), 2);
        let mut b = Dram::new(DramTiming::lpddr5(), 2);
        let small = a.transfer(0, bytes / 2, false, 0.0);
        let large = b.transfer(0, bytes, false, 0.0);
        prop_assert!(large >= small);
    }

    /// The coarse stream model agrees with the per-burst simulation within
    /// 30% on sequential transfers of any size.
    #[test]
    fn stream_model_tracks_burst_model(kib in 4u64..512) {
        let bytes = kib * 1024;
        let mut fine = Dram::for_bandwidth(DramTiming::gddr6(), 819.0);
        let mut coarse = Dram::for_bandwidth(DramTiming::gddr6(), 819.0);
        let f = fine.transfer(0, bytes, false, 0.0);
        let c = coarse.stream_transfer(bytes, false, 0.0);
        let ratio = c / f;
        prop_assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    /// Hit-rate accounting is consistent: hits + misses equals the burst
    /// count.
    #[test]
    fn hit_accounting_consistent(bytes in 32u64..200_000, addr in 0u64..1_000_000) {
        let addr = addr & !31; // burst aligned
        let mut d = Dram::new(DramTiming::lpddr5(), 1);
        let _ = d.transfer(addr, bytes, false, 0.0);
        let stats = d.stats();
        let bursts = (addr + bytes - 1) / 32 - addr / 32 + 1;
        prop_assert_eq!(stats.row_hits + stats.row_misses, bursts);
    }
}

#[test]
fn background_energy_scales_with_time_and_channels() {
    let d2 = Dram::new(DramTiming::lpddr5(), 2);
    let d4 = Dram::new(DramTiming::lpddr5(), 4);
    assert!(d4.background_energy_pj(100.0) > d2.background_energy_pj(100.0));
    assert!(d2.background_energy_pj(200.0) > d2.background_energy_pj(100.0));
}
