//! ConMerge ↔ SDUE hardware-fidelity tests: every schedule the ConMerge
//! vector generator emits must execute bit-faithfully through the SDUE's
//! switch semantics and reproduce the dense MMUL at every masked position.

use exion::core::bitmask::Bitmask2D;
use exion::core::conmerge::{CompactionConfig, TileCompactor};
use exion::sim::config::DscGeometry;
use exion::sim::sdue::SdueModel;
use exion::tensor::{ops, rng::seeded_uniform, Matrix};
use proptest::prelude::*;

/// Executes a compacted schedule and checks it against the dense result.
fn check_schedule(mask: &Bitmask2D, inputs: &Matrix, weights: &Matrix, sorted: bool) {
    let compactor = TileCompactor::new(CompactionConfig {
        sorted,
        ..CompactionConfig::default()
    });
    let sdue = SdueModel::new(DscGeometry::exion());
    let dense = ops::matmul(inputs, weights);

    let mut covered = 0usize;
    let mut row0 = 0;
    while row0 < mask.rows() {
        let height = 16.min(mask.rows() - row0);
        let tile_inputs = inputs.submatrix(row0, 0, height, inputs.cols());
        let result = compactor.compact_tile(mask, row0, height);
        for block in &result.merged_blocks {
            for out in sdue.execute_merged_block(block, &tile_inputs, weights) {
                let want = dense[(row0 + out.input_row, out.weight_col)];
                assert!(
                    (out.value - want).abs() < 1e-3,
                    "({}, {}): merged {} vs dense {}",
                    row0 + out.input_row,
                    out.weight_col,
                    out.value,
                    want
                );
                assert!(mask.get(row0 + out.input_row, out.weight_col));
                covered += 1;
            }
        }
        row0 += height;
    }
    assert_eq!(
        covered,
        mask.count_ones(),
        "every masked element computed once"
    );
}

#[test]
fn dense_and_sparse_masks_execute_faithfully() {
    let inputs = seeded_uniform(48, 40, -1.0, 1.0, 1);
    let weights = seeded_uniform(40, 96, -1.0, 1.0, 2);
    for (seed, keep_mod) in [(3u64, 2usize), (4, 7), (5, 19)] {
        let mask = Bitmask2D::from_fn(48, 96, |r, c| {
            (r * 31 + c * 17 + seed as usize).is_multiple_of(keep_mod)
        });
        check_schedule(&mask, &inputs, &weights, true);
        check_schedule(&mask, &inputs, &weights, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: any bitmask's ConMerge schedule reproduces the dense MMUL
    /// at exactly the masked positions, with every element computed once.
    #[test]
    fn conmerge_schedule_is_always_faithful(
        seed in 0u64..1000,
        density in 1usize..12,
        rows in 8usize..40,
        cols in 8usize..80,
    ) {
        let inputs = seeded_uniform(rows, 24, -1.0, 1.0, seed);
        let weights = seeded_uniform(24, cols, -1.0, 1.0, seed + 1);
        let mask = Bitmask2D::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((c as u64).wrapping_mul(seed + 3));
            (h % 29) < density as u64
        });
        check_schedule(&mask, &inputs, &weights, true);
    }

    /// Property: compaction never loses or duplicates work, regardless of
    /// sparsity pattern.
    #[test]
    fn compaction_preserves_popcount(
        seed in 0u64..1000,
        density in 0usize..16,
    ) {
        let mask = Bitmask2D::from_fn(32, 64, |r, c| {
            let h = (r as u64 * 37 + c as u64 * 61).wrapping_mul(seed + 11);
            (h % 31) < density as u64
        });
        let compactor = TileCompactor::new(CompactionConfig::default());
        let mut placed = 0usize;
        let mut row0 = 0;
        while row0 < mask.rows() {
            let height = 16.min(mask.rows() - row0);
            let result = compactor.compact_tile(&mask, row0, height);
            placed += result
                .merged_blocks
                .iter()
                .map(|b| b.occupied_slots())
                .sum::<usize>();
            row0 += height;
        }
        prop_assert_eq!(placed, mask.count_ones());
    }

    /// Property: per-lane conflict vectors are consistent — every slot on a
    /// conflict line matches its lane's CV.
    #[test]
    fn conflict_vectors_are_consistent(seed in 0u64..500) {
        let mask = Bitmask2D::from_fn(16, 64, |r, c| {
            let h = (r as u64 * 97 + c as u64 * 13).wrapping_mul(seed + 7);
            (h % 23) < 4
        });
        let compactor = TileCompactor::new(CompactionConfig::default());
        let result = compactor.compact_tile(&mask, 0, 16);
        for block in &result.merged_blocks {
            for lane in 0..block.height() {
                for col in 0..block.width() {
                    if let Some(slot) = block.slot(lane, col) {
                        prop_assert!(
                            slot.input_row == lane
                                || block.cv()[lane] == Some(slot.input_row),
                            "lane {} reads row {} but CV is {:?}",
                            lane, slot.input_row, block.cv()[lane]
                        );
                        prop_assert!(slot.wmem < 3, "only three WMEM buffers exist");
                    }
                }
            }
        }
    }
}
