//! Cross-crate integration tests: the full generation pipeline under every
//! ablation, feeding the compaction mechanism and the cycle-level simulator.

use exion::core::conmerge::{CompactionConfig, TileCompactor};
use exion::model::{Ablation, ExecPolicy, GenerationPipeline, ModelConfig, ModelKind};
use exion::sim::config::HwConfig;
use exion::sim::perf::{simulate_model, SimAblation};
use exion::sim::workload::SparsityProfile;
use exion::tensor::stats;

fn tiny(kind: ModelKind) -> ModelConfig {
    ModelConfig::for_kind(kind).shrunk(2, 6)
}

#[test]
fn every_benchmark_generates_under_every_ablation() {
    for kind in ModelKind::ALL {
        let config = tiny(kind);
        let mut vanilla = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 1);
        let (reference, _) = vanilla.generate("integration", 2);
        for ablation in [
            Ablation::FfnReuse,
            Ablation::Ep,
            Ablation::FfnReuseEp,
            Ablation::FfnReuseEpQuant,
        ] {
            let mut p = GenerationPipeline::new(&config, ablation.policy(&config), 1);
            let (out, report) = p.generate("integration", 2);
            assert_eq!(out.shape(), reference.shape(), "{kind:?}/{ablation:?}");
            let psnr = stats::psnr(&reference, &out);
            assert!(
                psnr > 5.0,
                "{kind:?}/{ablation:?}: PSNR {psnr:.1} dB vs vanilla"
            );
            assert!(
                report.total_ops().performed <= report.total_ops().dense,
                "{kind:?}/{ablation:?}: op accounting"
            );
        }
    }
}

#[test]
fn generation_is_bit_reproducible() {
    let config = tiny(ModelKind::Dit);
    let policy = Ablation::FfnReuseEp.policy(&config);
    let run = || {
        let mut p = GenerationPipeline::new(&config, policy, 3);
        p.generate("repro", 4).0
    };
    assert_eq!(run(), run());
}

#[test]
fn masks_flow_from_pipeline_into_conmerge() {
    let config = tiny(ModelKind::Mdm);
    let policy = Ablation::FfnReuseEp.policy(&config).with_mask_capture();
    let mut p = GenerationPipeline::new(&config, policy, 5);
    let (_, report) = p.generate("mask flow", 6);
    let compactor = TileCompactor::new(CompactionConfig::default());
    let mut compacted_any = false;
    for mask in report.ffn_masks() {
        let r = compactor.compact_matrix(mask);
        assert!(r.merged_blocks <= r.dense_blocks);
        assert!(r.remaining_column_fraction() <= 1.0);
        compacted_any = true;
    }
    assert!(compacted_any, "pipeline produced FFN masks");
}

#[test]
fn simulator_consumes_all_benchmarks() {
    // Paper-scale simulation of every benchmark on both instances.
    for kind in ModelKind::ALL {
        let mut model = ModelConfig::for_kind(kind);
        model.iterations = 4;
        let profile = SparsityProfile::analytic(
            model.ffn_reuse.target_sparsity,
            model.ep.paper_sparsity_pct / 100.0,
            16,
        );
        for hw in [HwConfig::exion4(), HwConfig::exion24()] {
            let base = simulate_model(&hw, &model, &profile, SimAblation::Base, 1);
            let all = simulate_model(&hw, &model, &profile, SimAblation::All, 1);
            assert!(base.latency_ms > 0.0 && all.latency_ms > 0.0, "{kind:?}");
            assert!(
                all.energy_mj < base.energy_mj,
                "{kind:?} on {}: All {} mJ vs Base {} mJ",
                hw.name,
                all.energy_mj,
                base.energy_mj
            );
            assert!(
                all.latency_ms <= base.latency_ms * 1.01,
                "{kind:?} on {}",
                hw.name
            );
        }
    }
}

#[test]
fn meta_crate_reexports_work() {
    // Compile-time check that the meta crate exposes every subsystem.
    let _ = exion::tensor::Matrix::zeros(1, 1);
    let _ = exion::core::Bitmask2D::zeros(1, 1);
    let _ = exion::dram::DramTiming::lpddr5();
    let _ = exion::gpu::GpuSpec::a100();
    let _ = exion::sim::config::HwConfig::single_dsc();
    let _ = exion::model::ModelConfig::all();
}
