//! Fault-injection pins: an empty `FaultPlan` must leave every fixed-seed
//! golden byte-identical (sinks on and off), faulted runs must obey the
//! extended conservation law `served + shed + lost == arrivals` and stay
//! bit-identical across repeated runs, checkpointing must bound what a
//! crash destroys, a gang losing one member must stall whole while a
//! replicated fleet degrades gracefully, and the planner must re-place
//! around a mid-horizon crash and recover attainment afterwards.

use exion::serve::{
    FaultPlan, MemorySink, PartitionStrategy, Placement, PlacementPlanner, PlannerConfig,
    ServeConfig, ServeReport, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix,
};
use exion::sim::config::HwConfig;
use exion_bench::experiments::serve_sweep::{chaos_comparison, standard_scenarios};
use proptest::prelude::*;

/// The completion-stream fingerprint `tests/event_core.rs` pins the
/// standard scenarios with, extended over every terminal outcome: sheds
/// and losts fold in too, so chaos determinism covers the failure path,
/// not just the happy one.
fn fingerprint(report: &ServeReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(report.arrivals as u64);
    for c in &report.completions {
        mix(c.id);
        mix(c.finished_ms.to_bits());
        mix(c.admitted_ms.to_bits());
        mix(c.instance as u64);
        mix(c.preemptions as u64);
    }
    for s in &report.sheds {
        mix(s.id);
        mix(s.at_ms.to_bits());
    }
    for l in &report.losts {
        mix(l.id);
        mix(l.at_ms.to_bits());
        mix(l.steps_lost as u64);
    }
    h
}

/// The completions-only fold of `tests/event_core.rs`, bit for bit — the
/// goldens below were captured with it.
fn completions_fingerprint(report: &ServeReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(report.arrivals as u64);
    for c in &report.completions {
        mix(c.id);
        mix(c.finished_ms.to_bits());
        mix(c.admitted_ms.to_bits());
        mix(c.instance as u64);
        mix(c.preemptions as u64);
    }
    h
}

/// `served + shed + lost == arrivals`: the conservation law every run
/// obeys once the cluster drains, faults or not. (Row conservation —
/// demanded steps == executed rows — deliberately does NOT hold under
/// faults: a crashed unit's in-flight iteration never completes and a
/// lost request's remaining steps are never executed.)
fn assert_conservation(report: &ServeReport, context: &str) {
    assert_eq!(
        report.completed + report.shed_requests + report.lost_requests,
        report.arrivals,
        "{context}: served {} + shed {} + lost {} != arrivals {}",
        report.completed,
        report.shed_requests,
        report.lost_requests,
        report.arrivals,
    );
}

/// The horizon the event-core goldens were captured at.
const GOLDEN_HORIZON_MS: f64 = 1_200.0;

/// The `tests/event_core.rs` golden fingerprints. Installing an *empty*
/// fault plan must reproduce each one bit for bit, sinks on and off: the
/// fault subsystem's default path schedules nothing, draws no randomness,
/// and perturbs no clock.
const GOLDEN_FINGERPRINTS: [(&str, u64); 4] = [
    ("poisson_90pct_exion4", 0xfcd3_cad0_f4b6_c883),
    ("bursty_preemptive_edf_exion24", 0x47d0_5a21_314b_51d2),
    ("tp2_gang_video_exion4", 0xaf23_68ff_4876_2c10),
    ("planned_diurnal_exion4", 0x7494_0884_e39d_a282),
];

#[test]
fn empty_fault_plan_keeps_every_golden_byte_identical() {
    for (scenario, mut config, trace) in standard_scenarios(GOLDEN_HORIZON_MS) {
        let golden = GOLDEN_FINGERPRINTS
            .iter()
            .find(|(name, _)| *name == scenario)
            .map(|&(_, fp)| fp)
            .expect("every standard scenario carries a golden");
        config.fault_plan = FaultPlan::empty();
        let untraced = ServeSimulator::new(config.clone()).run(&trace);
        let mut sink = MemorySink::new();
        let traced = ServeSimulator::new(config).run_traced(&trace, &mut sink);
        assert!(
            untraced.fault.is_none(),
            "{scenario}: empty plan, no report"
        );
        assert!(
            untraced.losts.is_empty(),
            "{scenario}: empty plan, no losses"
        );
        assert_eq!(
            completions_fingerprint(&untraced),
            golden,
            "{scenario}: an explicitly empty fault plan moved the untraced \
             golden to {:#018x}",
            completions_fingerprint(&untraced),
        );
        assert_eq!(
            completions_fingerprint(&traced),
            golden,
            "{scenario}: an explicitly empty fault plan moved the traced golden"
        );
        assert_eq!(untraced, traced, "{scenario}: sink perturbed the run");
    }
}

#[test]
fn midpoint_crash_conserves_recovers_and_reports() {
    let hw = HwConfig::exion4();
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::builder(hw).instances(2).build())
        .capacity_estimate_rps(&mix);
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson {
            rate_rps: 0.7 * capacity,
        },
        horizon_ms: 1_500.0,
        seed: 0xC4A5,
        mix,
    };
    let config = ServeConfig::builder(hw)
        .placement(Placement::replicated(2))
        .fault_plan(FaultPlan::empty().crash(750.0, 0, 400.0))
        .build();
    let report = ServeSimulator::new(config).run(&trace);
    assert_conservation(&report, "midpoint crash");
    let fault = report.fault.as_ref().expect("faulted run carries a report");
    assert_eq!(fault.faults_injected, 1, "the crash must land on live hw");
    assert_eq!(fault.faults_noop, 0);
    assert_eq!(fault.records.len(), 1);
    assert_eq!(fault.records[0].kind, "unit-crash");
    assert_eq!(fault.records[0].lost, report.lost_requests);
    assert_eq!(fault.lost_requests, report.lost_requests);
    assert!(
        (0.0..=1.0).contains(&fault.attainment_under_failure),
        "in-window attainment {} out of range",
        fault.attainment_under_failure
    );
    // The repaired unit rejoins: the recovery fires within the run (the
    // cluster drains past the repair), and mean time-to-recover is at
    // least the repair delay (the unit cannot rejoin before its in-flight
    // iteration's clock, and never before `at + repair_ms`).
    assert_eq!(fault.recoveries, 1, "the crashed unit must rejoin");
    assert!(
        fault.mean_time_to_recover_ms >= 400.0,
        "recovered after {} ms, repair delay is 400 ms",
        fault.mean_time_to_recover_ms
    );
    // Lost requests are priced as SLO misses: attainment counts them in
    // the denominator.
    let within = report.completions.iter().filter(|c| c.within_slo()).count();
    let answered = report.completions.len() + report.sheds.len() + report.losts.len();
    assert!(
        (report.slo_attainment - within as f64 / answered as f64).abs() < 1e-9,
        "lost requests must dilute SLO attainment"
    );
}

#[test]
fn checkpointing_bounds_what_a_crash_destroys() {
    let hw = HwConfig::exion4();
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::new(hw)).capacity_estimate_rps(&mix);
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson {
            rate_rps: 0.8 * capacity,
        },
        horizon_ms: 1_500.0,
        seed: 0xC4A6,
        mix,
    };
    let config = |checkpoint: Option<usize>| {
        let b = ServeConfig::builder(hw)
            .placement(Placement::replicated(1))
            .fault_plan(FaultPlan::empty().crash(750.0, 0, 300.0));
        match checkpoint {
            Some(steps) => b.checkpoint_every(steps),
            None => b,
        }
        .build()
    };
    let plain = ServeSimulator::new(config(None)).run(&trace);
    let ckpt = ServeSimulator::new(config(Some(4))).run(&trace);
    assert_conservation(&plain, "crash without checkpointing");
    assert_conservation(&ckpt, "crash with checkpointing");
    let pf = plain.fault.as_ref().expect("fault report");
    let cf = ckpt.fault.as_ref().expect("fault report");
    assert_eq!(pf.checkpoint_spills, 0, "no policy, no spills");
    assert!(cf.checkpoint_spills > 0, "busy unit must take checkpoints");
    assert!(cf.checkpoint_bytes > 0, "spills move priced bytes");
    assert!(
        cf.checkpointed_recoveries > 0,
        "a request running at the crash must survive through its checkpoint"
    );
    assert!(
        ckpt.lost_requests <= plain.lost_requests,
        "checkpointing lost {} requests, uncheckpointed lost {}",
        ckpt.lost_requests,
        plain.lost_requests,
    );
}

#[test]
fn replicas_degrade_gracefully_where_a_gang_stalls_whole() {
    let sweeps = chaos_comparison(&HwConfig::exion4(), Some(1_500.0));
    assert_eq!(sweeps.len(), 2);
    let replicated = &sweeps[0];
    let gang = &sweeps[1];
    assert_eq!(replicated.label, "replicated x2");
    assert_eq!(gang.label, "tp2 gang");
    for c in &sweeps {
        assert!(c.baseline.fault.is_none(), "{}: clean baseline", c.label);
        assert_conservation(&c.faulted, &c.label);
        let f = c.faulted.fault.as_ref().expect("faulted run reports");
        assert_eq!(f.faults_injected, 1, "{}", c.label);
        assert!(
            c.faulted.slo_attainment <= c.baseline.slo_attainment + 1e-9,
            "{}: losing an instance cannot improve attainment",
            c.label
        );
    }
    // The replicated fleet keeps its surviving replica serving through
    // the outage; the TP=2 gang missing one member stalls whole. The
    // comparison ran at a 1500 ms horizon: the instance dies at 750 ms
    // and rejoins no earlier than 1125 ms. The replicas must finish work
    // inside that window; the single-gang fleet cannot (the 200 ms of
    // slack covers the in-flight iteration the dying unit's clock had
    // already passed when the fault fired).
    let finished_in = |r: &ServeReport, lo: f64, hi: f64| {
        r.completions
            .iter()
            .filter(|c| c.finished_ms > lo && c.finished_ms < hi)
            .count()
    };
    assert!(
        finished_in(&replicated.faulted, 750.0, 1_125.0) > 0,
        "the surviving replica must keep completing through the outage"
    );
    assert_eq!(
        finished_in(&gang.faulted, 950.0, 1_125.0),
        0,
        "a gang missing one member cannot complete anything until repair"
    );
    // And the stall shows up as lost capacity: the gang's faulted run
    // answers within SLO no more often than the replicas' faulted run.
    let rf = replicated.faulted.fault.as_ref().unwrap();
    let gf = gang.faulted.fault.as_ref().unwrap();
    assert!(
        rf.attainment_under_failure >= gf.attainment_under_failure,
        "replicas answered {:.3} in-window, the stalled gang {:.3}",
        rf.attainment_under_failure,
        gf.attainment_under_failure,
    );
}

#[test]
fn link_degradation_prices_collectives_and_destroys_nothing() {
    let hw = HwConfig::exion4();
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::builder(hw).instances(2).build())
        .capacity_estimate_rps(&mix);
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson {
            rate_rps: 0.6 * capacity,
        },
        horizon_ms: 1_500.0,
        seed: 0xC4A7,
        mix,
    };
    let config = |plan: FaultPlan| {
        ServeConfig::builder(hw)
            .placement(Placement::sharded(1, PartitionStrategy::Tensor { ways: 2 }))
            .fault_plan(plan)
            .build()
    };
    let baseline = ServeSimulator::new(config(FaultPlan::empty())).run(&trace);
    let degraded =
        ServeSimulator::new(config(FaultPlan::empty().link_degrade(375.0, 4.0, 750.0))).run(&trace);
    assert_conservation(&degraded, "link degradation");
    let f = degraded.fault.as_ref().expect("fault report");
    assert_eq!(f.faults_injected, 1);
    assert_eq!(f.lost_requests, 0, "a slow link destroys no state");
    assert_eq!(degraded.lost_requests, 0);
    assert_eq!(degraded.arrivals, baseline.arrivals, "same trace");
    assert!(
        degraded.collective_ms > baseline.collective_ms,
        "quarter bandwidth for half the horizon must stretch collectives: \
         {} ms vs {} ms",
        degraded.collective_ms,
        baseline.collective_ms,
    );
}

#[test]
fn planner_replans_around_a_crash_and_recovers_attainment() {
    let hw = HwConfig::exion4();
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::builder(hw).instances(2).build())
        .capacity_estimate_rps(&mix);
    let crash_at = 800.0;
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson {
            rate_rps: 0.6 * capacity,
        },
        horizon_ms: 2_000.0,
        seed: 0xC4A8,
        mix: mix.clone(),
    };
    // Epochs pushed past the horizon: every re-plan in this run is
    // fault-driven, not cadence-driven.
    let planner = PlacementPlanner::new(PlannerConfig::new(2).with_replanning(1e12, 0.5));
    let config = ServeConfig::builder(hw)
        .auto_placement(planner, 0.6 * capacity)
        .fault_plan(FaultPlan::empty().crash(crash_at, 0, 400.0))
        .build();
    let report = ServeSimulator::new(config).run(&trace);
    assert_conservation(&report, "planned crash");
    let fault = report.fault.as_ref().expect("fault report");
    assert_eq!(fault.faults_injected, 1);
    assert!(
        fault.replans_triggered >= 1,
        "the crash must force an out-of-cadence re-plan"
    );
    let planner_report = report.planner.as_ref().expect("auto-placed run");
    assert!(
        !planner_report.replans.is_empty(),
        "fault re-plans must be booked as priced migrations"
    );
    // The acceptance pin: after the mid-horizon crash, the re-planned
    // fleet still answers — attainment over post-crash arrivals is
    // nonzero, not a flatline.
    let post: Vec<_> = report
        .completions
        .iter()
        .filter(|c| c.arrival_ms > crash_at)
        .collect();
    assert!(!post.is_empty(), "post-crash arrivals must still complete");
    let post_within = post.iter().filter(|c| c.within_slo()).count();
    assert!(
        post_within > 0,
        "the re-planned fleet must recover nonzero SLO attainment"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Chaos invariants on randomized fleet-sized placements under
    /// seeded crash plans plus a link-degradation window: the extended
    /// conservation law holds, and two runs of the same faulted config
    /// produce bit-identical terminal streams (completions, sheds, losts
    /// and the fault records themselves).
    #[test]
    fn faulted_fleets_conserve_requests_and_are_deterministic(
        replicas in 1usize..6,
        gangs in 0usize..3,
        rate_decirps in 50u64..300,
        fault_seed in 0u64..1_000,
    ) {
        let placement = Placement::mixed(replicas, gangs, PartitionStrategy::Tensor { ways: 2 });
        let horizon_ms = 600.0;
        let plan = FaultPlan::seeded(fault_seed, horizon_ms, 150.0, 120.0, 3)
            .link_degrade(horizon_ms / 3.0, 2.0, horizon_ms / 4.0);
        let config = ServeConfig::builder(HwConfig::exion4())
            .placement(placement)
            .policy_name("edf")
            .fault_plan(plan)
            .checkpoint_every(6)
            .build();
        let trace = TraceConfig {
            pattern: TrafficPattern::Poisson { rate_rps: rate_decirps as f64 / 10.0 },
            horizon_ms,
            seed: 0xFA17 ^ fault_seed,
            mix: WorkloadMix::text_to_motion(),
        };
        let report = ServeSimulator::new(config.clone()).run(&trace);
        prop_assert_eq!(
            report.completed + report.shed_requests + report.lost_requests,
            report.arrivals,
            "served + shed + lost must equal arrivals once the cluster drains"
        );
        let fault = report.fault.as_ref().expect("chaos run carries a fault report");
        prop_assert_eq!(
            fault.lost_requests,
            report.lost_requests,
            "the fault report and the terminal stream must agree on losses"
        );
        let rerun = ServeSimulator::new(config).run(&trace);
        prop_assert_eq!(
            fingerprint(&report),
            fingerprint(&rerun),
            "a faulted run must be bit-identical under repetition"
        );
        prop_assert_eq!(
            &report.fault,
            &rerun.fault,
            "fault records must be deterministic too"
        );
    }
}
