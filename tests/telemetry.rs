//! Telemetry invariants: the instrumentation plane is a *pure observer*
//! (a run with a sink attached produces a report identical to one
//! without), request span chains are conserved (every arrival opens
//! exactly one chain and every chain ends in exactly one terminal event,
//! matching the report's completion/shed accounting), the Chrome trace
//! export is well-formed JSON with per-unit timeline coverage, metric
//! time-series sample on the configured cadence, and the streaming
//! log-bucketed histogram's percentiles stay within one bucket width of
//! the exact sorted percentiles for arbitrary sample sets.

use std::collections::HashMap;

use exion::serve::telemetry::json::is_well_formed;
use exion::serve::{
    chrome_trace_json, LogHistogram, MemorySink, PlacementPlanner, PlannerConfig, RequestEvent,
    ServeConfig, ServeReport, ServeSimulator, SliceKind, TraceConfig, TrafficPattern, WorkloadMix,
};
use exion::sim::config::HwConfig;
use proptest::prelude::*;

/// The diurnal auto-placement scenario: ramps through a re-plan so the
/// trace exercises migrations, drains, and replan markers — the hardest
/// path for observer purity.
fn planned_scenario() -> (ServeConfig, TraceConfig) {
    let hw = HwConfig::exion4();
    let capacity = ServeSimulator::new(ServeConfig::new(hw))
        .capacity_estimate_rps(&WorkloadMix::text_to_motion());
    let horizon_ms = 1_200.0;
    let planner =
        PlacementPlanner::new(PlannerConfig::new(2).with_replanning(horizon_ms / 4.0, 0.35));
    let config = ServeConfig::builder(hw)
        .auto_placement(planner, 0.3 * capacity)
        .build();
    let trace = TraceConfig {
        pattern: TrafficPattern::Diurnal {
            peak_rps: 0.9 * capacity,
            trough_frac: 0.3,
        },
        horizon_ms,
        seed: 0xEA51,
        mix: WorkloadMix::text_to_motion(),
    };
    (config, trace)
}

/// A shedding/degrading scenario so terminal accounting covers more than
/// completions.
fn admission_scenario() -> (ServeConfig, TraceConfig) {
    let hw = HwConfig::exion4();
    let capacity = ServeSimulator::new(ServeConfig::new(hw))
        .capacity_estimate_rps(&WorkloadMix::text_to_motion());
    let config = ServeConfig::builder(hw)
        .policy_name("preemptive-edf")
        .admission_name("deadline")
        .build();
    let trace = TraceConfig {
        pattern: TrafficPattern::Bursty {
            rate_rps: 1.0,
            burst_multiplier: 4.0,
            mean_dwell_ms: 250.0,
        }
        .with_mean_rps(1.6 * capacity),
        horizon_ms: 1_200.0,
        seed: 0xBEEF,
        mix: WorkloadMix::multi_tenant(),
    };
    (config, trace)
}

fn traced_run(config: &ServeConfig, trace: &TraceConfig) -> (ServeReport, MemorySink) {
    let mut sink = MemorySink::new();
    let report = ServeSimulator::new(config.clone()).run_traced(trace, &mut sink);
    (report, sink)
}

#[test]
fn attached_sink_never_perturbs_the_simulation() {
    for (config, trace) in [planned_scenario(), admission_scenario()] {
        let baseline = ServeSimulator::new(config.clone()).run(&trace);
        let (traced, sink) = traced_run(&config, &trace);
        assert_eq!(
            baseline, traced,
            "a run with a sink attached must be indistinguishable from one without"
        );
        assert!(!sink.is_empty(), "traced run must emit telemetry");
    }
}

#[test]
fn span_chains_are_conserved() {
    for (config, trace) in [planned_scenario(), admission_scenario()] {
        let (report, sink) = traced_run(&config, &trace);
        let mut arrivals: HashMap<u64, usize> = HashMap::new();
        let mut terminals: HashMap<u64, usize> = HashMap::new();
        let mut completed = 0usize;
        let mut shed = 0usize;
        for s in &sink.spans {
            match s.event {
                RequestEvent::Arrival => *arrivals.entry(s.request).or_default() += 1,
                RequestEvent::Completed { .. } => {
                    completed += 1;
                    *terminals.entry(s.request).or_default() += 1;
                }
                RequestEvent::Shed => {
                    shed += 1;
                    *terminals.entry(s.request).or_default() += 1;
                }
                _ => {}
            }
        }
        assert_eq!(arrivals.len(), report.arrivals, "one chain per arrival");
        assert!(arrivals.values().all(|&n| n == 1), "duplicate Arrival span");
        assert_eq!(completed, report.completed);
        assert_eq!(shed, report.shed_requests);
        for (id, n) in &terminals {
            assert_eq!(*n, 1, "request {id} must end in exactly one terminal");
            assert!(arrivals.contains_key(id), "terminal without arrival: {id}");
        }
        // Every chain that opened also closed: the cluster drains fully.
        assert_eq!(terminals.len(), arrivals.len(), "unterminated span chains");
        // Chains are causally ordered: no event precedes its arrival.
        let mut first_seen: HashMap<u64, f64> = HashMap::new();
        for s in &sink.spans {
            if let RequestEvent::Arrival = s.event {
                first_seen.insert(s.request, s.at_ms);
            }
        }
        for s in &sink.spans {
            let t0 = first_seen[&s.request];
            assert!(
                s.at_ms >= t0 - 1e-9,
                "event {:?} at {} precedes arrival at {t0}",
                s.event,
                s.at_ms
            );
        }
    }
}

#[test]
fn chrome_trace_export_is_well_formed_and_covers_units() {
    let (config, trace) = planned_scenario();
    let (report, sink) = traced_run(&config, &trace);
    assert!(
        sink.slices.iter().any(|s| s.kind == SliceKind::Busy),
        "timeline must carry busy slices"
    );
    assert!(
        sink.slices.iter().any(|s| s.kind == SliceKind::Idle),
        "timeline must carry idle slices"
    );
    if report
        .planner
        .as_ref()
        .map(|p| p.replan_count())
        .unwrap_or(0)
        > 0
    {
        assert!(
            sink.slices.iter().any(|s| s.kind == SliceKind::Drain),
            "a re-planned run must show migration drains"
        );
        assert!(
            sink.instants.iter().any(|m| m.name == "replan"),
            "re-plans must drop instant markers"
        );
    }
    for s in &sink.slices {
        assert!(s.dur_ms > 0.0, "zero/negative-width slice: {s:?}");
        assert!(s.start_ms.is_finite() && s.start_ms >= 0.0);
        assert!(
            sink.tracks.iter().any(|(id, _)| *id == s.instance),
            "slice on undeclared track {}",
            s.instance
        );
    }
    let json = chrome_trace_json(&sink);
    assert!(is_well_formed(&json), "export must be valid JSON");
    assert!(json.contains("\"traceEvents\""));
    assert!(
        json.matches("\"ph\":\"X\"").count() > 0,
        "no complete events"
    );
    assert!(json.matches("\"ph\":\"b\"").count() > 0, "no span opens");
}

#[test]
fn metric_series_sample_on_the_configured_cadence() {
    let hw = HwConfig::exion4();
    let config = ServeConfig::builder(hw)
        .admission_name("deadline")
        .stats_interval_ms(100.0)
        .build();
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson { rate_rps: 40.0 },
        horizon_ms: 1_000.0,
        seed: 9,
        mix: WorkloadMix::text_to_motion(),
    };
    let report = ServeSimulator::new(config).run(&trace);
    assert!(
        report.series.len() >= 5,
        "a 1s horizon at 100ms cadence must sample repeatedly, got {}",
        report.series.len()
    );
    let mut prev = f64::NEG_INFINITY;
    for snap in &report.series {
        assert!(snap.at_ms > prev, "snapshots must advance in time");
        prev = snap.at_ms;
        assert!(!snap.values.is_empty());
    }
    // Counters are cumulative (Prometheus-style): non-decreasing across
    // snapshots and never beyond the run totals.
    let values_of = |name: &str| -> Vec<f64> {
        report
            .series
            .iter()
            .flat_map(|s| &s.values)
            .filter(|v| v.name == name)
            .map(|v| v.value)
            .collect()
    };
    for (name, total) in [
        ("completed", report.completed),
        ("shed", report.shed_requests),
        ("degraded", report.degraded_requests),
        ("arrivals_released", report.arrivals),
    ] {
        let vals = values_of(name);
        assert_eq!(vals.len(), report.series.len(), "{name} missing samples");
        assert!(
            vals.windows(2).all(|w| w[1] >= w[0]),
            "{name} counter went backward"
        );
        assert!(
            *vals.last().unwrap() <= total as f64,
            "{name} exceeded the run total"
        );
    }
    // By the last sample most of the trace has been released.
    assert!(*values_of("arrivals_released").last().unwrap() > 0.0);
}

#[test]
fn run_profile_meters_the_run() {
    let (config, trace) = planned_scenario();
    let mut sim = ServeSimulator::new(config);
    assert!(sim.last_run_profile().is_none());
    let report = sim.run(&trace);
    let profile = *sim.last_run_profile().expect("run must leave a profile");
    assert!(profile.wall_ms > 0.0);
    assert!(profile.planner_calls >= 1, "offline plan must be metered");
    assert!(profile.planner_wall_ms <= profile.wall_ms);
    assert!(profile.iterations > 0);
    assert_eq!(profile.completed, report.completed);
    assert_eq!(profile.makespan_ms, report.makespan_ms);
    assert!(profile.sim_ms_per_wall_ms() > 0.0);
}

/// Splitmix-style generator (the vendored proptest has no collection
/// strategies, so sample sets derive from a sampled seed).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A latency-shaped sample in (0, ~1e5) ms, log-uniformly spread so
    /// every histogram decade gets traffic.
    fn sample_ms(&mut self) -> f64 {
        let u = (self.next() % 1_000_000) as f64 / 1_000_000.0;
        10f64.powf(u * 7.0 - 2.0)
    }
}

/// Exact nearest-rank percentile over a sorted slice — the reference the
/// streaming histogram is allowed to deviate from by at most one bucket.
fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any sample set, every reported percentile is within one
    /// log-bucket width (a multiplicative factor of the bucket growth) of
    /// the exact sorted nearest-rank percentile.
    #[test]
    fn histogram_percentiles_within_one_bucket_of_exact(
        seed in 0u64..1_000_000,
        n in 1usize..4_000,
    ) {
        let mut rng = XorShift(seed);
        let mut hist = LogHistogram::default();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.sample_ms();
            hist.record(v);
            samples.push(v);
        }
        samples.sort_by(f64::total_cmp);
        let growth = hist.growth();
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_percentile(&samples, q);
            let est = hist.percentile(q);
            prop_assert!(
                est >= exact / growth - 1e-12 && est <= exact * growth + 1e-12,
                "p{q}: estimate {est} outside one bucket of exact {exact} (growth {growth})"
            );
        }
        prop_assert_eq!(hist.count(), n as u64);
        prop_assert!(hist.percentile(1.0) <= hist.max() + 1e-12);
        prop_assert!(hist.percentile(0.0) >= hist.min() - 1e-12);
    }
}
