//! Latency-attribution pins: every request's phase breakdown must be
//! *conserved* (the ten phases sum to its end-to-end latency) across all
//! four scheduling policies, randomized traces, and fault injection; the
//! per-request records must cover every terminal outcome and agree with
//! the report's own terminal streams; and fault-only phases must be
//! exactly zero on fault-free runs.

use exion::serve::{
    FaultPlan, PartitionStrategy, Phase, Placement, RequestOutcome, ServeConfig, ServeReport,
    ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix,
};
use exion::sim::config::HwConfig;
use proptest::prelude::*;

/// Conservation tolerance: float residue from segment arithmetic, scaled
/// by the latency magnitude.
fn conserved(e2e: f64, sum: f64) -> bool {
    (sum - e2e).abs() <= 1e-9 * (1.0 + e2e.abs())
}

/// Full cross-check of a report's attribution against its terminal
/// streams: one record per released arrival, conserved phases, matching
/// end instants per outcome, and internally consistent aggregates.
fn assert_attribution_consistent(report: &ServeReport, context: &str) {
    let attrib = report
        .attribution
        .as_ref()
        .unwrap_or_else(|| panic!("{context}: attribution is on by default"));
    assert_eq!(
        attrib.requests.len(),
        report.arrivals,
        "{context}: one attribution record per released arrival"
    );
    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut lost = 0usize;
    for (i, r) in attrib.requests.iter().enumerate() {
        assert_eq!(r.id, i as u64, "{context}: records are id-ordered");
        let e2e = r.latency_ms();
        assert!(e2e >= 0.0, "{context}: request {i} ends before it arrives");
        let sum = r.phases.total_ms();
        assert!(
            conserved(e2e, sum),
            "{context}: request {i} ({:?}) breaks conservation: Σ phases \
             {sum} vs e2e {e2e}",
            r.outcome,
        );
        for (p, &v) in Phase::ALL.iter().zip(&r.phases.ms) {
            assert!(
                v.is_finite(),
                "{context}: request {i} has a non-finite {} phase",
                p.label()
            );
        }
        match r.outcome {
            RequestOutcome::Completed => completed += 1,
            RequestOutcome::Shed => {
                shed += 1;
                assert!(r.missed, "{context}: sheds always miss");
            }
            RequestOutcome::Lost => {
                lost += 1;
                assert!(r.missed, "{context}: losts always miss");
            }
        }
    }
    assert_eq!(completed, report.completed, "{context}: completed tally");
    assert_eq!(shed, report.shed_requests, "{context}: shed tally");
    assert_eq!(lost, report.lost_requests, "{context}: lost tally");
    // Terminal instants match the report's own streams record for record.
    for c in &report.completions {
        let r = &attrib.requests[c.id as usize];
        assert_eq!(r.outcome, RequestOutcome::Completed, "{context}");
        assert_eq!(r.end_ms, c.finished_ms, "{context}: completion instant");
        assert_eq!(r.missed, !c.within_slo(), "{context}: miss flag");
    }
    for s in &report.sheds {
        let r = &attrib.requests[s.id as usize];
        assert_eq!(r.outcome, RequestOutcome::Shed, "{context}");
        assert_eq!(r.end_ms, s.at_ms, "{context}: shed instant");
    }
    for l in &report.losts {
        let r = &attrib.requests[l.id as usize];
        assert_eq!(r.outcome, RequestOutcome::Lost, "{context}");
        assert_eq!(r.end_ms, l.at_ms, "{context}: loss instant");
    }
    // Aggregates are internally consistent: totals are the per-request
    // sum, miss causes tally every miss, per-model counts cover the run,
    // and the forensics digest holds only completed misses.
    let missed = attrib.requests.iter().filter(|r| r.missed).count() as u64;
    assert_eq!(
        attrib.missed_requests(),
        missed,
        "{context}: miss causes must tally every missed request"
    );
    let mut totals = 0.0;
    for r in &attrib.requests {
        totals += r.phases.total_ms();
    }
    assert!(
        (attrib.totals.total_ms() - totals).abs() <= 1e-6 * (1.0 + totals.abs()),
        "{context}: aggregate totals drifted from the per-request sum"
    );
    let per_model: u64 = attrib.per_model.iter().map(|m| m.requests).sum();
    assert_eq!(per_model as usize, report.arrivals, "{context}: per-model");
    for m in &attrib.top_misses {
        assert!(m.overshoot_ms > 0.0, "{context}: digest holds real misses");
        assert_eq!(
            attrib.requests[m.id as usize].outcome,
            RequestOutcome::Completed,
            "{context}: the digest holds completed misses only"
        );
    }
    for w in attrib.top_misses.windows(2) {
        assert!(
            w[0].overshoot_ms >= w[1].overshoot_ms,
            "{context}: digest sorts by overshoot"
        );
    }
    // Phase distributions record every request (zeros included), so each
    // phase histogram carries one sample per arrival.
    for (p, s) in Phase::ALL.iter().zip(&attrib.phase_stats) {
        assert_eq!(
            s.count as usize,
            report.arrivals,
            "{context}: phase {} must record every request",
            p.label()
        );
    }
}

/// The four shipped policies, exercised by every randomized case below.
const POLICIES: [&str; 4] = ["fcfs", "edf", "preemptive-edf", "sparsity-aware"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation + coverage on randomized fleets under every policy,
    /// with and without fault injection. Fault-free runs additionally pin
    /// the fault-only phases to exactly zero.
    #[test]
    fn phase_breakdowns_conserve_latency_across_policies_and_faults(
        replicas in 1usize..5,
        gangs in 0usize..3,
        rate_decirps in 60u64..300,
        seed in 0u64..1_000,
        chaos in any::<bool>(),
    ) {
        let horizon_ms = 500.0;
        let placement = Placement::mixed(replicas, gangs, PartitionStrategy::Tensor { ways: 2 });
        for policy in POLICIES {
            let plan = if chaos {
                FaultPlan::seeded(seed, horizon_ms, 120.0, 100.0, 2)
            } else {
                FaultPlan::empty()
            };
            let config = ServeConfig::builder(HwConfig::exion4())
                .placement(placement)
                .policy_name(policy)
                .admission_name("deadline")
                .fault_plan(plan)
                .checkpoint_every(6)
                .build();
            let trace = TraceConfig {
                pattern: TrafficPattern::Poisson { rate_rps: rate_decirps as f64 / 10.0 },
                horizon_ms,
                seed: 0xA77 ^ seed,
                mix: WorkloadMix::text_to_motion(),
            };
            let report = ServeSimulator::new(config).run(&trace);
            let context = format!("{policy} (chaos={chaos}, seed={seed})");
            assert_attribution_consistent(&report, &context);
            if !chaos {
                let attrib = report.attribution.as_ref().unwrap();
                for r in &attrib.requests {
                    prop_assert_eq!(
                        r.phases.get(Phase::FaultStall), 0.0,
                        "{}: fault stall on a fault-free run", &context
                    );
                    prop_assert_eq!(
                        r.phases.get(Phase::DegradedWindow), 0.0,
                        "{}: degraded window on a fault-free run", &context
                    );
                }
                prop_assert!(attrib.degraded_windows.is_empty());
            }
        }
    }
}

/// A deterministic end-to-end pin on the planned scenario (migrations +
/// degradation + admission shedding in one run): conservation holds and
/// the aggregate machinery produces a dominant phase.
#[test]
fn planned_scenario_attribution_is_consistent_and_names_a_bottleneck() {
    use exion_bench::experiments::serve_sweep::standard_scenarios;
    for (scenario, config, trace) in standard_scenarios(800.0) {
        let report = ServeSimulator::new(config).run(&trace);
        assert_attribution_consistent(&report, scenario);
        let attrib = report.attribution.as_ref().unwrap();
        if report.arrivals > 0 {
            assert!(
                attrib.dominant_p95.is_some(),
                "{scenario}: a run with traffic must name a p95 bottleneck"
            );
        }
    }
}
