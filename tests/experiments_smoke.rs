//! Smoke tests of every paper experiment at reduced iteration caps: each
//! harness must run end-to-end and reproduce its headline *shape* property.

use exion_bench::experiments::*;

#[test]
fn fig04_breakdown_renders() {
    let out = fig04_opcount::run();
    assert!(out.contains("Stable Diffusion") && out.contains("FFN"));
}

#[test]
fn fig06_reductions_in_paper_band() {
    // Paper: 52.47–85.41% FFN op reduction across benchmarks.
    for r in fig06_ffn_reuse::compute(Some(10)) {
        assert!(
            (0.40..0.92).contains(&r.measured_reduction),
            "{}: reduction {}",
            r.model,
            r.measured_reduction
        );
    }
}

#[test]
fn fig07_similarity_structure() {
    let r = fig07_similarity::compute(Some(12));
    assert!(r.adjacent_mean > 0.9);
    assert!(r.adjacent_mean > r.distant_mean);
}

#[test]
fn fig08_and_09_condense_merge_shape() {
    let rows = fig08_condensing::compute(Some(5));
    assert!(rows[0].measured < rows[1].measured, "MLD below SD");
    let m = fig09_merging::compute(Some(5));
    assert!(m.ffn_merge_frac < m.ffn_condense_frac);
}

#[test]
fn fig12_sorting_renders_all_models() {
    let rows = fig12_sorting::compute(Some(4));
    assert_eq!(rows.len(), 6);
}

#[test]
fn fig15_score_error_ordering() {
    let r = fig15_tslod::compute(Some(6));
    assert!(r.tslod_score_err < r.lod_score_err);
}

#[test]
fn fig17_all_benchmarks_compact() {
    let rows = fig17_conmerge_eff::compute(Some(5));
    assert_eq!(rows.len(), 7);
    for r in &rows {
        assert!(r.ffn_merge <= 1.0 && r.ffn_merge > 0.0, "{}", r.model);
    }
}

#[test]
fn fig18_gains_exceed_one_everywhere() {
    let points = fig18_energy::compute_platform(
        &exion::sim::config::HwConfig::exion24(),
        &exion::gpu::GpuSpec::rtx6000_ada(),
        &[exion::model::ModelKind::Dit],
        &[1],
        Some(4),
    );
    for p in points.iter().filter(|p| p.config.ends_with("_All")) {
        assert!(p.gain() > 1.0, "{}: {}", p.model, p.gain());
    }
}

#[test]
fn fig19a_speedups_exceed_one() {
    let points = fig19a_latency::compute_platform(
        &exion::sim::config::HwConfig::exion24(),
        &exion::gpu::GpuSpec::rtx6000_ada(),
        &[exion::model::ModelKind::Mdm],
        &[1, 8],
        Some(4),
    );
    for p in &points {
        assert!(
            p.speedup() > 1.0,
            "{} b{}: {}",
            p.model,
            p.batch,
            p.speedup()
        );
    }
}

#[test]
fn fig19b_crossover() {
    let rows = fig19b_cambricon::compute(Some(4));
    let dit = rows.iter().find(|r| r.model == "DiT").unwrap();
    assert!(dit.exion_speedup > dit.cambricon_speedup);
}

#[test]
fn tables_render() {
    assert!(tab2_hwconfig::run().contains("EXION24"));
    let t3 = tab3_power_area::compute(Some(3));
    assert_eq!(t3.len(), 6);
}

#[test]
fn serve_sweep_knee_and_policies() {
    let sweeps = serve_sweep::compute(Some(900.0));
    assert_eq!(sweeps.len(), 6);
    for s in &sweeps {
        assert!(
            s.knee_ratio() > 2.0,
            "{} {}: {}",
            s.hw,
            s.pattern,
            s.knee_ratio()
        );
    }
    let policies =
        serve_sweep::compare_policies(&exion::sim::config::HwConfig::exion4(), Some(600.0));
    assert_eq!(
        policies.len(),
        exion::serve::policy::BUILTIN_POLICY_NAMES.len()
    );
    for (policy, report) in &policies {
        assert_eq!(report.completed, report.arrivals, "{policy}");
    }
}
