//! Offline stub of `proptest` (the API subset the workspace's property tests
//! use).
//!
//! The real crate cannot be fetched in the build container, so this stub
//! reimplements the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ...) { .. } }` surface with a deterministic sampler: each test
//! function derives its RNG seed from its own name, every case draws its
//! arguments from the range strategies, and `prop_assert*` maps onto the
//! standard assertion macros. No shrinking — a failing case panics with the
//! case index so it can be replayed.

pub use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic per-test generator.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from the test's name so each test owns an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

/// Value generators. Implemented for half-open ranges of the primitive
/// numeric types, mirroring proptest's range strategies.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.random_range(0u64..2) == 1
    }
}

macro_rules! impl_arbitrary_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.random_range(<$t>::MIN..<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_full_range!(u8, u16, u32, i8, i16, i32);

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// `Just`-style constant strategy, handy for composing.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...)` item expands
/// to a `#[test]`-attributed zero-argument function that loops over sampled
/// cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands the individual test items of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __run = || -> ::core::result::Result<(), String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(msg) = __run() {
                    panic!("proptest case {__case} of {} failed: {msg}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in range.
        #[test]
        fn ranges_in_bounds(n in 1usize..24, x in -2.0f32..2.0) {
            prop_assert!((1..24).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x), "x {x}");
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!((0u64..9).sample(&mut a), (0u64..9).sample(&mut b));
    }
}
