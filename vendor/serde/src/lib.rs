//! Offline stub of `serde`.
//!
//! The build container cannot reach crates.io, and the workspace uses serde
//! only as `#[derive(Serialize, Deserialize)]` markers on plain-old-data
//! reports and configs (no serializer backend is ever invoked). This stub
//! keeps the source compatible with the real crate: swap the `[patch]`-style
//! path dependency for crates.io serde and everything keeps compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
