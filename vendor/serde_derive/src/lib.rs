//! Offline stub of `serde_derive`.
//!
//! The build container has no crates.io access, and the workspace only uses
//! serde for `#[derive(Serialize, Deserialize)]` markers (no `#[serde(...)]`
//! field attributes, no serializer backends). These derives therefore expand
//! to nothing; the marker traits in the sibling `serde` stub carry blanket
//! impls instead.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
