//! Offline stub of `criterion` (the API subset the workspace's benches use).
//!
//! The real crate cannot be fetched in the build container. This stub keeps
//! the bench sources compiling unchanged and still produces useful numbers:
//! each benchmark runs a short warm-up, then a fixed measurement batch, and
//! prints the mean iteration time. No statistics, plots, or CLI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (same implementation).
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        Self { label: s.clone() }
    }
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, then time a batch sized to a ~50 ms budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(group: Option<&str>, label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("bench {full:<48} {value:>10.2} {unit}/iter");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-count knob (accepted and ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time knob (accepted and ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into().label, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into().label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(None, &id.into().label, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(3)));
    }
}
