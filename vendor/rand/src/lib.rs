//! Offline stub of `rand` (API subset of rand 0.9).
//!
//! Provides exactly what the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] over
//! half-open ranges — backed by a deterministic SplitMix64 generator, so
//! every seeded experiment is bit-stable across platforms and rebuilds.

use core::ops::Range;

/// A source of random 64-bit words.
pub trait Rng {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods (rand 0.9 folds these into `Rng`; the stub
/// keeps them on an extension trait so both import styles work).
pub trait RngExt: Rng {
    /// A uniform sample from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        self.next_f64()
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one sample from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                range.start + rng.next_f64() as $t * (range.end - range.start)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng`: SplitMix64, which passes
    /// basic equidistribution needs of the seeded experiments while keeping
    /// the stream identical everywhere.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Mix the raw seed once so small consecutive seeds do not yield
            // correlated first outputs.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random_range(0u64..1 << 60), b.random_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(-5i32..17);
            assert!((-5..17).contains(&x));
            let f = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..4096)
            .map(|_| rng.random_range(0.0f64..1.0))
            .sum::<f64>()
            / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
