//! Functional sparsity/compaction measurement.
//!
//! The cycle-level experiments (Figs. 17–19) need each benchmark's sparsity
//! and ConMerge-compaction summary. This module measures them the way the
//! paper does: run the (sim-scale) model functionally with FFN-Reuse and
//! eager prediction active, capture the output bitmasks, and push them
//! through the ConMerge pipeline.

use exion_core::conmerge::{CompactionConfig, TileCompactor};
use exion_core::Bitmask2D;
use exion_model::config::ModelConfig;
use exion_model::pipeline::{Ablation, GenerationPipeline};
use exion_sim::workload::SparsityProfile;

/// A measured per-model sparsity/compaction summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredProfile {
    /// The summary consumed by the cycle-level simulator.
    pub profile: SparsityProfile,
    /// FFN-1 remaining columns after *global* condensing (Fig. 8 metric).
    pub ffn_condense_frac: f64,
    /// FFN-1 remaining blocks after the full ConMerge pipeline (Fig. 9).
    pub ffn_merge_frac: f64,
    /// Attention-score remaining columns after global condensing.
    pub attn_condense_frac: f64,
    /// Attention-score remaining blocks after ConMerge.
    pub attn_merge_frac: f64,
}

/// Aggregates ConMerge metrics over a set of bitmasks.
fn compact_all(masks: &[&Bitmask2D]) -> (f64, f64, f64, f64) {
    let compactor = TileCompactor::new(CompactionConfig::default());
    let mut condense = 0.0;
    let mut merge = 0.0;
    let mut util = 0.0;
    let mut weight = 0.0;
    let n = masks.len().max(1) as f64;
    for m in masks {
        let r = compactor.compact_matrix(m);
        condense += r.global_condense_fraction();
        merge += r.remaining_column_fraction();
        util += r.mean_block_utilization;
        weight += r.condense_only_fraction();
    }
    (condense / n, merge / n, util / n, weight / n)
}

/// Runs one instrumented generation and derives the measured profile using
/// the model's *operational* FFN-Reuse sparsity (Fig. 6 settings) — the
/// input to the cycle-level simulations of Figs. 18–19.
///
/// `iteration_cap` bounds the instrumented run length (enough dense+sparse
/// cycles to measure steady-state behaviour without paying for a full
/// generation).
pub fn measure_profile(config: &ModelConfig, iteration_cap: usize, seed: u64) -> MeasuredProfile {
    measure_with_sparsity(
        config,
        config.ffn_reuse.target_sparsity,
        iteration_cap,
        seed,
    )
}

/// Like [`measure_profile`] but at the sparsity level the paper's ConMerge
/// figures quote for this model (Figs. 8/9/12/17; see the
/// `FfnReuseSetting::conmerge_sparsity` docs for the discrepancy note).
pub fn measure_conmerge(config: &ModelConfig, iteration_cap: usize, seed: u64) -> MeasuredProfile {
    measure_with_sparsity(
        config,
        config.ffn_reuse.conmerge_sparsity,
        iteration_cap,
        seed,
    )
}

fn measure_with_sparsity(
    config: &ModelConfig,
    ffn_sparsity: f64,
    iteration_cap: usize,
    seed: u64,
) -> MeasuredProfile {
    let mut capped = *config;
    capped.ffn_reuse.target_sparsity = ffn_sparsity;
    capped.iterations = capped.iterations.min(iteration_cap);
    let policy = Ablation::FfnReuseEp.policy(&capped).with_mask_capture();
    let mut pipeline = GenerationPipeline::new(&capped, policy, seed);
    let (_, report) = pipeline.generate("profile measurement prompt", seed.wrapping_add(1));

    let ffn_masks = report.ffn_masks();
    let attn_masks = report.attention_masks();
    let (ffn_cond, ffn_merge, ffn_util, ffn_weight) = compact_all(&ffn_masks);
    let (attn_cond, attn_merge, attn_util, _) = compact_all(&attn_masks);

    let inter = report.mean_inter_iteration_sparsity();
    let intra = report.mean_intra_iteration_sparsity();
    let (q_skip, kv_skip) = report.mean_projection_skips();

    MeasuredProfile {
        profile: SparsityProfile {
            inter_sparsity: inter,
            ffn_block_frac: ffn_merge.clamp(0.01, 1.0),
            ffn_utilization: ffn_util.clamp(0.05, 1.0),
            ffn_weight_frac: ffn_weight.clamp(0.01, 1.0),
            intra_sparsity: intra,
            attn_block_frac: attn_merge.clamp(0.01, 1.0),
            attn_utilization: attn_util.clamp(0.05, 1.0),
            q_skip: q_skip.clamp(0.0, 0.95),
            kv_skip: kv_skip.clamp(0.0, 0.95),
        },
        ffn_condense_frac: ffn_cond,
        ffn_merge_frac: ffn_merge,
        attn_condense_frac: attn_cond,
        attn_merge_frac: attn_merge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;

    #[test]
    fn measured_profile_is_consistent() {
        let config = ModelConfig::for_kind(ModelKind::Mld).shrunk(2, 6);
        let m = measure_profile(&config, 6, 3);
        let p = m.profile;
        assert!(p.inter_sparsity > 0.8, "inter {}", p.inter_sparsity);
        assert!(p.intra_sparsity > 0.1, "intra {}", p.intra_sparsity);
        assert!(p.ffn_block_frac <= 1.0 && p.ffn_block_frac > 0.0);
        // Merging never needs more blocks than per-tile condensing alone
        // (both block-granular; the global condense metric is column-granular
        // and can fall below one block's worth on tiny sim matrices).
        assert!(p.ffn_block_frac <= p.ffn_weight_frac + 1e-9);
    }

    #[test]
    fn measurement_is_deterministic() {
        let config = ModelConfig::for_kind(ModelKind::Mld).shrunk(2, 4);
        let a = measure_profile(&config, 4, 9);
        let b = measure_profile(&config, 4, 9);
        assert_eq!(a, b);
    }
}
