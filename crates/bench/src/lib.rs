//! # exion-bench
//!
//! The experiment harness of the EXION reproduction: one module (and one
//! binary) per table and figure of the paper's evaluation, plus Criterion
//! benches of the core mechanisms.
//!
//! Run any experiment with `cargo run --release -p exion-bench --bin <id>`;
//! the ids are listed in DESIGN.md §4 and EXPERIMENTS.md records paper-vs-
//! measured values for each.

pub mod experiments;
pub mod fmt;
pub mod profiles;
