//! Fig. 15 — two-step leading-one detection accuracy on DiT.
//!
//! Paper values (PSNR vs the vanilla model): FFN-Reuse only 16.0 dB,
//! EP with single-step LOD 11.8 dB, EP with TS-LOD 15.6 dB — the TS-LOD
//! improvement is what makes EP usable on diffusion models.
//!
//! Two claims are measured:
//! 1. *prediction accuracy* — TS-LOD's predicted attention scores are closer
//!    to the exact integer scores than single-step LOD's (the figure's
//!    "More Accurate" panel);
//! 2. *output quality* — end-to-end PSNR vs the vanilla pipeline for the
//!    three methods. (At sim scale the top-k selection is scale-invariant,
//!    so rank-preserving LOD errors cost less PSNR than at paper scale; the
//!    prediction-error ordering is the robust signal.)

use exion_core::ep::{log_dot, AccumMode, EpConfig, LodMode};
use exion_core::ffn_reuse::FfnReuseConfig;
use exion_model::config::{ModelConfig, ModelKind};
use exion_model::pipeline::GenerationPipeline;
use exion_model::transformer::ExecPolicy;
use exion_tensor::rng::seeded_uniform;
use exion_tensor::stats::psnr;
use exion_tensor::{IntWidth, QuantMatrix};

use crate::fmt::render_table;

/// Measured Fig. 15 quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsLodResult {
    /// PSNR of FFN-Reuse only vs vanilla (paper: 16.0 dB).
    pub ffn_reuse_db: f64,
    /// PSNR of FFN-Reuse + EP with single-step LOD (paper: 11.8 dB).
    pub ep_lod_db: f64,
    /// PSNR of FFN-Reuse + EP with two-step LOD (paper: 15.6 dB).
    pub ep_tslod_db: f64,
    /// Mean relative error of LOD-predicted attention scores vs exact.
    pub lod_score_err: f64,
    /// Mean relative error of TS-LOD-predicted scores vs exact.
    pub tslod_score_err: f64,
}

/// Mean relative error of log-domain dot products against exact integer
/// dot products, over seeded data at the model's head width.
fn score_error(mode: LodMode, d_head: usize, samples: usize) -> f64 {
    let q = seeded_uniform(samples, d_head, -1.0, 1.0, 0x10D1);
    let k = seeded_uniform(samples, d_head, -1.0, 1.0, 0x10D2);
    let qq = QuantMatrix::quantize(&q, IntWidth::Int12);
    let qk = QuantMatrix::quantize(&k, IntWidth::Int12);
    let mut err = 0.0f64;
    let mut norm = 0.0f64;
    for i in 0..samples {
        let exact: i64 = qq
            .row(i)
            .iter()
            .zip(qk.row(i))
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum();
        let pred = log_dot(qq.row(i), qk.row(i), mode, AccumMode::OneHotOrTree);
        err += (pred - exact).abs() as f64;
        norm += exact.abs().max(1) as f64;
    }
    err / norm
}

/// Runs the three methods on the DiT benchmark.
pub fn compute(iteration_cap: Option<usize>) -> TsLodResult {
    let mut config = ModelConfig::for_kind(ModelKind::Dit);
    if let Some(cap) = iteration_cap {
        config.iterations = config.iterations.min(cap);
    }
    let seed = 0xF15;
    let noise = 0x7510D;
    let prompt = "class: puma, mountain lion, panther";

    let reuse = FfnReuseConfig::with_target_sparsity(
        config.ffn_reuse.target_sparsity,
        config.ffn_reuse.sparse_iters,
    );
    let ep_ts = EpConfig::new(config.ep.q_th, config.ep.top_k_ratio);
    let ep_lod = ep_ts.with_single_lod();

    let mut vanilla = GenerationPipeline::new(&config, ExecPolicy::vanilla(), seed);
    let (reference, _) = vanilla.generate(prompt, noise);

    let run = |policy: ExecPolicy| -> f64 {
        let mut p = GenerationPipeline::new(&config, policy, seed);
        let (out, _) = p.generate(prompt, noise);
        psnr(&reference, &out)
    };

    let d_head = config.sim.d_model / config.sim.heads;
    TsLodResult {
        ffn_reuse_db: run(ExecPolicy::vanilla().with_ffn_reuse(reuse)),
        ep_lod_db: run(ExecPolicy::vanilla().with_ffn_reuse(reuse).with_ep(ep_lod)),
        ep_tslod_db: run(ExecPolicy::vanilla().with_ffn_reuse(reuse).with_ep(ep_ts)),
        lod_score_err: score_error(LodMode::Single, d_head, 512),
        tslod_score_err: score_error(LodMode::TwoStep, d_head, 512),
    }
}

/// Renders the result table.
pub fn render(r: &TsLodResult) -> String {
    let mut out = String::from(
        "Fig. 15 — Two-step leading-one detection accuracy (DiT, PSNR vs vanilla)\n\n",
    );
    let rows = vec![
        vec![
            "FFN-Reuse only".to_string(),
            "16.0".to_string(),
            format!("{:.1}", r.ffn_reuse_db),
            "-".to_string(),
        ],
        vec![
            "EP w/ LOD".to_string(),
            "11.8".to_string(),
            format!("{:.1}", r.ep_lod_db),
            format!("{:.3}", r.lod_score_err),
        ],
        vec![
            "EP w/ TS LOD".to_string(),
            "15.6".to_string(),
            format!("{:.1}", r.ep_tslod_db),
            format!("{:.3}", r.tslod_score_err),
        ],
    ];
    out.push_str(&render_table(
        &[
            "Method",
            "PSNR paper (dB)",
            "PSNR measured (dB)",
            "Score rel. error",
        ],
        &rows,
    ));
    out.push_str(
        "\nShape check: TS-LOD predicts attention scores far more accurately than\n\
         single-step LOD, recovering most of the quality gap to the FFN-Reuse-only\n\
         reference.\n",
    );
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tslod_predicts_scores_better_than_lod() {
        let r = compute(Some(12));
        assert!(
            r.tslod_score_err < 0.6 * r.lod_score_err,
            "TS-LOD err {} vs LOD err {}",
            r.tslod_score_err,
            r.lod_score_err
        );
    }

    #[test]
    fn psnr_ordering_is_sane() {
        let r = compute(Some(12));
        // All methods must preserve generation quality at sim scale (the
        // paper-scale PSNR gap between LOD depths is driven by the score
        // errors asserted in the companion test; at sim scale top-k is
        // nearly scale-invariant, so PSNR differences between LOD depths are
        // within noise).
        assert!(r.ffn_reuse_db > 8.0, "FFN-Reuse PSNR {:.2}", r.ffn_reuse_db);
        assert!(r.ep_lod_db > 8.0, "LOD PSNR {:.2}", r.ep_lod_db);
        assert!(r.ep_tslod_db > 8.0, "TS-LOD PSNR {:.2}", r.ep_tslod_db);
    }
}
