//! Fig. 17 — ConMerge efficiency: remaining-column percentage of the first
//! FFN layer's output and the attention score after condensing, then after
//! merging, for all seven benchmarks.
//!
//! Paper values: FFN condensing average 60.3% → merging 16.2%; attention
//! condensing 80.0% → merging 50.0%. Problem cases: Stable Diffusion FFN
//! 77.4% → 8.4%, VideoCrafter2 98.6% → 35.2%.

use exion_model::config::ModelConfig;

use crate::fmt::{pct, render_table};
use crate::profiles::measure_conmerge;

/// One benchmark's ConMerge efficiency row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub model: &'static str,
    /// FFN-1 remaining after condensing.
    pub ffn_condense: f64,
    /// FFN-1 remaining after merging.
    pub ffn_merge: f64,
    /// Attention score remaining after condensing.
    pub attn_condense: f64,
    /// Attention score remaining after merging.
    pub attn_merge: f64,
}

/// Measures all seven benchmarks.
pub fn compute(iteration_cap: Option<usize>) -> Vec<Row> {
    let cap = iteration_cap.unwrap_or(10);
    ModelConfig::all()
        .iter()
        .map(|config| {
            let m = measure_conmerge(config, cap, 0xF17);
            Row {
                model: config.kind.name(),
                ffn_condense: m.ffn_condense_frac,
                ffn_merge: m.ffn_merge_frac,
                attn_condense: m.attn_condense_frac,
                attn_merge: m.attn_merge_frac,
            }
        })
        .collect()
}

/// Renders the rows with paper averages.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Fig. 17 — ConMerge efficiency: remaining column percentage after each step\n\
         Paper averages: FFN 60.3% (condense) -> 16.2% (merge); attention 80.0% -> 50.0%\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                pct(r.ffn_condense),
                pct(r.ffn_merge),
                pct(r.attn_condense),
                pct(r.attn_merge),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "Benchmark",
            "FFN condense",
            "FFN merge",
            "Attn condense",
            "Attn merge",
        ],
        &table_rows,
    ));
    let n = rows.len().max(1) as f64;
    out.push_str(&format!(
        "\nMeasured averages: FFN {} -> {}; attention {} -> {}\n",
        pct(rows.iter().map(|r| r.ffn_condense).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.ffn_merge).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.attn_condense).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.attn_merge).sum::<f64>() / n),
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_always_improves_on_condensing() {
        for r in compute(Some(6)) {
            assert!(
                r.ffn_merge <= r.ffn_condense + 1e-9,
                "{}: FFN merge {} vs condense {}",
                r.model,
                r.ffn_merge,
                r.ffn_condense
            );
            // Attention-score matrices at sim scale can be as narrow as a
            // single 16-column block (merging then has nothing to pair), so
            // the block-granular merge metric may sit one block above the
            // column-granular condense metric.
            assert!(
                r.attn_merge <= r.attn_condense + 0.2,
                "{}: attn merge {} vs condense {}",
                r.model,
                r.attn_merge,
                r.attn_condense
            );
        }
    }

    #[test]
    fn ffn_compacts_deeper_than_attention_on_average() {
        // FFN sparsity (70–97%) exceeds most attention sparsity, so FFN
        // blocks compact further — the paper's 16.2% vs 50.0% averages.
        let rows = compute(Some(6));
        let n = rows.len() as f64;
        let ffn_avg = rows.iter().map(|r| r.ffn_merge).sum::<f64>() / n;
        let attn_avg = rows.iter().map(|r| r.attn_merge).sum::<f64>() / n;
        assert!(ffn_avg < attn_avg, "ffn {ffn_avg} vs attn {attn_avg}");
    }
}
