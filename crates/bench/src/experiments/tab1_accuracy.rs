//! Table I — model accuracy evaluation across the ablation stack.
//!
//! The paper's dataset metrics (FID/IS/R-Precision/FAD/…) require the
//! pre-trained models and datasets; the reproduction uses the relative
//! metrics described in DESIGN.md §1: PSNR against the vanilla pipeline
//! (Table I's own "PSNR w/ Vanil." columns), cosine similarity, and a
//! proxy-FID (Fréchet distance over random-projection features) between the
//! vanilla output distribution and each ablation's.

use exion_model::config::ModelConfig;
use exion_model::pipeline::{Ablation, GenerationPipeline};
use exion_model::transformer::ExecPolicy;
use exion_tensor::stats::{cosine_similarity, proxy_fid, psnr};
use exion_tensor::Matrix;

use crate::fmt::render_table;

/// Accuracy of one (model, ablation) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Benchmark name.
    pub model: &'static str,
    /// Ablation name.
    pub method: &'static str,
    /// PSNR vs the vanilla output (dB), `inf` for vanilla itself.
    pub psnr_db: f64,
    /// Cosine similarity vs the vanilla output.
    pub cosine: f64,
    /// Proxy-FID between the vanilla batch and this ablation's batch.
    pub proxy_fid: f64,
    /// Mean inter-iteration sparsity achieved.
    pub inter_sparsity: f64,
    /// Mean intra-iteration sparsity achieved.
    pub intra_sparsity: f64,
}

/// The ablation rows of Table I.
const METHODS: [Ablation; 4] = [
    Ablation::Vanilla,
    Ablation::FfnReuse,
    Ablation::FfnReuseEp,
    Ablation::FfnReuseEpQuant,
];

/// Evaluates all benchmarks × ablations.
///
/// `iteration_cap` shortens runs for tests; `batch` sets the proxy-FID batch
/// size (paper-equivalent distribution check).
pub fn compute(iteration_cap: Option<usize>, batch: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for config in ModelConfig::all() {
        let mut c = config;
        if let Some(cap) = iteration_cap {
            c.iterations = c.iterations.min(cap);
        }
        let seed = 0x7AB1;
        let noise = 0xACC0;
        let prompt = "a corgi dog surfed the waves with a bright yellow surfboard";

        let mut vanilla = GenerationPipeline::new(&c, ExecPolicy::vanilla(), seed);
        let (reference, _) = vanilla.generate(prompt, noise);
        let reference_batch = vanilla.generate_batch(prompt, batch, noise.wrapping_add(1));

        for method in METHODS {
            let (out, batch_out, inter, intra) = if method == Ablation::Vanilla {
                (reference.clone(), reference_batch.clone(), 0.0, 0.0)
            } else {
                let mut p = GenerationPipeline::new(&c, method.policy(&c), seed);
                let (out, report) = p.generate(prompt, noise);
                let b = p.generate_batch(prompt, batch, noise.wrapping_add(1));
                (
                    out,
                    b,
                    report.mean_inter_iteration_sparsity(),
                    report.mean_intra_iteration_sparsity(),
                )
            };
            cells.push(Cell {
                model: c.kind.name(),
                method: method.name(),
                psnr_db: psnr(&reference, &out),
                cosine: cosine_similarity(reference.as_slice(), out.as_slice()),
                proxy_fid: normalized_fid(&reference_batch, &batch_out),
                inter_sparsity: inter,
                intra_sparsity: intra,
            });
        }
    }
    cells
}

/// Proxy-FID normalized by the reference batch's feature scale, so values
/// are comparable across models.
fn normalized_fid(reference: &Matrix, generated: &Matrix) -> f64 {
    let raw = proxy_fid(reference, generated, 24, 0xF1D);
    let self_scale = reference.frobenius_norm() as f64 / (reference.len() as f64).sqrt();
    if self_scale == 0.0 {
        raw
    } else {
        raw / (self_scale * self_scale)
    }
}

/// Renders the table.
pub fn render(cells: &[Cell]) -> String {
    let mut out = String::from(
        "Table I — Model accuracy evaluation (relative metrics vs vanilla; see DESIGN.md for\n\
         the dataset-metric substitution). Paper reports trivial degradation for all methods.\n\n",
    );
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.model.to_string(),
                c.method.to_string(),
                if c.psnr_db.is_infinite() {
                    "ref".to_string()
                } else {
                    format!("{:.1}", c.psnr_db)
                },
                format!("{:.4}", c.cosine),
                format!("{:.4}", c.proxy_fid),
                format!("{:.0}%", 100.0 * c.inter_sparsity),
                format!("{:.0}%", 100.0 * c.intra_sparsity),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "Benchmark",
            "Method",
            "PSNR (dB)",
            "Cosine",
            "proxy-FID",
            "Inter-sp.",
            "Intra-sp.",
        ],
        &rows,
    ));
    out
}

/// Runs the full experiment (paper iteration counts, batch 4).
pub fn run() -> String {
    render(&compute(None, 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;

    /// Reduced single-model variant for fast checks.
    fn one_model(kind: ModelKind, cap: usize) -> Vec<Cell> {
        let mut c = ModelConfig::for_kind(kind).shrunk(2, cap);
        c.iterations = cap;
        let seed = 1;
        let noise = 2;
        let mut vanilla = GenerationPipeline::new(&c, ExecPolicy::vanilla(), seed);
        let (reference, _) = vanilla.generate("t", noise);
        METHODS
            .iter()
            .map(|&m| {
                let out = if m == Ablation::Vanilla {
                    reference.clone()
                } else {
                    let mut p = GenerationPipeline::new(&c, m.policy(&c), seed);
                    p.generate("t", noise).0
                };
                Cell {
                    model: c.kind.name(),
                    method: m.name(),
                    psnr_db: psnr(&reference, &out),
                    cosine: cosine_similarity(reference.as_slice(), out.as_slice()),
                    proxy_fid: 0.0,
                    inter_sparsity: 0.0,
                    intra_sparsity: 0.0,
                }
            })
            .collect()
    }

    #[test]
    fn approximations_track_vanilla() {
        let cells = one_model(ModelKind::Mld, 8);
        for c in &cells {
            if c.method == "Vanilla" {
                assert!(c.psnr_db.is_infinite());
            } else {
                assert!(c.psnr_db > 6.0, "{}: {:.1} dB", c.method, c.psnr_db);
                assert!(c.cosine > 0.8, "{}: cosine {:.3}", c.method, c.cosine);
            }
        }
    }

    #[test]
    fn ffn_reuse_alone_is_most_accurate_approximation() {
        let cells = one_model(ModelKind::Mld, 8);
        let reuse = cells.iter().find(|c| c.method == "FFN-Reuse").unwrap();
        let quant = cells
            .iter()
            .find(|c| c.method == "FFN-Reuse+EP+Quant")
            .unwrap();
        assert!(reuse.psnr_db >= quant.psnr_db - 0.5);
    }
}
