//! Table II — hardware specifications of the GPUs and the matched EXION
//! instances.

use exion_gpu::GpuSpec;
use exion_sim::config::HwConfig;
use exion_sim::energy;

use crate::fmt::render_table;

/// One spec row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Device name.
    pub device: String,
    /// Peak throughput description.
    pub throughput: String,
    /// Memory bandwidth (GB/s).
    pub bandwidth_gbps: f64,
    /// Power (W): TDP for GPUs, nominal all-engines-active power for EXION.
    pub power_w: f64,
}

/// Builds the Table II rows.
pub fn compute() -> Vec<Row> {
    let edge = GpuSpec::jetson_orin_nano();
    let server = GpuSpec::rtx6000_ada();
    let e4 = HwConfig::exion4();
    let e24 = HwConfig::exion24();
    let dsc_w = energy::dsc_nominal_power_mw() / 1000.0;
    vec![
        Row {
            device: edge.name.to_string(),
            throughput: "40.0 TOPS (INT8)".to_string(),
            bandwidth_gbps: edge.bandwidth_gbps,
            power_w: edge.tdp_w,
        },
        Row {
            device: server.name.to_string(),
            throughput: "91.1 TFLOPS (FP32)".to_string(),
            bandwidth_gbps: server.bandwidth_gbps,
            power_w: server.tdp_w,
        },
        Row {
            device: e4.name.to_string(),
            throughput: format!("{:.1} TOPS (INT12)", e4.peak_tops()),
            bandwidth_gbps: e4.dram_gbps,
            power_w: 4.0 * dsc_w,
        },
        Row {
            device: e24.name.to_string(),
            throughput: format!("{:.1} TOPS (INT12)", e24.peak_tops()),
            bandwidth_gbps: e24.dram_gbps,
            power_w: 24.0 * dsc_w,
        },
    ]
}

/// Renders Table II.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from("Table II — Hardware specifications of GPUs and EXION\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.throughput.clone(),
                format!("{:.0} GB/s", r.bandwidth_gbps),
                format!("{:.2} W", r.power_w),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["Device", "Throughput", "Memory bandwidth", "Power"],
        &table_rows,
    ));
    out.push_str(&format!(
        "\nEXION power above is nominal (all engines at full activity, Table III x DSC count).\n\
         The paper's ~3.18 W / ~20.40 W are run-time averages with clock gating — the\n\
         simulator reproduces those as mean power in fig18_energy.\n\
         Area model: one DSC = {:.2} mm^2; EXION24 + 64 MiB GSC = {:.2} mm^2 (paper: 152.28).\n",
        energy::dsc_area_mm2(),
        energy::accelerator_area_mm2(24, 64.0),
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exion4_matches_edge_gpu_class() {
        let rows = compute();
        let edge_bw = rows[0].bandwidth_gbps;
        let e4_bw = rows[2].bandwidth_gbps;
        // Table II: 68 vs 51 GB/s — same class, EXION slightly below.
        assert!(e4_bw < edge_bw && e4_bw > 0.5 * edge_bw);
        // EXION4 nominal power ~6 W, well under the 15 W edge GPU.
        assert!(rows[2].power_w < rows[0].power_w);
    }

    #[test]
    fn exion24_throughput_near_235_tops() {
        let rows = compute();
        assert!(rows[3].throughput.contains("235") || rows[3].throughput.contains("236"));
    }
}
