//! Fig. 19(a) — end-to-end generation latency of EXION4_All / EXION24_All
//! against the edge and server GPUs at batch sizes 1 and 8.
//!
//! Paper headline speedups (batch 1): EXION4_All 43.7–1060.6× over the edge
//! GPU; EXION24_All 3.3–365.6× over the server GPU.

use exion_gpu::diffusion_cost::estimate_generation;
use exion_gpu::GpuSpec;
use exion_model::config::{ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::perf::{simulate_model, SimAblation};

use crate::experiments::fig18_energy::EDGE_MODELS;
use crate::fmt::{ratio, render_table};
use crate::profiles::measure_profile;

/// One latency comparison point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Platform name (`EXION4_All` / `EXION24_All`).
    pub config: String,
    /// Benchmark name.
    pub model: &'static str,
    /// Batch size.
    pub batch: u64,
    /// EXION latency (ms).
    pub exion_ms: f64,
    /// GPU latency (ms).
    pub gpu_ms: f64,
}

impl Point {
    /// Speedup over the GPU.
    pub fn speedup(&self) -> f64 {
        if self.exion_ms == 0.0 {
            0.0
        } else {
            self.gpu_ms / self.exion_ms
        }
    }
}

/// Computes latency points for one platform pairing.
pub fn compute_platform(
    hw: &HwConfig,
    gpu: &GpuSpec,
    models: &[ModelKind],
    batches: &[u64],
    iteration_cap: Option<usize>,
) -> Vec<Point> {
    let cap = iteration_cap.unwrap_or(10);
    let mut points = Vec::new();
    for &kind in models {
        let config = ModelConfig::for_kind(kind);
        let measured = measure_profile(&config, cap, 0xF19);
        for &batch in batches {
            let r = simulate_model(hw, &config, &measured.profile, SimAblation::All, batch);
            let g = estimate_generation(gpu, &config, batch);
            points.push(Point {
                config: r.name.clone(),
                model: config.kind.name(),
                batch,
                exion_ms: r.latency_ms,
                gpu_ms: g.latency_ms,
            });
        }
    }
    points
}

/// Computes both pairings.
pub fn compute(iteration_cap: Option<usize>) -> (Vec<Point>, Vec<Point>) {
    let edge = compute_platform(
        &HwConfig::exion4(),
        &GpuSpec::jetson_orin_nano(),
        &EDGE_MODELS,
        &[1, 8],
        iteration_cap,
    );
    let server = compute_platform(
        &HwConfig::exion24(),
        &GpuSpec::rtx6000_ada(),
        &ModelKind::ALL,
        &[1, 8],
        iteration_cap,
    );
    (edge, server)
}

/// Renders one platform's points.
pub fn render_platform(title: &str, points: &[Point]) -> String {
    let mut out = format!("{title}\n\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.to_string(),
                p.batch.to_string(),
                format!("{:.2}", p.exion_ms),
                format!("{:.2}", p.gpu_ms),
                ratio(p.speedup()),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["Benchmark", "Batch", "EXION (ms)", "GPU (ms)", "Speedup"],
        &rows,
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    let (edge, server) = compute(None);
    let mut out = render_platform(
        "Fig. 19(a) — Latency: EXION4_All vs edge GPU (paper speedup 43.7-1060.6x @ batch 1)",
        &edge,
    );
    out.push('\n');
    out.push_str(&render_platform(
        "Fig. 19(a) — Latency: EXION24_All vs server GPU (paper speedup 3.3-365.6x @ batch 1)",
        &server,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exion_is_faster_than_gpu_everywhere() {
        let points = compute_platform(
            &HwConfig::exion4(),
            &GpuSpec::jetson_orin_nano(),
            &[ModelKind::Mld, ModelKind::MakeAnAudio],
            &[1],
            Some(6),
        );
        for p in &points {
            assert!(p.speedup() > 1.0, "{} speedup {}", p.model, p.speedup());
        }
    }

    #[test]
    fn small_models_gain_more_than_large_on_server() {
        // The paper's range 3.3–365.6×: tiny MLD can't utilize a GPU, giant
        // Stable Diffusion can — EXION's advantage shrinks.
        let points = compute_platform(
            &HwConfig::exion24(),
            &GpuSpec::rtx6000_ada(),
            &[ModelKind::Mld, ModelKind::StableDiffusion],
            &[1],
            Some(6),
        );
        let mld = points.iter().find(|p| p.model == "MLD").unwrap();
        let sd = points
            .iter()
            .find(|p| p.model == "Stable Diffusion")
            .unwrap();
        assert!(
            mld.speedup() > sd.speedup(),
            "MLD {} vs SD {}",
            mld.speedup(),
            sd.speedup()
        );
    }
}
