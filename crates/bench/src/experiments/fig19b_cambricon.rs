//! Fig. 19(b) — speedup over the A100 GPU: Cambricon-D vs EXION42 on
//! Stable Diffusion (conv-heavy) and DiT (transformer-only).
//!
//! Paper values: Stable Diffusion — Cambricon-D 7.9×, EXION42 7.0×
//! (Cambricon-D slightly ahead thanks to its conv differential
//! acceleration); DiT — Cambricon-D 3.3×, EXION42 5.2× (EXION ahead on
//! transformer-only networks). The *structural* crossover is the claim this
//! experiment reproduces.

use exion_gpu::cambricon::CambriconD;
use exion_gpu::diffusion_cost::estimate_generation;
use exion_gpu::GpuSpec;
use exion_model::config::{ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::perf::{simulate_model, SimAblation};

use crate::fmt::{ratio, render_table};
use crate::profiles::measure_profile;

/// One benchmark's three-way comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub model: &'static str,
    /// Cambricon-D speedup over the A100.
    pub cambricon_speedup: f64,
    /// EXION42_All speedup over the A100.
    pub exion_speedup: f64,
    /// Paper's Cambricon-D value.
    pub paper_cambricon: f64,
    /// Paper's EXION42 value.
    pub paper_exion: f64,
}

/// Computes both benchmark rows.
pub fn compute(iteration_cap: Option<usize>) -> Vec<Row> {
    let cap = iteration_cap.unwrap_or(10);
    let gpu = GpuSpec::a100();
    let hw = HwConfig::exion42();
    let cd = CambriconD::paper_calibrated();
    [
        (ModelKind::StableDiffusion, 7.9, 7.0),
        (ModelKind::Dit, 3.3, 5.2),
    ]
    .iter()
    .map(|&(kind, paper_cd, paper_ex)| {
        let config = ModelConfig::for_kind(kind);
        let measured = measure_profile(&config, cap, 0xF19B);
        let exion = simulate_model(&hw, &config, &measured.profile, SimAblation::All, 1);
        let a100 = estimate_generation(&gpu, &config, 1);
        Row {
            model: config.kind.name(),
            cambricon_speedup: cd.speedup_for_model(&config),
            exion_speedup: a100.latency_ms / exion.latency_ms,
            paper_cambricon: paper_cd,
            paper_exion: paper_ex,
        }
    })
    .collect()
}

/// Renders the comparison.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from("Fig. 19(b) — Speedup over the NVIDIA A100 (batch 1)\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                format!(
                    "{} (paper {}x)",
                    ratio(r.cambricon_speedup),
                    r.paper_cambricon
                ),
                format!("{} (paper {}x)", ratio(r.exion_speedup), r.paper_exion),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["Benchmark", "Cambricon-D", "EXION42_All"],
        &table_rows,
    ));
    out.push_str(
        "\nShape check: Cambricon-D leads on the conv-heavy model; EXION leads on the\n\
         transformer-only model (its output sparsity lives in transformer blocks).\n",
    );
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_crossover_reproduced() {
        let rows = compute(Some(6));
        let sd = rows.iter().find(|r| r.model == "Stable Diffusion").unwrap();
        let dit = rows.iter().find(|r| r.model == "DiT").unwrap();
        // DiT: EXION must beat Cambricon-D.
        assert!(
            dit.exion_speedup > dit.cambricon_speedup,
            "DiT: EXION {} vs Cambricon {}",
            dit.exion_speedup,
            dit.cambricon_speedup
        );
        // Cambricon-D must do relatively better on SD than on DiT.
        assert!(
            sd.cambricon_speedup > dit.cambricon_speedup,
            "Cambricon: SD {} vs DiT {}",
            sd.cambricon_speedup,
            dit.cambricon_speedup
        );
        // Both accelerators beat the A100 on both models.
        for r in &rows {
            assert!(r.exion_speedup > 1.0, "{}: {}", r.model, r.exion_speedup);
        }
    }
}
