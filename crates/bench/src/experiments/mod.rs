//! One module per table/figure of the paper's evaluation (DESIGN.md §4).
//!
//! Every module exposes `compute(...)` (structured results, used by
//! integration tests with reduced iteration caps) and `run()` (the full
//! experiment rendered as text, used by the `src/bin` wrappers).

pub mod fig04_opcount;
pub mod fig06_ffn_reuse;
pub mod fig07_similarity;
pub mod fig08_condensing;
pub mod fig09_merging;
pub mod fig12_sorting;
pub mod fig15_tslod;
pub mod fig17_conmerge_eff;
pub mod fig18_energy;
pub mod fig19a_latency;
pub mod fig19b_cambricon;
pub mod serve_sweep;
pub mod tab1_accuracy;
pub mod tab2_hwconfig;
pub mod tab3_power_area;
