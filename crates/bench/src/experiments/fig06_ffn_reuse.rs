//! Fig. 6 (table) — FFN-Reuse configurations, inter-iteration output
//! sparsity and FFN op reduction per benchmark.
//!
//! Paper values: sparsity 70–97% and FFN op reduction 52.47–85.41% with
//! N = 2–9 sparse iterations per dense iteration.

use exion_model::config::ModelConfig;
use exion_model::pipeline::{Ablation, GenerationPipeline};

use crate::fmt::{pct, render_table};

/// One benchmark's measured FFN-Reuse row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub model: &'static str,
    /// Sparse iterations between dense iterations (N).
    pub n: usize,
    /// Measured mean first-FFN-layer output sparsity over sparse iterations.
    pub measured_sparsity: f64,
    /// Paper's sparsity target.
    pub target_sparsity: f64,
    /// Measured FFN MAC reduction over the whole run.
    pub measured_reduction: f64,
    /// Paper's reported reduction (%).
    pub paper_reduction_pct: f64,
}

/// Runs the FFN-Reuse ablation on every benchmark (sim-scale).
///
/// `iteration_cap` limits the run length for fast tests; `None` runs the
/// paper's full 50/100 iterations.
pub fn compute(iteration_cap: Option<usize>) -> Vec<Row> {
    ModelConfig::all()
        .iter()
        .map(|config| {
            let mut c = *config;
            if let Some(cap) = iteration_cap {
                c.iterations = c.iterations.min(cap);
            }
            let mut pipeline = GenerationPipeline::new(&c, Ablation::FfnReuse.policy(&c), 0xF16);
            let (_, report) = pipeline.generate("fig06 measurement", 0x5EED);
            Row {
                model: c.kind.name(),
                n: c.ffn_reuse.sparse_iters,
                measured_sparsity: report.mean_inter_iteration_sparsity(),
                target_sparsity: c.ffn_reuse.target_sparsity,
                measured_reduction: report.ffn_ops().reduction(),
                paper_reduction_pct: c.ffn_reuse.paper_op_reduction_pct,
            }
        })
        .collect()
}

/// Renders the rows as the Fig. 6 table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Fig. 6 — FFN-Reuse: inter-iteration output sparsity and FFN op reduction\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.n.to_string(),
                pct(r.target_sparsity),
                pct(r.measured_sparsity),
                format!("{:.2}%", r.paper_reduction_pct),
                pct(r.measured_reduction),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "Benchmark",
            "N",
            "Sparsity (paper)",
            "Sparsity (measured)",
            "Ops reduction (paper)",
            "Ops reduction (measured)",
        ],
        &table_rows,
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_sparsity_tracks_target() {
        // A short run is enough: the threshold calibration hits its target
        // from the first dense iteration.
        for r in compute(Some(6)) {
            assert!(
                (r.measured_sparsity - r.target_sparsity).abs() < 0.06,
                "{}: measured {} vs target {}",
                r.model,
                r.measured_sparsity,
                r.target_sparsity
            );
        }
    }

    #[test]
    fn reduction_tracks_closed_form() {
        for r in compute(Some(12)) {
            let n = r.n as f64;
            let closed = n * r.target_sparsity / (n + 1.0);
            assert!(
                (r.measured_reduction - closed).abs() < 0.12,
                "{}: measured {} vs closed-form {}",
                r.model,
                r.measured_reduction,
                closed
            );
        }
    }
}
