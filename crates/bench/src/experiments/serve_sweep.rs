//! `serve_sweep` — serving-traffic saturation sweep (beyond the paper).
//!
//! The paper evaluates single generations at fixed batch sizes (Figs.
//! 18–19); this experiment drives the `exion-serve` request-level simulator
//! instead: Poisson/bursty/diurnal arrival streams over the multi-tenant
//! model mix, swept across offered load on the edge (EXION4) and server
//! (EXION24) instances, plus an admission-policy comparison near
//! saturation. The headline shape is the saturation knee: tail latency and
//! queue depth explode once offered load crosses the instance's continuous-
//! batching capacity, while goodput collapses.
//!
//! Three residency-era sections extend it:
//!
//! * **Preemption** — non-preemptive vs preemptive EDF under the bursty
//!   MMPP trace: per-tenant-class p95, preemption counts, and GSC residency
//!   hit-rate, showing iteration-boundary preemption bounding the urgent
//!   class's head-of-line blocking;
//! * **Autoscaling frontier** — at a fixed arrival rate, the minimum
//!   instance count whose p95 SLO attainment reaches the target, per
//!   traffic pattern;
//! * **Measured profiles** — `exion-bench::profiles` functional
//!   measurements wired through `CostModel` in place of the analytic
//!   closed form.

use exion_model::config::{ModelConfig, ModelKind};
use exion_serve::{
    Policy, ServeConfig, ServeReport, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix,
};
use exion_sim::config::HwConfig;

use crate::fmt::{pct, render_table};
use crate::profiles::measure_profile;

/// The seed every serving experiment here runs under.
pub const SWEEP_SEED: u64 = 0x5E17E;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load as a fraction of the estimated capacity.
    pub load_frac: f64,
    /// The serving report at that load.
    pub report: ServeReport,
}

/// The sweep of one (hardware, pattern) pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Hardware instance name.
    pub hw: &'static str,
    /// Traffic-pattern name.
    pub pattern: &'static str,
    /// Estimated continuous-batching capacity (requests/s).
    pub capacity_rps: f64,
    /// Reports per load fraction, ascending.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// p99 latency blow-up from the lightest to the heaviest load.
    pub fn knee_ratio(&self) -> f64 {
        let first = self.points.first().map(|p| p.report.latency.p99);
        let last = self.points.last().map(|p| p.report.latency.p99);
        match (first, last) {
            (Some(a), Some(b)) if a > 0.0 => b / a,
            _ => 0.0,
        }
    }
}

/// The load fractions the sweep visits (around the knee at 1.0).
pub const LOAD_FRACTIONS: [f64; 6] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.3];

/// Runs the sweep for both hardware instances and all three patterns.
///
/// `horizon_cap_ms` bounds the trace horizon (`None` = the full 4 s run);
/// integration tests pass a smaller horizon.
pub fn compute(horizon_cap_ms: Option<f64>) -> Vec<Sweep> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    let mut sweeps = Vec::new();
    for hw in [HwConfig::exion4(), HwConfig::exion24()] {
        let mut sim = ServeSimulator::new(ServeConfig::new(hw));
        let capacity = sim.capacity_estimate_rps(&mix);
        for pattern in TrafficPattern::standard_suite() {
            let mut points = Vec::new();
            for &frac in &LOAD_FRACTIONS {
                let report = sim.run(&TraceConfig {
                    pattern: pattern.with_mean_rps(frac * capacity),
                    horizon_ms,
                    seed: SWEEP_SEED,
                    mix: mix.clone(),
                });
                points.push(SweepPoint {
                    load_frac: frac,
                    report,
                });
            }
            sweeps.push(Sweep {
                hw: hw.name,
                pattern: pattern.name(),
                capacity_rps: capacity,
                points,
            });
        }
    }
    sweeps
}

/// Compares the admission policies at 90% Poisson load on `hw`.
pub fn compare_policies(hw: &HwConfig, horizon_cap_ms: Option<f64>) -> Vec<(Policy, ServeReport)> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    Policy::ALL
        .iter()
        .map(|&policy| {
            let mut sim = ServeSimulator::new(ServeConfig::new(*hw).with_policy(policy));
            let capacity = sim.capacity_estimate_rps(&mix);
            let report = sim.run(&TraceConfig {
                pattern: TrafficPattern::Poisson {
                    rate_rps: 0.9 * capacity,
                },
                horizon_ms,
                seed: SWEEP_SEED,
                mix: mix.clone(),
            });
            (policy, report)
        })
        .collect()
}

/// The bursty-MMPP multi-tenant trace at `load_frac × capacity` the
/// preemption comparison runs on (shared with `tests/serving.rs` so the
/// acceptance invariant and the experiment cannot diverge).
pub fn bursty_trace(capacity_rps: f64, load_frac: f64, horizon_ms: f64) -> TraceConfig {
    TraceConfig {
        pattern: TrafficPattern::Bursty {
            rate_rps: 1.0,
            burst_multiplier: 4.0,
            mean_dwell_ms: 400.0,
        }
        .with_mean_rps(load_frac * capacity_rps),
        horizon_ms,
        seed: SWEEP_SEED,
        mix: WorkloadMix::multi_tenant(),
    }
}

/// Non-preemptive vs preemptive EDF on the seeded bursty-MMPP multi-tenant
/// trace: `(policy, report)` pairs at 85% of estimated capacity.
pub fn compare_preemption(
    hw: &HwConfig,
    horizon_cap_ms: Option<f64>,
) -> Vec<(Policy, ServeReport)> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    // One policy-independent capacity estimate anchors one shared trace,
    // so the two policies see identical arrivals.
    let capacity = ServeSimulator::new(ServeConfig::new(*hw))
        .capacity_estimate_rps(&WorkloadMix::multi_tenant());
    let trace = bursty_trace(capacity, 0.85, horizon_ms);
    [Policy::Edf, Policy::PreemptiveEdf]
        .iter()
        .map(|&policy| {
            let mut sim = ServeSimulator::new(ServeConfig::new(*hw).with_policy(policy));
            (policy, sim.run(&trace))
        })
        .collect()
}

/// One pattern's autoscaling-frontier result: p95 SLO attainment per
/// instance count at a fixed arrival rate, and the minimum count meeting
/// the target.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// Traffic-pattern name.
    pub pattern: &'static str,
    /// Fixed offered load (requests/s).
    pub rate_rps: f64,
    /// `(instances, slo_attainment, p95 ms)` per tried size, ascending.
    pub points: Vec<(usize, f64, f64)>,
    /// Minimum instance count with `slo_attainment ≥ target`, if any
    /// tried size reached it.
    pub min_instances: Option<usize>,
}

/// The p95-SLO target of the autoscaling frontier: 95% of completions
/// within their class SLO.
pub const FRONTIER_SLO_TARGET: f64 = 0.95;

/// Sweeps instance count at a fixed arrival rate (`load_frac ×` the
/// *single-instance* capacity) and finds the minimum cluster size whose
/// p95 SLO attainment reaches [`FRONTIER_SLO_TARGET`], per traffic pattern.
pub fn autoscaling_frontier(
    hw: &HwConfig,
    load_frac: f64,
    max_instances: usize,
    horizon_cap_ms: Option<f64>,
) -> Vec<Frontier> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    let one_cap = ServeSimulator::new(ServeConfig::new(*hw)).capacity_estimate_rps(&mix);
    let rate = load_frac * one_cap;
    TrafficPattern::standard_suite()
        .iter()
        .map(|pattern| {
            let mut points = Vec::new();
            let mut min_instances = None;
            for n in 1..=max_instances.max(1) {
                let mut sim = ServeSimulator::new(ServeConfig::new(*hw).with_instances(n));
                let report = sim.run(&TraceConfig {
                    pattern: pattern.with_mean_rps(rate),
                    horizon_ms,
                    seed: SWEEP_SEED,
                    mix: mix.clone(),
                });
                points.push((n, report.slo_attainment, report.latency.p95));
                if min_instances.is_none() && report.slo_attainment >= FRONTIER_SLO_TARGET {
                    min_instances = Some(n);
                    break;
                }
            }
            Frontier {
                pattern: pattern.name(),
                rate_rps: rate,
                points,
                min_instances,
            }
        })
        .collect()
}

/// Prices the text-to-motion mix under measured (functional) sparsity
/// profiles instead of the analytic closed form and reports both runs:
/// `(analytic, measured)`. `iteration_cap` bounds the instrumented
/// profile-measurement generations (tests use small caps).
pub fn measured_profile_comparison(
    hw: &HwConfig,
    iteration_cap: usize,
    horizon_cap_ms: Option<f64>,
) -> (ServeReport, ServeReport) {
    let horizon_ms = horizon_cap_ms.unwrap_or(2_000.0).max(100.0);
    let mix = WorkloadMix::text_to_motion();
    // One trace for both runs (anchored on the analytic capacity estimate)
    // so every reported delta is attributable to the repriced iterations,
    // not to a different arrival stream.
    let mut analytic = ServeSimulator::new(ServeConfig::new(*hw));
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson {
            rate_rps: 0.8 * analytic.capacity_estimate_rps(&mix),
        },
        horizon_ms,
        seed: SWEEP_SEED,
        mix: mix.clone(),
    };
    let analytic_report = analytic.run(&trace);

    let mut measured = ServeSimulator::new(ServeConfig::new(*hw));
    for kind in mix.kinds() {
        // Functional measurement runs at sim scale; the measured summary
        // then prices the paper-scale serving workload.
        let config = ModelConfig::for_kind(kind).shrunk(2, iteration_cap);
        let m = measure_profile(&config, iteration_cap, SWEEP_SEED);
        measured.set_sparsity_profile(kind, m.profile);
    }
    let measured_report = measured.run(&trace);
    (analytic_report, measured_report)
}

/// Runs the full experiment.
pub fn run() -> String {
    let mut out = String::from(
        "serve_sweep — request-level serving over EXION instances\n\
         (continuous batching at DDIM iteration boundaries, multi-tenant mix)\n\n",
    );
    for sweep in compute(None) {
        out.push_str(&format!(
            "{} | {} arrivals | est. capacity {:.1} rps\n",
            sweep.hw, sweep.pattern, sweep.capacity_rps
        ));
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    format!("{:.0}%", 100.0 * p.load_frac),
                    format!("{:.1}", r.offered_rps),
                    format!("{:.2}", r.latency.p50),
                    format!("{:.2}", r.latency.p99),
                    format!("{:.1}", r.goodput_rps),
                    pct(r.mean_utilization),
                    format!("{:.2}", r.mean_batch_occupancy),
                    pct(r.residency_hit_rate),
                    format!("{:.3}", r.joules_per_request),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "load", "rps", "p50 ms", "p99 ms", "goodput", "util", "batch", "GSC hit", "J/req",
            ],
            &rows,
        ));
        out.push('\n');
    }

    out.push_str("Admission policies at 90% Poisson load (EXION24):\n");
    let rows: Vec<Vec<String>> = compare_policies(&HwConfig::exion24(), None)
        .iter()
        .map(|(policy, r)| {
            vec![
                policy.name().to_string(),
                format!("{:.2}", r.latency.p99),
                pct(r.slo_attainment),
                pct(r.sparse_iteration_frac),
                format!("{:.3}", r.joules_per_request),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["policy", "p99 ms", "SLO", "sparse iters", "J/req"],
        &rows,
    ));

    out.push_str(
        "\nPreemption under the bursty MMPP trace at 85% load (EXION24):\n\
         (urgent tenants: MLD/MDM at 3x SLO; lenient: Stable Diffusion at 6x)\n",
    );
    let rows: Vec<Vec<String>> = compare_preemption(&HwConfig::exion24(), None)
        .iter()
        .map(|(policy, r)| {
            vec![
                policy.name().to_string(),
                format!("{:.1}", r.class_latency(ModelKind::Mld).p95),
                format!("{:.1}", r.class_latency(ModelKind::Mdm).p95),
                format!("{:.1}", r.class_latency(ModelKind::StableDiffusion).p95),
                pct(r.slo_attainment),
                format!("{}", r.preemptions),
                format!("{}", r.latent_spills),
                pct(r.residency_hit_rate),
                format!("{:.1}", r.weight_refill_bytes as f64 / 1e6),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "policy",
            "MLD p95",
            "MDM p95",
            "SD p95",
            "SLO",
            "preempt",
            "spills",
            "GSC hit",
            "refill MB",
        ],
        &rows,
    ));

    out.push_str(&format!(
        "\nAutoscaling frontier at 2.5x single-instance load (EXION4, target {:.0}% SLO):\n",
        100.0 * FRONTIER_SLO_TARGET
    ));
    let rows: Vec<Vec<String>> = autoscaling_frontier(&HwConfig::exion4(), 2.5, 6, None)
        .iter()
        .map(|f| {
            let last = f.points.last().expect("at least one size tried");
            vec![
                f.pattern.to_string(),
                format!("{:.1}", f.rate_rps),
                f.min_instances
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| format!(">{}", f.points.len())),
                pct(last.1),
                format!("{:.1}", last.2),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["pattern", "rps", "min inst", "SLO@min", "p95@min ms"],
        &rows,
    ));

    out.push_str("\nMeasured vs analytic sparsity profiles (EXION4, text-to-motion):\n");
    let (analytic, measured) = measured_profile_comparison(&HwConfig::exion4(), 8, None);
    let rows: Vec<Vec<String>> = [("analytic", &analytic), ("measured", &measured)]
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                format!("{:.2}", r.latency.p50),
                format!("{:.2}", r.latency.p99),
                pct(r.slo_attainment),
                pct(r.sparse_iteration_frac),
                format!("{:.3}", r.joules_per_request),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "profile",
            "p50 ms",
            "p99 ms",
            "SLO",
            "sparse iters",
            "J/req",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_saturation_knee() {
        let sweeps = compute(Some(1_500.0));
        assert_eq!(sweeps.len(), 6); // 2 hw × 3 patterns
        for sweep in &sweeps {
            assert!(sweep.capacity_rps > 0.0);
            assert_eq!(sweep.points.len(), LOAD_FRACTIONS.len());
            // Past the knee the tail latency must have blown up.
            assert!(
                sweep.knee_ratio() > 3.0,
                "{} {}: knee ratio {}",
                sweep.hw,
                sweep.pattern,
                sweep.knee_ratio()
            );
        }
    }

    #[test]
    fn utilization_rises_with_load() {
        let sweeps = compute(Some(1_000.0));
        for sweep in &sweeps {
            let first = sweep.points.first().unwrap().report.mean_utilization;
            let last = sweep.points.last().unwrap().report.mean_utilization;
            assert!(
                last > first,
                "{} {}: {first} vs {last}",
                sweep.hw,
                sweep.pattern
            );
        }
    }

    #[test]
    fn policies_all_conserve_requests() {
        for (policy, report) in compare_policies(&HwConfig::exion4(), Some(800.0)) {
            assert_eq!(
                report.completed,
                report.arrivals,
                "{} dropped requests",
                policy.name()
            );
        }
    }

    #[test]
    fn preemption_cuts_urgent_class_tail() {
        let results = compare_preemption(&HwConfig::exion24(), Some(2_000.0));
        let edf = &results[0].1;
        let preemptive = &results[1].1;
        assert!(preemptive.preemptions > 0, "preemption never fired");
        let urgent_edf = edf.class_latency(ModelKind::Mld).p95;
        let urgent_pre = preemptive.class_latency(ModelKind::Mld).p95;
        assert!(
            urgent_pre < urgent_edf,
            "urgent p95 {urgent_pre} vs non-preemptive {urgent_edf}"
        );
    }

    #[test]
    fn frontier_finds_a_feasible_size() {
        let frontiers = autoscaling_frontier(&HwConfig::exion4(), 1.6, 4, Some(1_000.0));
        assert_eq!(frontiers.len(), 3);
        for f in &frontiers {
            // SLO attainment is monotone enough for the break-at-first rule;
            // one instance at 1.6x load must not satisfy the target.
            assert!(f.points[0].1 < FRONTIER_SLO_TARGET, "{}", f.pattern);
            if let Some(n) = f.min_instances {
                assert!(n > 1, "{}: one instance cannot absorb 1.6x load", f.pattern);
                assert_eq!(f.points.last().unwrap().0, n);
            }
        }
    }

    #[test]
    fn measured_profiles_reprice_the_mix() {
        let (analytic, measured) = measured_profile_comparison(&HwConfig::exion4(), 4, Some(600.0));
        assert_eq!(analytic.completed, analytic.arrivals);
        assert_eq!(measured.completed, measured.arrivals);
        // The functional measurement differs from the closed form, so the
        // priced latencies must differ too (either direction).
        assert_ne!(analytic.latency.p50, measured.latency.p50);
    }
}
