//! `serve_sweep` — serving-traffic saturation sweep (beyond the paper).
//!
//! The paper evaluates single generations at fixed batch sizes (Figs.
//! 18–19); this experiment drives the `exion-serve` request-level simulator
//! instead: Poisson/bursty/diurnal arrival streams over the multi-tenant
//! model mix, swept across offered load on the edge (EXION4) and server
//! (EXION24) instances, plus an admission-policy comparison near
//! saturation. The headline shape is the saturation knee: tail latency and
//! queue depth explode once offered load crosses the instance's continuous-
//! batching capacity, while goodput collapses.

use exion_serve::{
    Policy, ServeConfig, ServeReport, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix,
};
use exion_sim::config::HwConfig;

use crate::fmt::{pct, render_table};

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load as a fraction of the estimated capacity.
    pub load_frac: f64,
    /// The serving report at that load.
    pub report: ServeReport,
}

/// The sweep of one (hardware, pattern) pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Hardware instance name.
    pub hw: &'static str,
    /// Traffic-pattern name.
    pub pattern: &'static str,
    /// Estimated continuous-batching capacity (requests/s).
    pub capacity_rps: f64,
    /// Reports per load fraction, ascending.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// p99 latency blow-up from the lightest to the heaviest load.
    pub fn knee_ratio(&self) -> f64 {
        let first = self.points.first().map(|p| p.report.latency.p99);
        let last = self.points.last().map(|p| p.report.latency.p99);
        match (first, last) {
            (Some(a), Some(b)) if a > 0.0 => b / a,
            _ => 0.0,
        }
    }
}

/// The load fractions the sweep visits (around the knee at 1.0).
pub const LOAD_FRACTIONS: [f64; 6] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.3];

/// Runs the sweep for both hardware instances and all three patterns.
///
/// `horizon_cap_ms` bounds the trace horizon (`None` = the full 4 s run);
/// integration tests pass a smaller horizon.
pub fn compute(horizon_cap_ms: Option<f64>) -> Vec<Sweep> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    let mut sweeps = Vec::new();
    for hw in [HwConfig::exion4(), HwConfig::exion24()] {
        let mut sim = ServeSimulator::new(ServeConfig::new(hw));
        let capacity = sim.capacity_estimate_rps(&mix);
        for pattern in TrafficPattern::standard_suite() {
            let mut points = Vec::new();
            for &frac in &LOAD_FRACTIONS {
                let report = sim.run(&TraceConfig {
                    pattern: pattern.with_mean_rps(frac * capacity),
                    horizon_ms,
                    seed: 0x5E17E,
                    mix: mix.clone(),
                });
                points.push(SweepPoint {
                    load_frac: frac,
                    report,
                });
            }
            sweeps.push(Sweep {
                hw: hw.name,
                pattern: pattern.name(),
                capacity_rps: capacity,
                points,
            });
        }
    }
    sweeps
}

/// Compares the admission policies at 90% Poisson load on `hw`.
pub fn compare_policies(hw: &HwConfig, horizon_cap_ms: Option<f64>) -> Vec<(Policy, ServeReport)> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    Policy::ALL
        .iter()
        .map(|&policy| {
            let mut sim = ServeSimulator::new(ServeConfig::new(*hw).with_policy(policy));
            let capacity = sim.capacity_estimate_rps(&mix);
            let report = sim.run(&TraceConfig {
                pattern: TrafficPattern::Poisson {
                    rate_rps: 0.9 * capacity,
                },
                horizon_ms,
                seed: 0x5E17E,
                mix: mix.clone(),
            });
            (policy, report)
        })
        .collect()
}

/// Runs the full experiment.
pub fn run() -> String {
    let mut out = String::from(
        "serve_sweep — request-level serving over EXION instances\n\
         (continuous batching at DDIM iteration boundaries, multi-tenant mix)\n\n",
    );
    for sweep in compute(None) {
        out.push_str(&format!(
            "{} | {} arrivals | est. capacity {:.1} rps\n",
            sweep.hw, sweep.pattern, sweep.capacity_rps
        ));
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    format!("{:.0}%", 100.0 * p.load_frac),
                    format!("{:.1}", r.offered_rps),
                    format!("{:.2}", r.latency.p50),
                    format!("{:.2}", r.latency.p99),
                    format!("{:.1}", r.goodput_rps),
                    pct(r.mean_utilization),
                    format!("{:.2}", r.mean_batch_occupancy),
                    format!("{:.3}", r.joules_per_request),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "load", "rps", "p50 ms", "p99 ms", "goodput", "util", "batch", "J/req",
            ],
            &rows,
        ));
        out.push('\n');
    }

    out.push_str("Admission policies at 90% Poisson load (EXION24):\n");
    let rows: Vec<Vec<String>> = compare_policies(&HwConfig::exion24(), None)
        .iter()
        .map(|(policy, r)| {
            vec![
                policy.name().to_string(),
                format!("{:.2}", r.latency.p99),
                pct(r.slo_attainment),
                pct(r.sparse_iteration_frac),
                format!("{:.3}", r.joules_per_request),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["policy", "p99 ms", "SLO", "sparse iters", "J/req"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_saturation_knee() {
        let sweeps = compute(Some(1_500.0));
        assert_eq!(sweeps.len(), 6); // 2 hw × 3 patterns
        for sweep in &sweeps {
            assert!(sweep.capacity_rps > 0.0);
            assert_eq!(sweep.points.len(), LOAD_FRACTIONS.len());
            // Past the knee the tail latency must have blown up.
            assert!(
                sweep.knee_ratio() > 3.0,
                "{} {}: knee ratio {}",
                sweep.hw,
                sweep.pattern,
                sweep.knee_ratio()
            );
        }
    }

    #[test]
    fn utilization_rises_with_load() {
        let sweeps = compute(Some(1_000.0));
        for sweep in &sweeps {
            let first = sweep.points.first().unwrap().report.mean_utilization;
            let last = sweep.points.last().unwrap().report.mean_utilization;
            assert!(
                last > first,
                "{} {}: {first} vs {last}",
                sweep.hw,
                sweep.pattern
            );
        }
    }

    #[test]
    fn policies_all_conserve_requests() {
        for (policy, report) in compare_policies(&HwConfig::exion4(), Some(800.0)) {
            assert_eq!(
                report.completed,
                report.arrivals,
                "{} dropped requests",
                policy.name()
            );
        }
    }
}
