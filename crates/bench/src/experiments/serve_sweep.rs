//! `serve_sweep` — serving-traffic saturation sweep (beyond the paper).
//!
//! The paper evaluates single generations at fixed batch sizes (Figs.
//! 18–19); this experiment drives the `exion-serve` request-level simulator
//! instead: Poisson/bursty/diurnal arrival streams over the multi-tenant
//! model mix, swept across offered load on the edge (EXION4) and server
//! (EXION24) instances, plus an admission-policy comparison near
//! saturation. The headline shape is the saturation knee: tail latency and
//! queue depth explode once offered load crosses the instance's continuous-
//! batching capacity, while goodput collapses.
//!
//! Four control-plane sections extend it:
//!
//! * **Preemption** — non-preemptive vs preemptive EDF under the bursty
//!   MMPP trace: per-tenant-class p95, preemption counts, and GSC residency
//!   hit-rate, showing iteration-boundary preemption bounding the urgent
//!   class's head-of-line blocking;
//! * **Admission** — admit-all vs deadline-feasibility admission across
//!   load on the bursty trace: with shedding/degrading installed, goodput
//!   *saturates* at the knee instead of collapsing past it;
//! * **Autoscaling frontier** — at a fixed arrival rate, the minimum
//!   instance count whose p95 SLO attainment reaches the target, per
//!   traffic pattern;
//! * **Placement planner** — auto-placement vs every hand-picked static
//!   placement on the text-to-video mix: the planner's offline pick
//!   matches the best static placement's goodput on both sides of the
//!   replicated-vs-TP crossover, and a diurnal ramp exercises the online
//!   re-planner (priced migration when realized load diverges from the
//!   forecast);
//! * **Measured profiles** — `exion-bench::profiles` functional
//!   measurements wired through `CostModel` in place of the analytic
//!   closed form.

use exion_model::config::{ModelConfig, ModelKind};
use exion_serve::telemetry::json::{push_f64, push_str};
use exion_serve::{
    admission, policy, FaultPlan, MissCause, Phase, Placement, PlacementPlanner, PlannerConfig,
    RunProfile, ServeConfig, ServeReport, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix,
    PHASES,
};
use exion_sim::config::HwConfig;
use exion_sim::partition::PartitionStrategy;

use crate::fmt::{pct, render_table};
use crate::profiles::measure_profile;

/// The seed every serving experiment here runs under.
pub const SWEEP_SEED: u64 = 0x5E17E;

/// Worker count of the scenario-parallel driver: `EXION_SWEEP_THREADS`
/// (default 1 = serial). Each scenario run is an independent simulation,
/// so the only cross-thread state is the claim counter — exports stay
/// byte-identical at any thread count.
pub fn sweep_threads() -> usize {
    std::env::var("EXION_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Runs `jobs` across up to `threads` scoped workers and returns results
/// in job order. Workers claim jobs off an atomic counter and write each
/// result into its job's slot, so scheduling interleave cannot reorder
/// (or drop) anything: the output is indexed, not arrival-ordered.
pub fn run_jobs_indexed<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let n = jobs.len();
    let cells: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = cells[i]
                    .lock()
                    .expect("job cell")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = job();
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("scope joins every worker, so every slot is filled")
        })
        .collect()
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load as a fraction of the estimated capacity.
    pub load_frac: f64,
    /// The serving report at that load.
    pub report: ServeReport,
}

/// The sweep of one (hardware, pattern) pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Hardware instance name.
    pub hw: &'static str,
    /// Traffic-pattern name.
    pub pattern: &'static str,
    /// Estimated continuous-batching capacity (requests/s).
    pub capacity_rps: f64,
    /// Reports per load fraction, ascending.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// p99 latency blow-up from the lightest to the heaviest load.
    pub fn knee_ratio(&self) -> f64 {
        let first = self.points.first().map(|p| p.report.latency.p99);
        let last = self.points.last().map(|p| p.report.latency.p99);
        match (first, last) {
            (Some(a), Some(b)) if a > 0.0 => b / a,
            _ => 0.0,
        }
    }
}

/// The load fractions the sweep visits (around the knee at 1.0).
pub const LOAD_FRACTIONS: [f64; 6] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.3];

/// Runs the sweep for both hardware instances and all three patterns.
///
/// `horizon_cap_ms` bounds the trace horizon (`None` = the full 4 s run);
/// integration tests pass a smaller horizon.
pub fn compute(horizon_cap_ms: Option<f64>) -> Vec<Sweep> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    // One job per (hardware, pattern) pairing; each job re-derives the
    // (deterministic) capacity estimate so jobs share nothing and the
    // parallel driver cannot perturb the results.
    let mut jobs = Vec::new();
    for hw in [HwConfig::exion4(), HwConfig::exion24()] {
        for pattern in TrafficPattern::standard_suite() {
            let mix = mix.clone();
            jobs.push(move || {
                let mut sim = ServeSimulator::new(ServeConfig::new(hw));
                let capacity = sim.capacity_estimate_rps(&mix);
                let points = LOAD_FRACTIONS
                    .iter()
                    .map(|&frac| SweepPoint {
                        load_frac: frac,
                        report: sim.run(&TraceConfig {
                            pattern: pattern.with_mean_rps(frac * capacity),
                            horizon_ms,
                            seed: SWEEP_SEED,
                            mix: mix.clone(),
                        }),
                    })
                    .collect();
                Sweep {
                    hw: hw.name,
                    pattern: pattern.name(),
                    capacity_rps: capacity,
                    points,
                }
            });
        }
    }
    run_jobs_indexed(sweep_threads(), jobs)
}

/// Compares every registered scheduling policy at 90% Poisson load on
/// `hw`: `(policy name, report)` pairs in registry order.
pub fn compare_policies(hw: &HwConfig, horizon_cap_ms: Option<f64>) -> Vec<(String, ServeReport)> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    policy::builtin_policies()
        .into_iter()
        .map(|policy| {
            let name = policy.name().to_string();
            let mut sim = ServeSimulator::new(ServeConfig::builder(*hw).policy_arc(policy).build());
            let capacity = sim.capacity_estimate_rps(&mix);
            let report = sim.run(&TraceConfig {
                pattern: TrafficPattern::Poisson {
                    rate_rps: 0.9 * capacity,
                },
                horizon_ms,
                seed: SWEEP_SEED,
                mix: mix.clone(),
            });
            (name, report)
        })
        .collect()
}

/// A bursty-MMPP trace over `mix` at `load_frac × capacity` (shared with
/// `tests/serving.rs` so the acceptance invariants and the experiments
/// cannot diverge).
pub fn bursty_trace_over(
    capacity_rps: f64,
    load_frac: f64,
    horizon_ms: f64,
    mix: WorkloadMix,
) -> TraceConfig {
    TraceConfig {
        pattern: TrafficPattern::Bursty {
            rate_rps: 1.0,
            burst_multiplier: 4.0,
            mean_dwell_ms: 400.0,
        }
        .with_mean_rps(load_frac * capacity_rps),
        horizon_ms,
        seed: SWEEP_SEED,
        mix,
    }
}

/// The bursty-MMPP multi-tenant trace at `load_frac × capacity` the
/// preemption comparison runs on.
pub fn bursty_trace(capacity_rps: f64, load_frac: f64, horizon_ms: f64) -> TraceConfig {
    bursty_trace_over(
        capacity_rps,
        load_frac,
        horizon_ms,
        WorkloadMix::multi_tenant(),
    )
}

/// Non-preemptive vs preemptive EDF on the seeded bursty-MMPP multi-tenant
/// trace: `(policy name, report)` pairs at 85% of estimated capacity.
pub fn compare_preemption(
    hw: &HwConfig,
    horizon_cap_ms: Option<f64>,
) -> Vec<(String, ServeReport)> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    // One policy-independent capacity estimate anchors one shared trace,
    // so the two policies see identical arrivals.
    let capacity = ServeSimulator::new(ServeConfig::new(*hw))
        .capacity_estimate_rps(&WorkloadMix::multi_tenant());
    let trace = bursty_trace(capacity, 0.85, horizon_ms);
    ["edf", "preemptive-edf"]
        .iter()
        .map(|&name| {
            let mut sim = ServeSimulator::new(ServeConfig::builder(*hw).policy_name(name).build());
            (name.to_string(), sim.run(&trace))
        })
        .collect()
}

/// One admission controller's load sweep in the admit-all vs
/// deadline-feasibility comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionSweep {
    /// Controller name (`admit-all`, `deadline`).
    pub label: String,
    /// Reports per load fraction, ascending.
    pub points: Vec<SweepPoint>,
}

/// The load fractions the admission comparison visits: around the knee at
/// 1.0 and deep past it at 1.5 — the point the acceptance criterion reads
/// (goodput must *saturate* under shedding where admit-all collapses).
pub const ADMISSION_LOAD_FRACTIONS: [f64; 4] = [0.6, 1.0, 1.25, 1.5];

/// Admit-all vs deadline-feasibility admission on the seeded bursty-MMPP
/// *text-to-motion* trace, swept across offered load under EDF scheduling.
/// Identical traces per load fraction (anchored on one controller-
/// independent capacity estimate), so every delta is attributable to the
/// admission decision: without shedding, queues grow without bound past
/// the knee and goodput collapses (nearly every completion blows its SLO
/// through queueing delay); with deadline-feasibility admission the excess
/// is shed or degraded and goodput *saturates* near capacity with a
/// bounded tail.
///
/// The motion mix is the right regime for this demonstration: its knee is
/// a genuine aggregate-overload knee. On the heterogeneous multi-tenant
/// mix the urgent classes' misses come from cross-tenant head-of-line
/// blocking — which admission cannot fix and *preemption* does (see
/// [`compare_preemption`]).
pub fn admission_comparison(hw: &HwConfig, horizon_cap_ms: Option<f64>) -> Vec<AdmissionSweep> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::text_to_motion();
    let capacity = ServeSimulator::new(ServeConfig::new(*hw)).capacity_estimate_rps(&mix);
    admission::AdmissionRegistry::builtin()
        .all()
        .into_iter()
        .map(|controller| {
            let label = controller.name().to_string();
            let mut sim = ServeSimulator::new(
                ServeConfig::builder(*hw)
                    .policy_name("edf")
                    .admission_arc(controller)
                    .build(),
            );
            let points = ADMISSION_LOAD_FRACTIONS
                .iter()
                .map(|&frac| SweepPoint {
                    load_frac: frac,
                    report: sim.run(&bursty_trace_over(capacity, frac, horizon_ms, mix.clone())),
                })
                .collect();
            AdmissionSweep { label, points }
        })
        .collect()
}

/// One pattern's autoscaling-frontier result: p95 SLO attainment per
/// instance count at a fixed arrival rate, and the minimum count meeting
/// the target.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// Traffic-pattern name.
    pub pattern: &'static str,
    /// Fixed offered load (requests/s).
    pub rate_rps: f64,
    /// `(instances, slo_attainment, p95 ms)` per tried size, ascending.
    pub points: Vec<(usize, f64, f64)>,
    /// Minimum instance count with `slo_attainment ≥ target`, if any
    /// tried size reached it.
    pub min_instances: Option<usize>,
}

/// The p95-SLO target of the autoscaling frontier: 95% of completions
/// within their class SLO.
pub const FRONTIER_SLO_TARGET: f64 = 0.95;

/// Sweeps instance count at a fixed arrival rate (`load_frac ×` the
/// *single-instance* capacity) and finds the minimum cluster size whose
/// p95 SLO attainment reaches [`FRONTIER_SLO_TARGET`], per traffic pattern.
pub fn autoscaling_frontier(
    hw: &HwConfig,
    load_frac: f64,
    max_instances: usize,
    horizon_cap_ms: Option<f64>,
) -> Vec<Frontier> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::multi_tenant();
    let one_cap = ServeSimulator::new(ServeConfig::new(*hw)).capacity_estimate_rps(&mix);
    let rate = load_frac * one_cap;
    TrafficPattern::standard_suite()
        .iter()
        .map(|pattern| {
            let mut points = Vec::new();
            let mut min_instances = None;
            for n in 1..=max_instances.max(1) {
                let mut sim = ServeSimulator::new(ServeConfig::builder(*hw).instances(n).build());
                let report = sim.run(&TraceConfig {
                    pattern: pattern.with_mean_rps(rate),
                    horizon_ms,
                    seed: SWEEP_SEED,
                    mix: mix.clone(),
                });
                points.push((n, report.slo_attainment, report.latency.p95));
                if min_instances.is_none() && report.slo_attainment >= FRONTIER_SLO_TARGET {
                    min_instances = Some(n);
                    break;
                }
            }
            Frontier {
                pattern: pattern.name(),
                rate_rps: rate,
                points,
                min_instances,
            }
        })
        .collect()
}

/// One placement's load sweep in the replicated-vs-sharded comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSweep {
    /// Placement label (`replicated x2`, `tp2 gang`, `pp2 gang`).
    pub label: String,
    /// The placement swept.
    pub placement: Placement,
    /// Reports per load fraction, ascending.
    pub points: Vec<SweepPoint>,
}

/// The load fractions the sharding comparison visits (fractions of the
/// *replicated* capacity, so every placement sees identical traces).
pub const SHARDING_LOAD_FRACTIONS: [f64; 4] = [0.3, 0.6, 0.9, 1.2];

/// Replicated-vs-sharded comparison on a two-instance hardware budget
/// serving the working-set-exceeding text-to-video mix (VideoCrafter2's
/// per-iteration weight footprint is far past one instance's GSC): two
/// whole-model replicas vs one TP=2 gang vs one PP=2 gang, swept across
/// offered load. Identical traces per load fraction (anchored on the
/// replicated capacity estimate), identical SLOs (scaled from the replica
/// service time), so every delta is attributable to the placement.
pub fn sharding_comparison(hw: &HwConfig, horizon_cap_ms: Option<f64>) -> Vec<PlacementSweep> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::builder(*hw).instances(2).build())
        .capacity_estimate_rps(&mix);
    [
        ("replicated x2", Placement::replicated(2)),
        (
            "tp2 gang",
            Placement::sharded(1, PartitionStrategy::Tensor { ways: 2 }),
        ),
        (
            "pp2 gang",
            Placement::sharded(1, PartitionStrategy::Pipeline { stages: 2 }),
        ),
    ]
    .iter()
    .map(|(label, placement)| {
        let mut sim = ServeSimulator::new(ServeConfig::builder(*hw).placement(*placement).build());
        let points = SHARDING_LOAD_FRACTIONS
            .iter()
            .map(|&frac| SweepPoint {
                load_frac: frac,
                report: sim.run(&TraceConfig {
                    pattern: TrafficPattern::Poisson {
                        rate_rps: frac * capacity,
                    },
                    horizon_ms,
                    seed: SWEEP_SEED,
                    mix: mix.clone(),
                }),
            })
            .collect();
        PlacementSweep {
            label: label.to_string(),
            placement: *placement,
            points,
        }
    })
    .collect()
}

/// The latency/goodput crossover of two placement sweeps over identical
/// traces: the first load fraction at which the goodput leader flips away
/// from the lighter-load leader (`None` when one placement dominates the
/// whole swept range). Below the crossover the sharded gang's shorter
/// generations win the tail; past it the replicas' independent queues win
/// throughput.
pub fn goodput_crossover(a: &PlacementSweep, b: &PlacementSweep) -> Option<f64> {
    let lead = |p: &SweepPoint, q: &SweepPoint| {
        let (gp, gq) = (p.report.goodput_rps, q.report.goodput_rps);
        // Ties within 2% count as the standing order, not a flip.
        if (gp - gq).abs() <= 0.02 * gp.max(gq) {
            0
        } else if gp > gq {
            1
        } else {
            -1
        }
    };
    let mut initial = 0;
    for (p, q) in a.points.iter().zip(&b.points) {
        let l = lead(p, q);
        if initial == 0 {
            initial = l;
        } else if l != 0 && l != initial {
            return Some(p.load_frac);
        }
    }
    None
}

/// The loads the planner comparison visits: the acceptance points on
/// either side of the replicated-vs-TP goodput crossover (fractions of the
/// warm replicated-x2 capacity, matching [`SHARDING_LOAD_FRACTIONS`]'s
/// anchoring).
pub const PLANNER_LOAD_FRACTIONS: [f64; 2] = [0.3, 0.9];

/// The outcome of [`planner_comparison`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerComparison {
    /// Hand-picked static placements (`replicated x2`, `tp2 gang`,
    /// `pp2 gang`) swept over [`PLANNER_LOAD_FRACTIONS`].
    pub static_sweeps: Vec<PlacementSweep>,
    /// The planner-driven runs over the same traces (offline plan only —
    /// epochs are pushed past the horizon so no re-plan fires).
    pub planned: Vec<SweepPoint>,
    /// `(load fraction, placement the planner chose)` per planned point.
    pub picks: Vec<(f64, String)>,
    /// The online re-planning run: a diurnal ramp whose realized load
    /// diverges from the trough-level forecast, forcing at least one
    /// priced migration mid-trace.
    pub diurnal: ServeReport,
}

/// Auto-placement vs every hand-picked static placement on the
/// text-to-video mix and a 2-instance budget (the sharding comparison's
/// setting): identical traces per load fraction, so the planner's run
/// *matches* the best static placement's goodput whenever its offline pick
/// is right — TP=2 below the goodput crossover, replicated x2 past it —
/// and beats every mis-picked one. The diurnal run then exercises the
/// online half: the planner starts from a trough-level forecast (picking
/// the gang), watches realized per-epoch load climb past its hysteresis
/// threshold, and executes a priced migration (drained gangs, GSC state
/// re-streamed as refill bytes, affinities cleared) mid-trace.
pub fn planner_comparison(hw: &HwConfig, horizon_cap_ms: Option<f64>) -> PlannerComparison {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::builder(*hw).instances(2).build())
        .capacity_estimate_rps(&mix);
    let trace_at = |rps: f64| TraceConfig {
        pattern: TrafficPattern::Poisson { rate_rps: rps },
        horizon_ms,
        seed: SWEEP_SEED,
        mix: mix.clone(),
    };

    let static_sweeps: Vec<PlacementSweep> = [
        ("replicated x2", Placement::replicated(2)),
        (
            "tp2 gang",
            Placement::sharded(1, PartitionStrategy::Tensor { ways: 2 }),
        ),
        (
            "pp2 gang",
            Placement::sharded(1, PartitionStrategy::Pipeline { stages: 2 }),
        ),
    ]
    .iter()
    .map(|(label, placement)| {
        let mut sim = ServeSimulator::new(ServeConfig::builder(*hw).placement(*placement).build());
        let points = PLANNER_LOAD_FRACTIONS
            .iter()
            .map(|&frac| SweepPoint {
                load_frac: frac,
                report: sim.run(&trace_at(frac * capacity)),
            })
            .collect();
        PlacementSweep {
            label: label.to_string(),
            placement: *placement,
            points,
        }
    })
    .collect();

    let mut planned = Vec::new();
    let mut picks = Vec::new();
    for &frac in &PLANNER_LOAD_FRACTIONS {
        // Offline-only: the epoch is pushed past any horizon so the run
        // exercises exactly the placement the offline pass chose.
        let planner = PlacementPlanner::new(PlannerConfig::new(2).with_replanning(1e12, 0.5));
        let mut sim = ServeSimulator::new(
            ServeConfig::builder(*hw)
                .auto_placement(planner, frac * capacity)
                .build(),
        );
        let report = sim.run(&trace_at(frac * capacity));
        picks.push((
            frac,
            report
                .planner
                .as_ref()
                .expect("auto-placement runs carry planner accounting")
                .initial_placement
                .clone(),
        ));
        planned.push(SweepPoint {
            load_frac: frac,
            report,
        });
    }

    // The online half: a diurnal ramp from a ~30%-of-capacity trough to a
    // past-the-crossover peak, planned against the trough-level forecast.
    // Epochs quantize the horizon so several fall inside the ramp.
    let diurnal_trace = TraceConfig {
        pattern: TrafficPattern::Diurnal {
            peak_rps: 0.9 * capacity,
            trough_frac: 0.3,
        },
        horizon_ms,
        seed: SWEEP_SEED,
        mix: mix.clone(),
    };
    let planner =
        PlacementPlanner::new(PlannerConfig::new(2).with_replanning(horizon_ms / 4.0, 0.35));
    let mut sim = ServeSimulator::new(
        ServeConfig::builder(*hw)
            .auto_placement(planner, 0.3 * capacity)
            .build(),
    );
    let diurnal = sim.run(&diurnal_trace);

    PlannerComparison {
        static_sweeps,
        planned,
        picks,
        diurnal,
    }
}

/// Prices the text-to-motion mix under measured (functional) sparsity
/// profiles instead of the analytic closed form and reports both runs:
/// `(analytic, measured)`. `iteration_cap` bounds the instrumented
/// profile-measurement generations (tests use small caps).
pub fn measured_profile_comparison(
    hw: &HwConfig,
    iteration_cap: usize,
    horizon_cap_ms: Option<f64>,
) -> (ServeReport, ServeReport) {
    let horizon_ms = horizon_cap_ms.unwrap_or(2_000.0).max(100.0);
    let mix = WorkloadMix::text_to_motion();
    // One trace for both runs (anchored on the analytic capacity estimate)
    // so every reported delta is attributable to the repriced iterations,
    // not to a different arrival stream.
    let mut analytic = ServeSimulator::new(ServeConfig::new(*hw));
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson {
            rate_rps: 0.8 * analytic.capacity_estimate_rps(&mix),
        },
        horizon_ms,
        seed: SWEEP_SEED,
        mix: mix.clone(),
    };
    let analytic_report = analytic.run(&trace);

    let mut measured = ServeSimulator::new(ServeConfig::new(*hw));
    for kind in mix.kinds() {
        // Functional measurement runs at sim scale; the measured summary
        // then prices the paper-scale serving workload.
        let config = ModelConfig::for_kind(kind).shrunk(2, iteration_cap);
        let m = measure_profile(&config, iteration_cap, SWEEP_SEED);
        measured.set_sparsity_profile(kind, m.profile);
    }
    let measured_report = measured.run(&trace);
    (analytic_report, measured_report)
}

/// One placement's run of the chaos comparison: the same trace with the
/// fault plan off and on, so every delta is attributable to the failure.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// Human-readable placement label.
    pub label: String,
    /// What fails (the fault plan's own description).
    pub fault: String,
    /// The run with no faults injected.
    pub baseline: ServeReport,
    /// The same trace under the fault plan.
    pub faulted: ServeReport,
}

/// SLO attainment with faults on vs off at matched load, replicated vs
/// TP=2 on the text-to-video mix (the sharding comparison's setting).
/// Both placements lose one instance at the midpoint for a quarter
/// horizon: the replicated fleet degrades gracefully (the surviving
/// replica keeps serving, the dead one's in-flight work requeues or is
/// lost), while the TP=2 gang losing one member stalls whole — a gang
/// cannot run a sharded iteration short-handed, so the entire capacity
/// is out until repair.
pub fn chaos_comparison(hw: &HwConfig, horizon_cap_ms: Option<f64>) -> Vec<ChaosSweep> {
    let horizon_ms = horizon_cap_ms.unwrap_or(4_000.0).max(100.0);
    let mix = WorkloadMix::text_to_video();
    let capacity = ServeSimulator::new(ServeConfig::builder(*hw).instances(2).build())
        .capacity_estimate_rps(&mix);
    let trace = TraceConfig {
        pattern: TrafficPattern::Poisson {
            rate_rps: 0.6 * capacity,
        },
        horizon_ms,
        seed: SWEEP_SEED,
        mix,
    };
    let midpoint = horizon_ms / 2.0;
    let repair = horizon_ms / 4.0;
    [
        (
            "replicated x2",
            Placement::replicated(2),
            "unit 0 crash at midpoint",
            FaultPlan::empty().crash(midpoint, 0, repair),
        ),
        (
            "tp2 gang",
            Placement::sharded(1, PartitionStrategy::Tensor { ways: 2 }),
            "member 1 loss at midpoint",
            FaultPlan::empty().member_loss(midpoint, 0, 1, repair),
        ),
    ]
    .into_iter()
    .map(|(label, placement, fault, plan)| {
        let config = |plan: FaultPlan| {
            ServeConfig::builder(*hw)
                .placement(placement)
                .fault_plan(plan)
                .build()
        };
        ChaosSweep {
            label: label.to_string(),
            fault: fault.to_string(),
            baseline: ServeSimulator::new(config(FaultPlan::empty())).run(&trace),
            faulted: ServeSimulator::new(config(plan)).run(&trace),
        }
    })
    .collect()
}

/// One placement's row of the attribution comparison: where requests
/// spend their time with the fault plan off vs on, over identical traces.
#[derive(Debug, Clone)]
pub struct AttributionComparison {
    /// Human-readable placement label.
    pub label: String,
    /// What fails (the fault plan's own description).
    pub fault: String,
    /// Phase shares of the fault-free run (sums to 1).
    pub baseline_mix: [f64; PHASES],
    /// Phase shares of the same trace under the fault plan.
    pub faulted_mix: [f64; PHASES],
    /// The fault-free run's p95-tail bottleneck phase.
    pub baseline_dominant: Option<Phase>,
    /// The faulted run's p95-tail bottleneck phase.
    pub faulted_dominant: Option<Phase>,
    /// Classified miss causes of the faulted run (indexed by
    /// [`MissCause::ALL`] order).
    pub faulted_miss_causes: [u64; 5],
}

/// Latency attribution under failure: the [`chaos_comparison`] runs
/// (crash vs gang-member loss at 60% load over identical traces) read
/// through the attribution plane. The fault-free baselines spend nothing
/// in the fault phases; the faulted runs shift their mix into fault-stall
/// (and their misses into the `fault` cause), quantifying *where* the
/// failure's latency actually lands rather than just how much SLO it
/// costs.
pub fn attribution_comparison(
    hw: &HwConfig,
    horizon_cap_ms: Option<f64>,
) -> Vec<AttributionComparison> {
    chaos_comparison(hw, horizon_cap_ms)
        .into_iter()
        .map(|c| {
            let base = c
                .baseline
                .attribution
                .expect("attribution is on by default");
            let faulted = c.faulted.attribution.expect("attribution is on by default");
            AttributionComparison {
                label: c.label,
                fault: c.fault,
                baseline_mix: base.phase_mix(),
                faulted_mix: faulted.phase_mix(),
                baseline_dominant: base.dominant_p95,
                faulted_dominant: faulted.dominant_p95,
                faulted_miss_causes: faulted.miss_causes,
            }
        })
        .collect()
}

/// One self-metered point of the serving perf trajectory: a standard
/// scenario plus the [`RunProfile`] its run left behind.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Stable scenario key (`BENCH_serve.json` rows are keyed on it).
    pub scenario: &'static str,
    /// Released arrivals the scenario processed.
    pub arrivals: usize,
    /// The run's self-metering.
    pub profile: RunProfile,
    /// Where the scenario's requests spent their time: each phase's share
    /// of the aggregate latency breakdown (sums to 1 when traffic ran).
    /// Fully deterministic, so `BENCH_serve.json` rows double as a phase-
    /// mix regression gate next to the wall-clock trajectory.
    pub phase_mix: [f64; PHASES],
}

/// The four standard perf-trajectory scenarios at `horizon_ms`: the
/// single-instance batcher, the preemptive control plane under bursty
/// load, a TP gang with collectives, and the planned diurnal ramp. One
/// definition shared by [`perf_trajectory`] and the event-core
/// fingerprint tests, so the metered scenarios and the behavior-pinned
/// ones cannot diverge.
pub fn standard_scenarios(horizon_ms: f64) -> Vec<(&'static str, ServeConfig, TraceConfig)> {
    let mix = WorkloadMix::multi_tenant();
    let hw = HwConfig::exion4();
    let capacity = ServeSimulator::new(ServeConfig::new(hw)).capacity_estimate_rps(&mix);
    let server = HwConfig::exion24();
    let server_capacity = ServeSimulator::new(ServeConfig::new(server)).capacity_estimate_rps(&mix);
    let video = WorkloadMix::text_to_video();
    vec![
        (
            "poisson_90pct_exion4",
            ServeConfig::new(hw),
            TraceConfig {
                pattern: TrafficPattern::Poisson {
                    rate_rps: 0.9 * capacity,
                },
                horizon_ms,
                seed: SWEEP_SEED,
                mix: mix.clone(),
            },
        ),
        (
            "bursty_preemptive_edf_exion24",
            ServeConfig::builder(server)
                .policy_name("preemptive-edf")
                .admission_name("deadline")
                .build(),
            bursty_trace_over(server_capacity, 0.85, horizon_ms, mix),
        ),
        (
            "tp2_gang_video_exion4",
            ServeConfig::builder(hw)
                .placement(Placement::sharded(1, PartitionStrategy::Tensor { ways: 2 }))
                .build(),
            TraceConfig {
                pattern: TrafficPattern::Poisson {
                    rate_rps: 0.6 * capacity,
                },
                horizon_ms,
                seed: SWEEP_SEED,
                mix: video.clone(),
            },
        ),
        (
            "planned_diurnal_exion4",
            ServeConfig::builder(hw)
                .auto_placement(
                    PlacementPlanner::new(
                        PlannerConfig::new(2).with_replanning(horizon_ms / 4.0, 0.35),
                    ),
                    0.3 * capacity,
                )
                .build(),
            TraceConfig {
                pattern: TrafficPattern::Diurnal {
                    peak_rps: 0.9 * capacity,
                    trough_frac: 0.3,
                },
                horizon_ms,
                seed: SWEEP_SEED,
                mix: video,
            },
        ),
    ]
}

/// Runs one scenario and self-meters it into a [`PerfPoint`].
fn meter_scenario(scenario: &'static str, config: ServeConfig, trace: &TraceConfig) -> PerfPoint {
    let mut sim = ServeSimulator::new(config);
    let report = sim.run(trace);
    let profile = *sim.last_run_profile().expect("run leaves a profile");
    let phase_mix = report
        .attribution
        .as_ref()
        .map(|a| a.phase_mix())
        .unwrap_or([0.0; PHASES]);
    PerfPoint {
        scenario,
        arrivals: report.arrivals,
        profile,
        phase_mix,
    }
}

/// Runs the standard perf-trajectory scenarios ([`standard_scenarios`])
/// and self-meters each one, fanning the independent runs across
/// `threads` workers ([`run_jobs_indexed`]) with results in scenario
/// order. Wall readings are machine- and run-dependent; the simulated
/// side (arrivals, iterations, makespan) is deterministic, so trajectory
/// files remain comparable point-to-point and thread-count-independent.
pub fn perf_trajectory_threads(horizon_cap_ms: Option<f64>, threads: usize) -> Vec<PerfPoint> {
    let horizon_ms = horizon_cap_ms.unwrap_or(1_500.0).max(100.0);
    let jobs: Vec<_> = standard_scenarios(horizon_ms)
        .into_iter()
        .map(|(scenario, config, trace)| move || meter_scenario(scenario, config, &trace))
        .collect();
    run_jobs_indexed(threads, jobs)
}

/// [`perf_trajectory_threads`] at the `EXION_SWEEP_THREADS` worker count.
pub fn perf_trajectory(horizon_cap_ms: Option<f64>) -> Vec<PerfPoint> {
    perf_trajectory_threads(horizon_cap_ms, sweep_threads())
}

/// The deep-backlog scenario: the bursty MMPP multi-tenant trace at 2× the
/// single-instance capacity under EDF with admit-all admission, sized so
/// the horizon carries at least `target_arrivals` requests. Nothing sheds,
/// so the ready queue grows to order half the trace before the post-horizon
/// drain — the regime where per-decision queue scans used to dominate the
/// wall clock and the indexed scheduler's O(log n) path pays off.
pub fn deep_backlog_point(target_arrivals: usize) -> PerfPoint {
    let mix = WorkloadMix::multi_tenant();
    let config = ServeConfig::builder(HwConfig::exion4())
        .policy_name("edf")
        .build();
    let capacity = ServeSimulator::new(config.clone()).capacity_estimate_rps(&mix);
    // 10% headroom over the expectation so burst-phase variance cannot
    // leave the run short of `target_arrivals`.
    let horizon_ms = 1_100.0 * target_arrivals as f64 / (2.0 * capacity).max(1e-9);
    meter_scenario(
        "deep_backlog_bursty_exion4",
        config,
        &bursty_trace_over(capacity, 2.0, horizon_ms, mix),
    )
}

/// The fleet-scale scenario: a mixed placement of `replicas` whole-model
/// replicas plus `gangs` TP=2 gangs (hundreds of scheduling units),
/// driven by a Poisson multi-tenant stream sized so the horizon carries
/// at least `target_arrivals` requests at 80% of the fleet's aggregate
/// capacity. Arrivals stream lazily out of the trace generator and the
/// event calendar skips idle units, so the run's memory stays bounded by
/// the in-flight state, not the trace length.
pub fn fleet_scale_point(replicas: usize, gangs: usize, target_arrivals: usize) -> PerfPoint {
    let mix = WorkloadMix::multi_tenant();
    let hw = HwConfig::exion4();
    let placement = Placement::mixed(replicas, gangs, PartitionStrategy::Tensor { ways: 2 });
    let config = ServeConfig::builder(hw).placement(placement).build();
    let capacity = ServeSimulator::new(config.clone()).capacity_estimate_rps(&mix);
    let rate_rps = 0.8 * capacity;
    // 10% headroom over the expectation so Poisson variance cannot leave
    // the run short of `target_arrivals`.
    let horizon_ms = 1_100.0 * target_arrivals as f64 / rate_rps.max(1e-9);
    meter_scenario(
        "fleet_scale_mixed_exion4",
        config,
        &TraceConfig {
            pattern: TrafficPattern::Poisson { rate_rps },
            horizon_ms,
            seed: SWEEP_SEED,
            mix,
        },
    )
}

/// The chaos scenario: the fleet-scale mixed placement under a seeded
/// fault plan (MTBF-exponential crashes rotating across the fleet, each
/// repaired after a sixth of the horizon) with periodic latent
/// checkpointing, driven by a Poisson multi-tenant stream sized for at
/// least `target_arrivals` requests. The row prices what fault handling
/// costs the event core: teardown drains, out-of-cadence re-plans, and
/// recovery refills all land in the metered wall clock.
pub fn chaos_point(target_arrivals: usize) -> PerfPoint {
    let mix = WorkloadMix::multi_tenant();
    let hw = HwConfig::exion4();
    let placement = Placement::mixed(6, 2, PartitionStrategy::Tensor { ways: 2 });
    let capacity = ServeSimulator::new(ServeConfig::builder(hw).placement(placement).build())
        .capacity_estimate_rps(&mix);
    let rate_rps = 0.8 * capacity;
    let horizon_ms = 1_100.0 * target_arrivals as f64 / rate_rps.max(1e-9);
    let config = ServeConfig::builder(hw)
        .placement(placement)
        .fault_plan(FaultPlan::seeded(
            SWEEP_SEED,
            horizon_ms,
            horizon_ms / 8.0,
            horizon_ms / 6.0,
            6,
        ))
        .checkpoint_every(10)
        .build();
    meter_scenario(
        "chaos_seeded_mixed_exion4",
        config,
        &TraceConfig {
            pattern: TrafficPattern::Poisson { rate_rps },
            horizon_ms,
            seed: SWEEP_SEED,
            mix,
        },
    )
}

/// Renders a perf trajectory as the `BENCH_serve.json` document: one row
/// per scenario with the simulated work done and the wall-clock it cost
/// (hand-written JSON — the workspace carries no JSON dependency).
pub fn perf_trajectory_json(points: &[PerfPoint]) -> String {
    let mut out = String::from("{\"bench\":\"serve\",\"schema\":3,\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"scenario\":");
        push_str(&mut out, p.scenario);
        out.push_str(&format!(
            ",\"arrivals\":{},\"completed\":{},\"iterations\":{}",
            p.arrivals, p.profile.completed, p.profile.iterations
        ));
        out.push_str(",\"makespan_ms\":");
        push_f64(&mut out, p.profile.makespan_ms);
        out.push_str(",\"wall_ms\":");
        push_f64(&mut out, p.profile.wall_ms);
        out.push_str(",\"planner_wall_ms\":");
        push_f64(&mut out, p.profile.planner_wall_ms);
        out.push_str(&format!(",\"planner_calls\":{}", p.profile.planner_calls));
        out.push_str(&format!(
            ",\"events_executed\":{},\"peak_calendar_events\":{}",
            p.profile.events_executed, p.profile.peak_calendar_events
        ));
        out.push_str(",\"sim_ms_per_wall_ms\":");
        push_f64(&mut out, p.profile.sim_ms_per_wall_ms());
        // The deterministic phase mix (indexed by `Phase::ALL` order):
        // the regression gate reads these shares next to the wall clock.
        out.push_str(",\"phase_mix\":[");
        for (j, &share) in p.phase_mix.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(&mut out, share);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    let mut out = String::from(
        "serve_sweep — request-level serving over EXION instances\n\
         (continuous batching at DDIM iteration boundaries, multi-tenant mix)\n\n",
    );
    for sweep in compute(None) {
        out.push_str(&format!(
            "{} | {} arrivals | est. capacity {:.1} rps\n",
            sweep.hw, sweep.pattern, sweep.capacity_rps
        ));
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    format!("{:.0}%", 100.0 * p.load_frac),
                    format!("{:.1}", r.offered_rps),
                    format!("{:.2}", r.latency.p50),
                    format!("{:.2}", r.latency.p99),
                    format!("{:.1}", r.goodput_rps),
                    pct(r.mean_utilization),
                    format!("{:.2}", r.mean_batch_occupancy),
                    pct(r.residency_hit_rate),
                    format!("{:.3}", r.joules_per_request),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "load", "rps", "p50 ms", "p99 ms", "goodput", "util", "batch", "GSC hit", "J/req",
            ],
            &rows,
        ));
        out.push('\n');
    }

    out.push_str("Admission policies at 90% Poisson load (EXION24):\n");
    let rows: Vec<Vec<String>> = compare_policies(&HwConfig::exion24(), None)
        .iter()
        .map(|(policy, r)| {
            vec![
                policy.clone(),
                format!("{:.2}", r.latency.p99),
                pct(r.slo_attainment),
                pct(r.sparse_iteration_frac),
                format!("{:.3}", r.joules_per_request),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["policy", "p99 ms", "SLO", "sparse iters", "J/req"],
        &rows,
    ));

    out.push_str(
        "\nPreemption under the bursty MMPP trace at 85% load (EXION24):\n\
         (urgent tenants: MLD/MDM at 3x SLO; lenient: Stable Diffusion at 6x)\n",
    );
    let rows: Vec<Vec<String>> = compare_preemption(&HwConfig::exion24(), None)
        .iter()
        .map(|(policy, r)| {
            vec![
                policy.clone(),
                format!("{:.1}", r.class_latency(ModelKind::Mld).p95),
                format!("{:.1}", r.class_latency(ModelKind::Mdm).p95),
                format!("{:.1}", r.class_latency(ModelKind::StableDiffusion).p95),
                pct(r.slo_attainment),
                format!("{}", r.preemptions),
                format!("{}", r.latent_spills),
                pct(r.residency_hit_rate),
                format!("{:.1}", r.weight_refill_bytes as f64 / 1e6),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "policy",
            "MLD p95",
            "MDM p95",
            "SD p95",
            "SLO",
            "preempt",
            "spills",
            "GSC hit",
            "refill MB",
        ],
        &rows,
    ));

    out.push_str(
        "\nAdmission control under the bursty MMPP text-to-motion trace (EXION24, EDF):\n\
         (admit-all queues everything; deadline sheds/degrades arrivals whose \
         projected completion misses the SLO)\n",
    );
    let admission_sweeps = admission_comparison(&HwConfig::exion24(), None);
    let rows: Vec<Vec<String>> = admission_sweeps
        .iter()
        .flat_map(|sweep| {
            sweep.points.iter().map(|p| {
                let r = &p.report;
                vec![
                    sweep.label.clone(),
                    format!("{:.0}%", 100.0 * p.load_frac),
                    format!("{:.1}", r.offered_rps),
                    format!("{:.1}", r.goodput_rps),
                    pct(r.slo_attainment),
                    format!("{}", r.shed_requests),
                    format!("{}", r.degraded_requests),
                    format!("{:.0}", r.latency.p95),
                ]
            })
        })
        .collect();
    out.push_str(&render_table(
        &[
            "admission",
            "load",
            "rps",
            "goodput",
            "SLO",
            "shed",
            "degraded",
            "p95 ms",
        ],
        &rows,
    ));
    if let [admit_all, deadline] = &admission_sweeps[..] {
        let baseline = admit_all.points.last().expect("swept points");
        let shedding = deadline.points.last().expect("swept points");
        let verdict = if shedding.report.goodput_rps > baseline.report.goodput_rps {
            "shedding turned the collapse into saturation"
        } else {
            "no shedding win at this horizon"
        };
        out.push_str(&format!(
            "at {:.0}% load: goodput {:.1} rps (admit-all) vs {:.1} rps (deadline) — {}\n",
            100.0 * baseline.load_frac,
            baseline.report.goodput_rps,
            shedding.report.goodput_rps,
            verdict,
        ));
    }

    out.push_str(&format!(
        "\nAutoscaling frontier at 2.5x single-instance load (EXION4, target {:.0}% SLO):\n",
        100.0 * FRONTIER_SLO_TARGET
    ));
    let rows: Vec<Vec<String>> = autoscaling_frontier(&HwConfig::exion4(), 2.5, 6, None)
        .iter()
        .map(|f| {
            let last = f.points.last().expect("at least one size tried");
            vec![
                f.pattern.to_string(),
                format!("{:.1}", f.rate_rps),
                f.min_instances
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| format!(">{}", f.points.len())),
                pct(last.1),
                format!("{:.1}", last.2),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["pattern", "rps", "min inst", "SLO@min", "p95@min ms"],
        &rows,
    ));

    out.push_str(
        "\nReplicated vs sharded on a 2-instance budget (EXION4, text-to-video):\n\
         (VideoCrafter2's weight working set exceeds one instance's GSC; \
         loads are fractions of the replicated capacity)\n",
    );
    let sharding = sharding_comparison(&HwConfig::exion4(), None);
    let rows: Vec<Vec<String>> = sharding
        .iter()
        .flat_map(|sweep| {
            sweep.points.iter().map(|p| {
                let r = &p.report;
                vec![
                    sweep.label.clone(),
                    format!("{:.0}%", 100.0 * p.load_frac),
                    format!("{:.0}", r.latency.p50),
                    format!("{:.0}", r.latency.p95),
                    format!("{:.2}", r.goodput_rps),
                    pct(r.residency_hit_rate),
                    format!("{:.1}", r.collective_ms),
                ]
            })
        })
        .collect();
    out.push_str(&render_table(
        &[
            "placement",
            "load",
            "p50 ms",
            "p95 ms",
            "goodput",
            "GSC hit",
            "coll ms",
        ],
        &rows,
    ));
    for sharded in &sharding[1..] {
        match goodput_crossover(&sharding[0], sharded) {
            Some(frac) => out.push_str(&format!(
                "{} vs replicated: goodput leader flips at {:.0}% load\n",
                sharded.label,
                100.0 * frac
            )),
            None => out.push_str(&format!(
                "{} vs replicated: one placement leads across the swept range\n",
                sharded.label
            )),
        }
    }

    out.push_str(
        "\nPlacement planner vs hand-picked placements (EXION4, text-to-video, budget 2):\n\
         (the planner scores replicas/TP/PP candidates on residency-adjusted \
         capacity and projected SLO attainment, then re-plans online)\n",
    );
    let planner = planner_comparison(&HwConfig::exion4(), None);
    let rows: Vec<Vec<String>> = planner
        .static_sweeps
        .iter()
        .map(|sweep| (sweep.label.clone(), &sweep.points))
        .chain(std::iter::once(("planned".to_string(), &planner.planned)))
        .flat_map(|(label, points)| {
            points
                .iter()
                .map(move |p| {
                    let r = &p.report;
                    vec![
                        label.clone(),
                        format!("{:.0}%", 100.0 * p.load_frac),
                        format!("{:.0}", r.latency.p50),
                        format!("{:.0}", r.latency.p95),
                        format!("{:.2}", r.goodput_rps),
                        pct(r.slo_attainment),
                    ]
                })
                .collect::<Vec<_>>()
        })
        .collect();
    out.push_str(&render_table(
        &["placement", "load", "p50 ms", "p95 ms", "goodput", "SLO"],
        &rows,
    ));
    for (frac, pick) in &planner.picks {
        out.push_str(&format!(
            "planner pick at {:.0}% load: {pick}\n",
            100.0 * frac
        ));
    }
    if let Some(pr) = &planner.diurnal.planner {
        out.push_str(&format!(
            "diurnal ramp: {} -> {} | {} re-plan(s), {:.1} MB migrated, \
             mean forecast error {:.0}%, goodput {:.2} rps\n",
            pr.initial_placement,
            pr.final_placement,
            pr.replan_count(),
            pr.migration_bytes() as f64 / 1e6,
            100.0 * pr.mean_forecast_error(),
            planner.diurnal.goodput_rps,
        ));
    }

    out.push_str(
        "\nFault injection at 60% load (EXION4, text-to-video, one instance \
         lost mid-horizon):\n\
         (replicas degrade gracefully; a TP gang losing one member stalls whole)\n",
    );
    let chaos = chaos_comparison(&HwConfig::exion4(), None);
    let rows: Vec<Vec<String>> = chaos
        .iter()
        .flat_map(|c| {
            let fr = c.faulted.fault.clone().unwrap_or_default();
            [
                (c.label.clone(), "none".to_string(), &c.baseline, 0, 0.0),
                (
                    c.label.clone(),
                    c.fault.clone(),
                    &c.faulted,
                    fr.lost_requests,
                    fr.attainment_under_failure,
                ),
            ]
            .into_iter()
            .map(|(label, fault, r, lost, under)| {
                vec![
                    label,
                    fault,
                    pct(r.slo_attainment),
                    pct(under),
                    format!("{lost}"),
                    format!("{:.2}", r.goodput_rps),
                ]
            })
            .collect::<Vec<_>>()
        })
        .collect();
    out.push_str(&render_table(
        &["placement", "fault", "SLO", "SLO@fault", "lost", "goodput"],
        &rows,
    ));

    out.push_str(
        "\nLatency attribution under failure (same chaos runs, phase shares):\n\
         (the fault's latency lands in fault-stall; misses classify as `fault`)\n",
    );
    let rows: Vec<Vec<String>> = attribution_comparison(&HwConfig::exion4(), None)
        .iter()
        .flat_map(|c| {
            [
                ("none", &c.baseline_mix, c.baseline_dominant, None),
                (
                    c.fault.as_str(),
                    &c.faulted_mix,
                    c.faulted_dominant,
                    Some(&c.faulted_miss_causes),
                ),
            ]
            .into_iter()
            .map(|(fault, mix, dominant, causes)| {
                let share = |p: Phase| pct(mix[p.index()]);
                vec![
                    c.label.clone(),
                    fault.to_string(),
                    share(Phase::Queue),
                    share(Phase::Compute),
                    share(Phase::Collective),
                    share(Phase::FaultStall),
                    dominant.map_or("-".to_string(), |p| p.label().to_string()),
                    causes.map_or("-".to_string(), |cs| {
                        MissCause::ALL
                            .iter()
                            .zip(cs)
                            .filter(|(_, &n)| n > 0)
                            .map(|(cause, n)| format!("{} x{n}", cause.label()))
                            .collect::<Vec<_>>()
                            .join(", ")
                    }),
                ]
            })
            .collect::<Vec<_>>()
        })
        .collect();
    out.push_str(&render_table(
        &[
            "placement",
            "fault",
            "queue",
            "compute",
            "coll",
            "stall",
            "p95 bottleneck",
            "miss causes",
        ],
        &rows,
    ));

    out.push_str("\nMeasured vs analytic sparsity profiles (EXION4, text-to-motion):\n");
    let (analytic, measured) = measured_profile_comparison(&HwConfig::exion4(), 8, None);
    let rows: Vec<Vec<String>> = [("analytic", &analytic), ("measured", &measured)]
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                format!("{:.2}", r.latency.p50),
                format!("{:.2}", r.latency.p99),
                pct(r.slo_attainment),
                pct(r.sparse_iteration_frac),
                format!("{:.3}", r.joules_per_request),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "profile",
            "p50 ms",
            "p99 ms",
            "SLO",
            "sparse iters",
            "J/req",
        ],
        &rows,
    ));

    out.push_str(
        "\nSelf-metered perf trajectory (the BENCH_serve.json scenarios):\n\
         (simulated side is deterministic; wall readings vary by machine)\n",
    );
    let rows: Vec<Vec<String>> = perf_trajectory(None)
        .iter()
        .map(|p| {
            vec![
                p.scenario.to_string(),
                format!("{}", p.arrivals),
                format!("{}", p.profile.iterations),
                format!("{:.0}", p.profile.makespan_ms),
                format!("{:.1}", p.profile.wall_ms),
                format!("{:.0}", p.profile.sim_ms_per_wall_ms()),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "scenario", "arrivals", "iters", "sim ms", "wall ms", "sim/wall",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_saturation_knee() {
        let sweeps = compute(Some(1_500.0));
        assert_eq!(sweeps.len(), 6); // 2 hw × 3 patterns
        for sweep in &sweeps {
            assert!(sweep.capacity_rps > 0.0);
            assert_eq!(sweep.points.len(), LOAD_FRACTIONS.len());
            // Past the knee the tail latency must have blown up.
            assert!(
                sweep.knee_ratio() > 3.0,
                "{} {}: knee ratio {}",
                sweep.hw,
                sweep.pattern,
                sweep.knee_ratio()
            );
        }
    }

    #[test]
    fn utilization_rises_with_load() {
        let sweeps = compute(Some(1_000.0));
        for sweep in &sweeps {
            let first = sweep.points.first().unwrap().report.mean_utilization;
            let last = sweep.points.last().unwrap().report.mean_utilization;
            assert!(
                last > first,
                "{} {}: {first} vs {last}",
                sweep.hw,
                sweep.pattern
            );
        }
    }

    #[test]
    fn policies_all_conserve_requests() {
        let results = compare_policies(&HwConfig::exion4(), Some(800.0));
        assert_eq!(results.len(), policy::BUILTIN_POLICY_NAMES.len());
        for (policy, report) in results {
            assert_eq!(
                report.completed, report.arrivals,
                "{policy} dropped requests"
            );
        }
    }

    #[test]
    fn deadline_admission_saturates_goodput_past_the_knee() {
        // The acceptance criterion: at 1.5x the saturation knee on the
        // bursty MMPP trace (text-to-motion mix — see admission_comparison's
        // docs for why that regime, not multi-tenant, is the aggregate-
        // overload knee admission fixes), deadline-feasibility admission
        // must beat admit-all's collapsing goodput strictly — shedding
        // turns collapse into saturation.
        let sweeps = admission_comparison(&HwConfig::exion24(), Some(2_000.0));
        assert_eq!(sweeps.len(), 2);
        let admit_all = &sweeps[0];
        let deadline = &sweeps[1];
        assert_eq!(admit_all.label, "admit-all");
        assert_eq!(deadline.label, "deadline");
        for sweep in &sweeps {
            assert_eq!(sweep.points.len(), ADMISSION_LOAD_FRACTIONS.len());
            for p in &sweep.points {
                let r = &p.report;
                // Conservation under shedding: every arrival is either
                // served or refused once the cluster drains.
                assert_eq!(
                    r.completed + r.shed_requests,
                    r.arrivals,
                    "{} at {}x",
                    sweep.label,
                    p.load_frac
                );
            }
        }
        // Admit-all never sheds or degrades.
        for p in &admit_all.points {
            assert_eq!(p.report.shed_requests, 0);
            assert_eq!(p.report.degraded_requests, 0);
        }
        let collapse = &admit_all.points.last().expect("swept").report;
        let saturate = &deadline.points.last().expect("swept").report;
        assert!(
            saturate.goodput_rps > collapse.goodput_rps,
            "deadline goodput {} must beat admit-all {} at 1.5x load",
            saturate.goodput_rps,
            collapse.goodput_rps
        );
        assert!(saturate.shed_requests > 0, "overload must shed");
        assert!(saturate.degraded_requests > 0, "overload must also degrade");
        // The saturated tail stays bounded while the collapsing one blows up.
        assert!(
            saturate.latency.p95 < collapse.latency.p95,
            "deadline p95 {} vs admit-all {}",
            saturate.latency.p95,
            collapse.latency.p95
        );
        // Shedding intensifies with load.
        let light = &deadline.points.first().expect("swept").report;
        assert!(
            light.shed_rate() < saturate.shed_rate(),
            "shed rate must rise with load: {} vs {}",
            light.shed_rate(),
            saturate.shed_rate()
        );
    }

    #[test]
    fn preemption_cuts_urgent_class_tail() {
        let results = compare_preemption(&HwConfig::exion24(), Some(2_000.0));
        let edf = &results[0].1;
        let preemptive = &results[1].1;
        assert!(preemptive.preemptions > 0, "preemption never fired");
        let urgent_edf = edf.class_latency(ModelKind::Mld).p95;
        let urgent_pre = preemptive.class_latency(ModelKind::Mld).p95;
        assert!(
            urgent_pre < urgent_edf,
            "urgent p95 {urgent_pre} vs non-preemptive {urgent_edf}"
        );
    }

    #[test]
    fn frontier_finds_a_feasible_size() {
        let frontiers = autoscaling_frontier(&HwConfig::exion4(), 1.6, 4, Some(1_000.0));
        assert_eq!(frontiers.len(), 3);
        for f in &frontiers {
            // SLO attainment is monotone enough for the break-at-first rule;
            // one instance at 1.6x load must not satisfy the target.
            assert!(f.points[0].1 < FRONTIER_SLO_TARGET, "{}", f.pattern);
            if let Some(n) = f.min_instances {
                assert!(n > 1, "{}: one instance cannot absorb 1.6x load", f.pattern);
                assert_eq!(f.points.last().unwrap().0, n);
            }
        }
    }

    #[test]
    fn sharding_comparison_accounts_shard_residency_per_member() {
        let sweeps = sharding_comparison(&HwConfig::exion4(), Some(1_500.0));
        assert_eq!(sweeps.len(), 3);
        let rep = &sweeps[0];
        let tp = &sweeps[1];
        let pp = &sweeps[2];
        for sweep in &sweeps {
            assert_eq!(sweep.points.len(), SHARDING_LOAD_FRACTIONS.len());
            for p in &sweep.points {
                let r = &p.report;
                assert_eq!(r.completed, r.arrivals, "{} dropped requests", sweep.label);
                assert!(r.arrivals > 0, "{}", sweep.label);
            }
        }
        let light_rep = &rep.points[0].report;
        let light_tp = &tp.points[0].report;
        let light_pp = &pp.points[0].report;
        // Each TP member holds only its half-shard, so its GSC covers about
        // twice the fraction a whole-model replica manages — residency is
        // accounted per member, per shard.
        assert!(
            light_tp.residency_hit_rate > 1.5 * light_rep.residency_hit_rate,
            "tp {} vs replicated {}",
            light_tp.residency_hit_rate,
            light_rep.residency_hit_rate
        );
        assert!(light_pp.residency_hit_rate > 1.5 * light_rep.residency_hit_rate);
        // Gangs pay the interconnect; replicas do not.
        assert!(light_tp.collective_bytes > 0);
        assert!(light_pp.collective_bytes > 0);
        assert_eq!(light_rep.collective_bytes, 0);
        assert_eq!(light_tp.gangs, 1);
        assert_eq!(light_tp.per_gang.len(), 1);
        assert_eq!(light_tp.per_instance.len(), 2);
        // A TP=2 gang halves the generation critical path at light load.
        assert!(
            light_tp.latency.p50 < light_rep.latency.p50,
            "tp p50 {} vs replicated {}",
            light_tp.latency.p50,
            light_rep.latency.p50
        );
    }

    #[test]
    fn planner_matches_or_beats_every_static_placement() {
        // The acceptance criterion: at both 30% and 90% of the replicated
        // capacity on the text-to-video mix, the planner's placement must
        // match or beat every hand-picked static placement's goodput —
        // which happens exactly when its offline pick lands on the
        // empirical winner on each side of the crossover.
        let cmp = planner_comparison(&HwConfig::exion4(), None);
        assert_eq!(cmp.static_sweeps.len(), 3);
        assert_eq!(cmp.planned.len(), PLANNER_LOAD_FRACTIONS.len());
        // The fixed-seed picks on either side of the crossover: the TP
        // gang's halved critical path below it, the replicas' independent
        // queues past it.
        assert_eq!(cmp.picks[0], (0.3, "tp2 gang x1".to_string()));
        assert_eq!(cmp.picks[1], (0.9, "replicated x2".to_string()));
        for (i, planned) in cmp.planned.iter().enumerate() {
            let pr = planned.report.planner.as_ref().expect("planner accounting");
            assert_eq!(pr.replan_count(), 0, "offline points must not re-plan");
            for sweep in &cmp.static_sweeps {
                let static_point = &sweep.points[i];
                assert!(
                    planned.report.goodput_rps >= static_point.report.goodput_rps - 1e-9,
                    "planned goodput {} must match/beat {} ({}) at {}x",
                    planned.report.goodput_rps,
                    static_point.report.goodput_rps,
                    sweep.label,
                    planned.load_frac
                );
            }
            // Conservation holds through auto-placement.
            assert_eq!(planned.report.completed, planned.report.arrivals);
        }
        // The diurnal ramp must exercise (and price) at least one re-plan.
        let pr = cmp.diurnal.planner.as_ref().expect("planner accounting");
        assert!(pr.replan_count() >= 1, "diurnal ramp must re-plan");
        assert!(pr.migration_bytes() > 0, "migration must be priced");
        assert!(!pr.epochs.is_empty(), "epochs must be tracked");
        assert_eq!(cmp.diurnal.completed, cmp.diurnal.arrivals);
    }

    #[test]
    fn measured_profiles_reprice_the_mix() {
        let (analytic, measured) = measured_profile_comparison(&HwConfig::exion4(), 4, Some(600.0));
        assert_eq!(analytic.completed, analytic.arrivals);
        assert_eq!(measured.completed, measured.arrivals);
        // The functional measurement differs from the closed form, so the
        // priced latencies must differ too (either direction). Compare the
        // mean — exact under the streaming histogram, where quantized
        // percentiles may land in the same bucket.
        assert_ne!(analytic.latency.mean, measured.latency.mean);
    }

    #[test]
    fn fleet_scale_point_streams_a_bounded_heap() {
        // A miniature of the committed fleet run: mixed placement, lazy
        // arrivals, calendar-driven loop. The heap must stay bounded by
        // the unit count plus the two recurring events — never grow with
        // the trace length.
        let p = fleet_scale_point(6, 2, 400);
        assert_eq!(p.scenario, "fleet_scale_mixed_exion4");
        assert!(
            p.arrivals >= 400,
            "sized for >= 400 arrivals, got {}",
            p.arrivals
        );
        assert_eq!(p.profile.completed, p.arrivals);
        assert!(p.profile.events_executed >= p.profile.iterations);
        // One live entry per unit plus the two recurring events, plus
        // transiently stale reschedule leftovers — but never anything
        // that scales with the 400-arrival trace length.
        assert!(
            p.profile.peak_calendar_events <= 64,
            "heap peaked at {} events for 8 units",
            p.profile.peak_calendar_events
        );
    }

    #[test]
    fn parallel_driver_is_thread_count_invariant() {
        // The deterministic half of every PerfPoint (everything except the
        // wall readings) must not depend on the worker count, and results
        // must come back in scenario order.
        let serial = perf_trajectory_threads(Some(300.0), 1);
        let parallel = perf_trajectory_threads(Some(300.0), 3);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.scenario, b.scenario, "scenario order must be indexed");
            assert_eq!(a.arrivals, b.arrivals, "{}", a.scenario);
            assert_eq!(a.profile.completed, b.profile.completed, "{}", a.scenario);
            assert_eq!(a.profile.iterations, b.profile.iterations, "{}", a.scenario);
            assert_eq!(
                a.profile.makespan_ms.to_bits(),
                b.profile.makespan_ms.to_bits(),
                "{}",
                a.scenario
            );
            assert_eq!(
                a.profile.events_executed, b.profile.events_executed,
                "{}",
                a.scenario
            );
            assert_eq!(
                a.profile.peak_calendar_events, b.profile.peak_calendar_events,
                "{}",
                a.scenario
            );
        }
    }

    #[test]
    fn indexed_driver_preserves_job_order_under_contention() {
        // More jobs than workers, deliberately uneven costs: the output
        // must still be slot-ordered, not completion-ordered.
        let jobs: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i % 5 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * i
                }
            })
            .collect();
        let out = run_jobs_indexed(4, jobs);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn deep_backlog_point_builds_and_drains_the_backlog() {
        // A miniature of the committed deep-backlog row: 2x load with
        // admit-all means roughly half the trace is queued by the horizon,
        // and everything still completes in the drain.
        let p = deep_backlog_point(1_500);
        assert_eq!(p.scenario, "deep_backlog_bursty_exion4");
        assert!(p.arrivals >= 1_500, "sized for >= 1500, got {}", p.arrivals);
        assert_eq!(p.profile.completed, p.arrivals, "admit-all must not shed");
        // The post-horizon drain tail stretches the makespan well past the
        // trace horizon — evidence the run actually went through a
        // deep-backlog phase rather than keeping up with arrivals.
        let capacity = ServeSimulator::new(
            ServeConfig::builder(HwConfig::exion4())
                .policy_name("edf")
                .build(),
        )
        .capacity_estimate_rps(&WorkloadMix::multi_tenant());
        let horizon_ms = 1_100.0 * 1_500.0 / (2.0 * capacity);
        assert!(
            p.profile.makespan_ms > 1.3 * horizon_ms,
            "makespan {} vs horizon {}",
            p.profile.makespan_ms,
            horizon_ms
        );
        assert!(p.profile.iterations > 0);
    }

    #[test]
    fn perf_trajectory_meters_every_scenario() {
        let points = perf_trajectory(Some(400.0));
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.arrivals > 0, "{}: no traffic", p.scenario);
            assert!(p.profile.iterations > 0, "{}: no iterations", p.scenario);
            assert!(p.profile.wall_ms > 0.0, "{}: unmetered", p.scenario);
            assert!(p.profile.makespan_ms > 0.0);
            assert!(
                p.profile.events_executed >= p.profile.iterations,
                "{}: every iteration rides a calendar event",
                p.scenario
            );
            assert!(
                p.profile.peak_calendar_events >= 1,
                "{}: empty heap",
                p.scenario
            );
        }
        // The planned scenario must meter its planner scoring.
        let planned = points
            .iter()
            .find(|p| p.scenario == "planned_diurnal_exion4")
            .unwrap();
        assert!(planned.profile.planner_calls >= 1);
        // Every standard scenario runs traffic, so every phase mix is a
        // genuine distribution: the deterministic regression gate reads
        // these shares out of BENCH_serve.json.
        for p in &points {
            let sum: f64 = p.phase_mix.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{}: phase mix sums to {sum}",
                p.scenario
            );
            assert!(p.phase_mix.iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
        let json = perf_trajectory_json(&points);
        assert!(exion_serve::telemetry::json::is_well_formed(&json));
        assert!(json.contains("\"schema\":3"));
        assert!(json.contains("\"sim_ms_per_wall_ms\""));
        assert!(json.contains("\"events_executed\""));
        assert!(json.contains("\"peak_calendar_events\""));
        assert!(json.contains("\"phase_mix\":["));
    }

    #[test]
    fn attribution_comparison_lands_fault_latency_in_fault_stall() {
        let rows = attribution_comparison(&HwConfig::exion4(), Some(1_200.0));
        assert_eq!(rows.len(), 2);
        for c in &rows {
            let sum: f64 = c.baseline_mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: baseline mix", c.label);
            let sum: f64 = c.faulted_mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: faulted mix", c.label);
            // Fault-free runs spend nothing in the fault phases.
            assert_eq!(c.baseline_mix[Phase::FaultStall.index()], 0.0);
            assert_eq!(c.baseline_mix[Phase::DegradedWindow.index()], 0.0);
            // The injected failure must actually land latency in
            // fault-stall — the share the chaos CI smoke asserts on.
            assert!(
                c.faulted_mix[Phase::FaultStall.index()] > 0.0,
                "{} under {}: no fault-stall share",
                c.label,
                c.fault
            );
            // Any faulted-run misses beyond the baseline's classify as
            // fault-caused for this mid-horizon outage.
            let fault_misses = c.faulted_miss_causes[MissCause::Fault.index()];
            let total: u64 = c.faulted_miss_causes.iter().sum();
            assert!(
                total == 0 || fault_misses > 0,
                "{} under {}: misses {:?} never classify as fault",
                c.label,
                c.fault,
                c.faulted_miss_causes
            );
        }
    }
}
