//! Fig. 12 — sorting strategy for faster merging: CVG cycles with
//! sparsity-sorted block pairing vs the unsorted column order.
//!
//! Paper values: 29.33–72.74% cycle decrement across MDM, Make-an-Audio,
//! Stable Diffusion, VideoCrafter2, DiT and EDGE.

use exion_core::conmerge::{ColumnEntry, VectorGenerator};
use exion_model::config::{ModelConfig, ModelKind};
use exion_model::pipeline::{Ablation, GenerationPipeline};

use crate::fmt::{pct, render_table};

/// One benchmark's sorted-vs-unsorted measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub model: &'static str,
    /// Total CVG cycles with unsorted (arrival-order) merging.
    pub unsorted_cycles: u64,
    /// Total CVG cycles with SortBuffer ordering.
    pub sorted_cycles: u64,
    /// Paper's reported decrement (%).
    pub paper_decrement_pct: f64,
}

impl Row {
    /// Measured cycle decrement fraction.
    pub fn decrement(&self) -> f64 {
        if self.unsorted_cycles == 0 {
            0.0
        } else {
            1.0 - self.sorted_cycles as f64 / self.unsorted_cycles as f64
        }
    }
}

/// The six models of Fig. 12 with their paper decrements.
const MODELS: [(ModelKind, f64); 6] = [
    (ModelKind::Mdm, 34.45),
    (ModelKind::MakeAnAudio, 72.74),
    (ModelKind::StableDiffusion, 65.22),
    (ModelKind::VideoCrafter2, 49.91),
    (ModelKind::Dit, 67.19),
    (ModelKind::Edge, 29.33),
];

/// Measures CVG cycles over the captured FFN bitmasks of each model.
pub fn compute(iteration_cap: Option<usize>) -> Vec<Row> {
    let cap = iteration_cap.unwrap_or(10);
    MODELS
        .iter()
        .map(|&(kind, paper)| {
            let mut config = ModelConfig::for_kind(kind);
            config.iterations = config.iterations.min(cap);
            // ConMerge figures quote each model's compaction-time sparsity.
            config.ffn_reuse.target_sparsity = config.ffn_reuse.conmerge_sparsity;
            let policy = Ablation::FfnReuse.policy(&config).with_mask_capture();
            let mut pipeline = GenerationPipeline::new(&config, policy, 0xF12);
            let (_, report) = pipeline.generate("fig12 measurement", 0x50F7);

            let mut sorted_cycles = 0u64;
            let mut unsorted_cycles = 0u64;
            for mask in report.ffn_masks() {
                let mut row0 = 0;
                while row0 < mask.rows() {
                    let height = 16.min(mask.rows() - row0);
                    let entries: Vec<ColumnEntry> = (0..mask.cols())
                        .map(|c| ColumnEntry {
                            origin: c,
                            mask: mask.tile_col_mask(row0, height, c),
                        })
                        .collect();
                    // Fig. 12 counts the cycles "required for merging", so
                    // the comparison uses the merge-phase cycles (the
                    // classification/read prologue is identical either way).
                    sorted_cycles += VectorGenerator::new(height, 16, true)
                        .generate(entries.clone())
                        .merge_cycles;
                    unsorted_cycles += VectorGenerator::new(height, 16, false)
                        .generate(entries)
                        .merge_cycles;
                    row0 += height;
                }
            }
            Row {
                model: ModelConfig::for_kind(kind).kind.name(),
                unsorted_cycles,
                sorted_cycles,
                paper_decrement_pct: paper,
            }
        })
        .collect()
}

/// Renders the rows.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Fig. 12 — Required cycles for merging after sorting (CVG cycle decrement)\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.unsorted_cycles.to_string(),
                r.sorted_cycles.to_string(),
                format!("{:.2}%", r.paper_decrement_pct),
                pct(r.decrement()),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "Benchmark",
            "Unsorted cycles",
            "Sorted cycles",
            "Decrement (paper)",
            "Decrement (measured)",
        ],
        &table_rows,
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorting_helps_and_never_meaningfully_hurts() {
        let rows = compute(Some(6));
        for r in &rows {
            assert!(
                r.sorted_cycles as f64 <= r.unsorted_cycles as f64 * 1.05,
                "{}: sorted {} vs unsorted {}",
                r.model,
                r.sorted_cycles,
                r.unsorted_cycles
            );
        }
        // The denser-masked benchmarks (frequent merge failures) must show a
        // real decrement, as in Fig. 12.
        let big_wins = rows.iter().filter(|r| r.decrement() > 0.05).count();
        assert!(big_wins >= 2, "only {big_wins} models improved >5%");
    }

    #[test]
    fn all_six_models_measured() {
        let rows = compute(Some(6));
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.unsorted_cycles > 0));
    }
}
