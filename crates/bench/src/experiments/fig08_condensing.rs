//! Fig. 8 — condensing efficiency: remaining columns after removing all-zero
//! output columns, MLD vs Stable Diffusion.
//!
//! Paper values: MLD keeps only 13.8% of columns (few output rows ⇒ columns
//! are often entirely sparse); Stable Diffusion still keeps 77.4% (many rows
//! ⇒ rarely all-zero), motivating merging.

use exion_model::config::{ModelConfig, ModelKind};

use crate::fmt::{pct, render_table};
use crate::profiles::measure_conmerge;

/// Measured condensing row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub model: &'static str,
    /// Output rows (sim-scale tokens).
    pub rows: usize,
    /// Measured remaining-column fraction after global condensing.
    pub measured: f64,
    /// The paper's value (fraction).
    pub paper: f64,
}

/// Measures condensing on MLD and Stable Diffusion FFN-1 bitmasks.
pub fn compute(iteration_cap: Option<usize>) -> Vec<Row> {
    let cap = iteration_cap.unwrap_or(12);
    [(ModelKind::Mld, 0.138), (ModelKind::StableDiffusion, 0.774)]
        .iter()
        .map(|&(kind, paper)| {
            let config = ModelConfig::for_kind(kind);
            let m = measure_conmerge(&config, cap, 0xF08);
            // UNet topologies run their transformer blocks (and thus produce
            // their FFN bitmasks) at half the token count.
            let rows = match config.network {
                exion_model::config::NetworkType::TransformerOnly => config.sim.tokens,
                _ => config.sim.tokens / 2,
            };
            Row {
                model: config.kind.name(),
                rows,
                measured: m.ffn_condense_frac,
                paper,
            }
        })
        .collect()
}

/// Renders the rows.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Fig. 8 — Condensing: remaining columns after removing all-zero output columns\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.rows.to_string(),
                pct(r.paper),
                pct(r.measured),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "Benchmark",
            "Output rows",
            "Remaining (paper)",
            "Remaining (measured)",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nShape check: tall output matrices (Stable Diffusion) condense poorly,\n\
         short ones (MLD) condense well — merging is needed for the former.\n",
    );
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mld_condenses_better_than_stable_diffusion() {
        let rows = compute(Some(6));
        let mld = &rows[0];
        let sd = &rows[1];
        assert!(
            mld.measured < sd.measured,
            "MLD {} should condense below SD {}",
            mld.measured,
            sd.measured
        );
        // SD keeps a large share of its columns (paper: 77.4%; the synthetic
        // workload's residual column concentration lands lower but well above
        // the short-matrix benchmarks).
        assert!(sd.measured > 0.3, "SD {}", sd.measured);
        assert!(mld.measured < 0.3, "MLD {}", mld.measured);
    }
}
