//! Table III — power and area breakdown of one DSC, plus the measured
//! run-time energy shares from the simulator.

use exion_model::config::{ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::energy::{self, Engine};
use exion_sim::perf::{simulate_model, SimAblation};
use exion_sim::workload::SparsityProfile;

use crate::fmt::{pct, render_table};

/// One component row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Component name.
    pub component: &'static str,
    /// Table III area (mm²).
    pub area_mm2: f64,
    /// Table III power (mW).
    pub power_mw: f64,
    /// Measured energy share in a representative DiT_All run.
    pub measured_energy_share: f64,
}

/// Builds the breakdown with measured activity from a DiT `_All` run.
pub fn compute(iteration_cap: Option<usize>) -> Vec<Row> {
    let mut model = ModelConfig::for_kind(ModelKind::Dit);
    if let Some(cap) = iteration_cap {
        model.iterations = model.iterations.min(cap);
    }
    let profile = SparsityProfile::analytic(
        model.ffn_reuse.target_sparsity,
        model.ep.paper_sparsity_pct / 100.0,
        16,
    );
    let report = simulate_model(
        &HwConfig::single_dsc(),
        &model,
        &profile,
        SimAblation::All,
        1,
    );
    Engine::ALL
        .iter()
        .map(|&e| Row {
            component: e.name(),
            area_mm2: e.area_mm2(),
            power_mw: e.nominal_power_mw(),
            measured_energy_share: report.engine_share(e),
        })
        .collect()
}

/// Renders Table III.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Table III — Breakdown of power and area usage (one DSC, 800 MHz / 0.8 V)\n\n",
    );
    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.component.to_string(),
                format!("{:.2}", r.area_mm2),
                format!("{:.2}", r.power_mw),
                pct(r.measured_energy_share),
            ]
        })
        .collect();
    table_rows.push(vec![
        "Total".to_string(),
        format!("{:.2}", energy::dsc_area_mm2()),
        format!("{:.2}", energy::dsc_nominal_power_mw()),
        pct(1.0),
    ]);
    out.push_str(&render_table(
        &[
            "Component",
            "Area [mm^2]",
            "Power [mW]",
            "Measured energy share (DiT_All)",
        ],
        &table_rows,
    ));
    out.push_str(&format!(
        "\nEXION24 + 64 MiB GSC area: {:.2} mm^2 (paper: 152.28 mm^2; server GPU die: 609 mm^2)\n\
         Sparsity-handling hardware (EPRE + CAU) nominal power share: {:.1}% (paper: up to 18.6%)\n",
        energy::accelerator_area_mm2(24, 64.0),
        100.0 * (Engine::Epre.nominal_power_mw() + Engine::Cau.nominal_power_mw())
            / energy::dsc_nominal_power_mw(),
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_components_and_shares_sum_to_one() {
        let rows = compute(Some(4));
        assert_eq!(rows.len(), 6);
        let total: f64 = rows.iter().map(|r| r.measured_energy_share).sum();
        assert!((total - 1.0).abs() < 1e-6, "shares sum {total}");
    }

    #[test]
    fn sdue_has_largest_area_among_logic() {
        let rows = compute(Some(4));
        let sdue = rows.iter().find(|r| r.component == "SDUE").unwrap();
        let epre = rows.iter().find(|r| r.component == "EPRE").unwrap();
        assert!(sdue.power_mw > epre.power_mw);
    }
}
