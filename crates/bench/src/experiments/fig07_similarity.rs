//! Fig. 7 — cosine similarity of GELU outputs across iterations (DiT), and
//! the difference structure between adjacent iterations.
//!
//! Paper claims reproduced: (a) adjacent iterations have near-1.0 cosine
//! similarity (the basis of FFN-Reuse); (b) the few positions with large
//! adjacent-iteration differences recur at the same places across iterations
//! (so a bitmask from one dense iteration stays valid for the next N).

use exion_model::config::{ModelConfig, ModelKind};
use exion_model::pipeline::GenerationPipeline;
use exion_model::transformer::ExecPolicy;
use exion_tensor::stats::cosine_similarity;

use crate::fmt::render_heatmap;

/// Similarity analysis of one vanilla DiT run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityResult {
    /// Full iteration × iteration cosine-similarity matrix.
    pub matrix: Vec<Vec<f64>>,
    /// Mean similarity of adjacent iterations (paper: ≈ 1 near the diagonal).
    pub adjacent_mean: f64,
    /// Mean similarity of iterations ≥ 10 apart.
    pub distant_mean: f64,
    /// Mean Jaccard overlap of the top-5% largest-difference positions
    /// between consecutive iteration pairs (paper: "the positions where large
    /// differences occur are similar across iterations").
    pub hot_position_overlap: f64,
}

/// Runs the vanilla DiT model with activation capture on the second block.
pub fn compute(iteration_cap: Option<usize>) -> SimilarityResult {
    let mut config = ModelConfig::for_kind(ModelKind::Dit);
    // Fig. 7 plots 50 iterations.
    config.iterations = config.iterations.min(iteration_cap.unwrap_or(50));
    let policy = ExecPolicy::vanilla().with_hidden_capture();
    let mut pipeline = GenerationPipeline::new(&config, policy, 0xD17);
    let (_, report) = pipeline.generate("class: golden retriever", 0xF1607);

    // "Cosine similarity of 2nd block's GELU output".
    let block_idx = 1.min(config.sim.blocks - 1);
    let snaps = report.hidden_snapshots(block_idx);
    let n = snaps.len();
    let mut matrix = vec![vec![0.0f64; n]; n];
    #[allow(clippy::needless_range_loop)] // (i, j) index the symmetric matrix
    for i in 0..n {
        for j in i..n {
            let c = cosine_similarity(snaps[i].as_slice(), snaps[j].as_slice());
            matrix[i][j] = c;
            matrix[j][i] = c;
        }
    }
    let adjacent_mean = (1..n).map(|i| matrix[i - 1][i]).sum::<f64>() / (n - 1).max(1) as f64;
    let mut distant = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if j >= i + 10 {
                distant.push(v);
            }
        }
    }
    let distant_mean = if distant.is_empty() {
        0.0
    } else {
        distant.iter().sum::<f64>() / distant.len() as f64
    };

    // Fig. 7(b): top-difference positions recur across iteration pairs.
    let hot = |a: &exion_tensor::Matrix, b: &exion_tensor::Matrix| -> Vec<usize> {
        let mut diffs: Vec<(usize, f32)> = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| (x - y).abs())
            .enumerate()
            .collect();
        diffs.sort_by(|l, r| r.1.partial_cmp(&l.1).expect("no NaN diffs"));
        let keep = (diffs.len() / 20).max(1); // top 5%
        let mut idx: Vec<usize> = diffs[..keep].iter().map(|&(i, _)| i).collect();
        idx.sort_unstable();
        idx
    };
    let mut overlaps = Vec::new();
    for i in 2..n.saturating_sub(1) {
        let h1 = hot(snaps[i - 1], snaps[i]);
        let h2 = hot(snaps[i], snaps[i + 1]);
        let inter = h1.iter().filter(|x| h2.binary_search(x).is_ok()).count();
        let union = h1.len() + h2.len() - inter;
        if union > 0 {
            overlaps.push(inter as f64 / union as f64);
        }
    }
    let hot_position_overlap = if overlaps.is_empty() {
        0.0
    } else {
        overlaps.iter().sum::<f64>() / overlaps.len() as f64
    };

    SimilarityResult {
        matrix,
        adjacent_mean,
        distant_mean,
        hot_position_overlap,
    }
}

/// Renders the result, including a downsampled ASCII heatmap.
pub fn render(r: &SimilarityResult) -> String {
    let n = r.matrix.len();
    let bins = 10.min(n.max(1));
    let step = (n as f64 / bins as f64).max(1.0);
    let mut down = vec![vec![0.0f64; bins]; bins];
    for (bi, row) in down.iter_mut().enumerate() {
        for (bj, cell) in row.iter_mut().enumerate() {
            let i = ((bi as f64 + 0.5) * step) as usize;
            let j = ((bj as f64 + 0.5) * step) as usize;
            *cell = r.matrix[i.min(n - 1)][j.min(n - 1)].max(0.0);
        }
    }
    format!(
        "Fig. 7 — Cosine similarity of the 2nd block's GELU output across DiT iterations\n\n\
         (a) similarity heatmap ({n}x{n}, downsampled to {bins}x{bins}; '@' = 1.0):\n{}\n\
         adjacent-iteration mean similarity : {:.4} (paper: ~1.0 near diagonal)\n\
         distant (>=10 apart) mean          : {:.4} (paper: visibly lower)\n\
         (b) top-5% difference-position overlap between consecutive pairs: {:.3}\n\
             (paper: large-difference positions recur across iterations)\n",
        render_heatmap(&down),
        r.adjacent_mean,
        r.distant_mean,
        r.hot_position_overlap,
    )
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_similarity_is_high_and_exceeds_distant() {
        let r = compute(Some(16));
        assert!(r.adjacent_mean > 0.9, "adjacent {}", r.adjacent_mean);
        assert!(
            r.adjacent_mean > r.distant_mean,
            "adjacent {} vs distant {}",
            r.adjacent_mean,
            r.distant_mean
        );
    }

    #[test]
    fn hot_positions_recur() {
        let r = compute(Some(16));
        // Random 5% subsets would overlap with Jaccard ≈ 0.026; the measured
        // overlap must be far above chance.
        assert!(
            r.hot_position_overlap > 0.15,
            "overlap {}",
            r.hot_position_overlap
        );
    }

    #[test]
    fn diagonal_is_one() {
        let r = compute(Some(8));
        for i in 0..r.matrix.len() {
            assert!((r.matrix[i][i] - 1.0).abs() < 1e-9);
        }
    }
}
