//! Fig. 4 — per-iteration operation-count breakdown of the seven benchmarks.
//!
//! Paper claims reproduced: the transformer block accounts for 38–100% of
//! operations, and within it the FFN layers are the main bottleneck
//! ("reaching up to 67%").

use exion_model::config::ModelConfig;
use exion_model::opcount::OpBreakdown;

use crate::fmt::{pct, render_table};

/// One benchmark's breakdown row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub model: &'static str,
    /// Total operations per iteration.
    pub total: u64,
    /// Share of QKV projection.
    pub qkv: f64,
    /// Share of attention computation.
    pub attention: f64,
    /// Share of FFN layers.
    pub ffn: f64,
    /// Share of everything else.
    pub etc: f64,
    /// Transformer-block share of the total.
    pub transformer_share: f64,
    /// FFN share of the transformer block.
    pub ffn_share_of_transformer: f64,
}

/// Computes the analytic breakdown for all seven benchmarks.
pub fn compute() -> Vec<Row> {
    ModelConfig::all()
        .iter()
        .map(|config| {
            let b = OpBreakdown::for_model(config);
            let total = b.total();
            let f = |x: u64| x as f64 / total as f64;
            Row {
                model: config.kind.name(),
                total,
                qkv: f(b.qkv),
                attention: f(b.attention),
                ffn: f(b.ffn),
                etc: f(b.etc),
                transformer_share: b.transformer_share(),
                ffn_share_of_transformer: b.ffn_share_of_transformer(),
            }
        })
        .collect()
}

/// Renders the rows as the Fig. 4 table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Fig. 4 — Number of operations breakdown (per iteration, paper-scale dims)\n\
         Paper: transformer block 38-100% of ops; FFN is the transformer's main bottleneck (<=67%)\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                format!("{:.2e}", r.total as f64),
                pct(r.qkv),
                pct(r.attention),
                pct(r.ffn),
                pct(r.etc),
                pct(r.transformer_share),
                pct(r.ffn_share_of_transformer),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "Benchmark",
            "Ops/iter",
            "QKV",
            "Attention",
            "FFN",
            "Etc.",
            "Transformer share",
            "FFN share of transformer",
        ],
        &table_rows,
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for r in compute() {
            let sum = r.qkv + r.attention + r.ffn + r.etc;
            assert!((sum - 1.0).abs() < 1e-6, "{}: {sum}", r.model);
        }
    }

    #[test]
    fn paper_shape_holds() {
        let rows = compute();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                (0.38..=1.0).contains(&r.transformer_share),
                "{}: transformer share {}",
                r.model,
                r.transformer_share
            );
            assert!(
                r.ffn > r.attention,
                "{}: FFN should dominate attention",
                r.model
            );
        }
    }

    #[test]
    fn render_contains_all_models() {
        let s = run();
        for name in ["MLD", "Stable Diffusion", "DiT", "VideoCrafter2"] {
            assert!(s.contains(name));
        }
    }
}
