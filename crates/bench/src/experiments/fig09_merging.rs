//! Fig. 9 — merging efficiency on Stable Diffusion: remaining columns drop
//! from 77.4% (condensing alone) to 8.4% after ConMerge merging.

use exion_model::config::{ModelConfig, ModelKind};

use crate::fmt::pct;
use crate::profiles::{measure_conmerge, MeasuredProfile};

/// Measures the Stable Diffusion FFN-1 compaction chain.
pub fn compute(iteration_cap: Option<usize>) -> MeasuredProfile {
    let config = ModelConfig::for_kind(ModelKind::StableDiffusion);
    measure_conmerge(&config, iteration_cap.unwrap_or(12), 0xF09)
}

/// Renders the measured chain against the paper's values.
pub fn render(m: &MeasuredProfile) -> String {
    format!(
        "Fig. 9 — Merging on Stable Diffusion's first FFN layer\n\n\
         remaining columns after condensing : paper 77.4% | measured {}\n\
         remaining blocks after merging     : paper  8.4% | measured {}\n\n\
         Shape check: merging recovers what condensing cannot on tall, very\n\
         sparse output matrices (per-tile condensing + up-to-3-way block\n\
         overlay under the CV/WMEM constraints).\n",
        pct(m.ffn_condense_frac),
        pct(m.ffn_merge_frac),
    )
}

/// Runs the full experiment.
pub fn run() -> String {
    render(&compute(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_dramatically_beats_condensing_on_sd() {
        let m = compute(Some(8));
        assert!(
            m.ffn_merge_frac < 0.5 * m.ffn_condense_frac,
            "merge {} vs condense {}",
            m.ffn_merge_frac,
            m.ffn_condense_frac
        );
        assert!(m.ffn_merge_frac < 0.35, "merge {}", m.ffn_merge_frac);
    }
}
