//! Fig. 18 — energy-efficiency comparison (TOPS/W) of EXION4 vs the edge GPU
//! and EXION24 vs the server GPU, with the Base/EP/FFNR/All ablations at
//! batch sizes 1 and 8.
//!
//! Paper headline: EXION4_All is 196.9–4668.2× more energy-efficient than
//! the edge GPU; EXION24_All is 45.1–3067.6× more than the server GPU.

use exion_gpu::diffusion_cost::estimate_generation;
use exion_gpu::GpuSpec;
use exion_model::config::{ModelConfig, ModelKind, NetworkType};
use exion_sim::config::HwConfig;
use exion_sim::perf::{simulate_model, SimAblation};

use crate::fmt::{ratio, render_table};
use crate::profiles::measure_profile;

/// One (platform, model, ablation, batch) efficiency point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// `EXION4_All`-style configuration name.
    pub config: String,
    /// Benchmark name.
    pub model: &'static str,
    /// Batch size.
    pub batch: u64,
    /// EXION energy efficiency (dense-equivalent TOPS/W).
    pub exion_tops_w: f64,
    /// GPU energy efficiency (TOPS/W).
    pub gpu_tops_w: f64,
}

impl Point {
    /// Efficiency gain over the GPU.
    pub fn gain(&self) -> f64 {
        if self.gpu_tops_w == 0.0 {
            0.0
        } else {
            self.exion_tops_w / self.gpu_tops_w
        }
    }
}

/// Edge benchmarks (paper: "large models are not considered since executing
/// them on an edge GPU is infeasible due to insufficient memory size").
pub const EDGE_MODELS: [ModelKind; 4] = [
    ModelKind::Mld,
    ModelKind::Mdm,
    ModelKind::Edge,
    ModelKind::MakeAnAudio,
];

/// Computes all points of one platform pairing.
pub fn compute_platform(
    hw: &HwConfig,
    gpu: &GpuSpec,
    models: &[ModelKind],
    batches: &[u64],
    iteration_cap: Option<usize>,
) -> Vec<Point> {
    let cap = iteration_cap.unwrap_or(10);
    let mut points = Vec::new();
    for &kind in models {
        let config = ModelConfig::for_kind(kind);
        let measured = measure_profile(&config, cap, 0xF18);
        for &batch in batches {
            let gpu_cost = estimate_generation(gpu, &config, batch);
            let gpu_tops_w = gpu_cost.tops_per_watt();
            for ablation in SimAblation::ALL {
                let r = simulate_model(hw, &config, &measured.profile, ablation, batch);
                points.push(Point {
                    config: r.name.clone(),
                    model: config.kind.name(),
                    batch,
                    exion_tops_w: r.tops_per_watt,
                    gpu_tops_w,
                });
            }
        }
    }
    points
}

/// Computes both platform pairings (Fig. 18(a) and (b)).
pub fn compute(iteration_cap: Option<usize>) -> (Vec<Point>, Vec<Point>) {
    let edge = compute_platform(
        &HwConfig::exion4(),
        &GpuSpec::jetson_orin_nano(),
        &EDGE_MODELS,
        &[1, 8],
        iteration_cap,
    );
    let server = compute_platform(
        &HwConfig::exion24(),
        &GpuSpec::rtx6000_ada(),
        &ModelKind::ALL,
        &[1, 8],
        iteration_cap,
    );
    (edge, server)
}

/// Renders one platform's points.
pub fn render_platform(title: &str, gpu_name: &str, points: &[Point]) -> String {
    let mut out = format!("{title}\n\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.to_string(),
                p.batch.to_string(),
                p.config.clone(),
                format!("{:.3}", p.exion_tops_w),
                format!("{:.5}", p.gpu_tops_w),
                ratio(p.gain()),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "Benchmark",
            "Batch",
            "Config",
            "EXION TOPS/W",
            &format!("{gpu_name} TOPS/W"),
            "Gain",
        ],
        &rows,
    ));
    out
}

/// Runs the full experiment.
pub fn run() -> String {
    let (edge, server) = compute(None);
    let mut out = render_platform(
        "Fig. 18(a) — Energy efficiency vs edge GPU (EXION4, paper gain 196.9-4668.2x for _All)",
        "Jetson",
        &edge,
    );
    out.push('\n');
    out.push_str(&render_platform(
        "Fig. 18(b) — Energy efficiency vs server GPU (EXION24, paper gain 45.1-3067.6x for _All)",
        "RTX6000",
        &server,
    ));
    out
}

/// Whether a benchmark contains ResBlocks (EP/FFNR don't help those).
pub fn has_resblocks(kind: ModelKind) -> bool {
    ModelConfig::for_kind(kind).network == NetworkType::UNetRes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_points() -> Vec<Point> {
        compute_platform(
            &HwConfig::exion4(),
            &GpuSpec::jetson_orin_nano(),
            &[ModelKind::Mld, ModelKind::Mdm],
            &[1],
            Some(6),
        )
    }

    #[test]
    fn exion_all_beats_gpu_by_orders_of_magnitude() {
        let points = edge_points();
        for p in points.iter().filter(|p| p.config.ends_with("_All")) {
            assert!(
                p.gain() > 100.0,
                "{} on {}: gain {}",
                p.config,
                p.model,
                p.gain()
            );
        }
    }

    #[test]
    fn ablation_ordering_holds() {
        let points = edge_points();
        let by = |suffix: &str, model: &str| {
            points
                .iter()
                .find(|p| p.config.ends_with(suffix) && p.model == model)
                .map(|p| p.exion_tops_w)
                .unwrap()
        };
        for model in ["MLD", "MDM"] {
            let base = by("_Base", model);
            let all = by("_All", model);
            assert!(all > base, "{model}: All {all} vs Base {base}");
            // FFN-Reuse is the paper's main lever: _FFNR ≥ _EP.
            assert!(by("_FFNR", model) >= by("_EP", model) * 0.8);
        }
    }
}
