//! Plain-text table rendering for experiment output.

/// Renders an aligned text table with a header row.
///
/// # Examples
///
/// ```
/// use exion_bench::fmt::render_table;
/// let t = render_table(
///     &["model", "value"],
///     &[vec!["MLD".into(), "1.0".into()]],
/// );
/// assert!(t.contains("MLD"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |widths: &[usize]| -> String {
        let mut s = String::from("+");
        for w in widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    out.push_str(&line(&widths));
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&line(&widths));
    for row in rows {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&line(&widths));
    out
}

/// Formats a ratio as `12.3x`.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders a low-resolution ASCII heatmap of a square matrix in `[0, 1]`.
pub fn render_heatmap(values: &[Vec<f64>]) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for row in values {
        for &v in row {
            let idx = ((v.clamp(0.0, 1.0)) * 9.0).round() as usize;
            out.push(SHADES[idx]);
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // All border lines have the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(3.2459), "3.25x");
        assert_eq!(ratio(32.459), "32.5x");
        assert_eq!(ratio(324.59), "325x");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.974), "97.4%");
    }

    #[test]
    fn heatmap_uses_shades() {
        let h = render_heatmap(&[vec![0.0, 1.0]]);
        assert!(h.contains(' '));
        assert!(h.contains('@'));
    }
}
