//! Regenerates the paper artifact `fig18_energy` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig18_energy::run());
}
