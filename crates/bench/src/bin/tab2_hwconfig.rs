//! Regenerates the paper artifact `tab2_hwconfig` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::tab2_hwconfig::run());
}
