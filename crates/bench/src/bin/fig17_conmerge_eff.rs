//! Regenerates the paper artifact `fig17_conmerge_eff` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig17_conmerge_eff::run());
}
