//! Binary wrapper: `cargo run --release -p exion-bench --bin serve_sweep`.

fn main() {
    print!("{}", exion_bench::experiments::serve_sweep::run());
}
