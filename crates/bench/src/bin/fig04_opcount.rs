//! Regenerates the paper artifact `fig04_opcount` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig04_opcount::run());
}
