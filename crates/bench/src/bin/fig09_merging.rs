//! Regenerates the paper artifact `fig09_merging` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig09_merging::run());
}
