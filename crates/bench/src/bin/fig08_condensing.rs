//! Regenerates the paper artifact `fig08_condensing` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig08_condensing::run());
}
