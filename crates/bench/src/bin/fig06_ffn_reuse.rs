//! Regenerates the paper artifact `fig06_ffn_reuse` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig06_ffn_reuse::run());
}
