//! Regenerates the paper artifact `fig19a_latency` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig19a_latency::run());
}
