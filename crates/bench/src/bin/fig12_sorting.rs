//! Regenerates the paper artifact `fig12_sorting` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig12_sorting::run());
}
