//! Regenerates the paper artifact `tab3_power_area` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::tab3_power_area::run());
}
