//! Regenerates the paper artifact `fig15_tslod` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig15_tslod::run());
}
