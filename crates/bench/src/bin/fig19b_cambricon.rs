//! Regenerates the paper artifact `fig19b_cambricon` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig19b_cambricon::run());
}
