//! Regenerates the paper artifact `fig07_similarity` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::fig07_similarity::run());
}
