//! Regenerates the paper artifact `tab1_accuracy` (see DESIGN.md §4).

fn main() {
    print!("{}", exion_bench::experiments::tab1_accuracy::run());
}
