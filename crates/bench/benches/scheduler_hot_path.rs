//! Criterion bench of the scheduler's per-boundary decision cost at queue
//! depth 16 / 1k / 16k: the indexed admission path (`Instance::admit`,
//! bucket argmins + bounded preempt/swap scans) against the retained
//! linear-scan reference (`Instance::admit_reference`). Each sample clones
//! a prebuilt (instance, queue) pair once and then runs a burst of
//! boundary decisions (admit + execute), so the clone amortizes and the
//! measured delta is the decision path itself. Numbers are recorded in
//! `crates/bench/benches/README.md`.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exion_model::config::{ModelConfig, ModelKind};
use exion_serve::{policy, CostModel, Instance, ReadyQueue, Request, SchedContext};
use exion_sim::config::HwConfig;
use exion_sim::partition::Interconnect;
use exion_sim::perf::SimAblation;
use exion_sim::residency::EvictionPolicy;

const KINDS: [ModelKind; 3] = [ModelKind::Mld, ModelKind::Mdm, ModelKind::StableDiffusion];

/// Boundary decisions per sample (one clone amortized across the burst).
const BURST: usize = 64;

fn ctx_for(policy: Arc<dyn policy::SchedulerPolicy>) -> SchedContext {
    let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
    SchedContext::build(
        policy,
        8,
        &KINDS,
        &mut cost,
        Interconnect::default(),
        |k| ModelConfig::for_kind(k).shrunk(1, 12),
        |_| None,
    )
}

/// A `depth`-deep ready queue of mixed-model, mixed-deadline arrivals, all
/// released by `now` (the deep-backlog shape: everything visible, nothing
/// parked), plus the instance whose clock sits past the last arrival.
fn seed_state(ctx: &SchedContext, depth: usize) -> (Instance, ReadyQueue) {
    let mut requests = Vec::with_capacity(depth);
    for id in 0..depth as u64 {
        let kind = KINDS[(id % 3) as usize];
        let info = ctx.info(kind);
        let arrival_ms = 0.1 * id as f64;
        let steps = info.config.iterations;
        // Deadline spread wide enough that EDF ordering is non-trivial.
        let slo_ms = (1.0 + (id % 17) as f64) * steps as f64 * info.warm_step_ms;
        requests.push(Request::new(id, kind, arrival_ms, slo_ms, steps));
    }
    let last_arrival = 0.1 * depth.saturating_sub(1) as f64;
    let mut inst = Instance::new(0, &HwConfig::exion4(), EvictionPolicy::Lru);
    inst.now_ms = last_arrival;
    (inst, ReadyQueue::from_requests(requests, ctx))
}

fn bench_decision_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_hot_path");
    group.sample_size(10);
    let ctx = ctx_for(policy::by_name("preemptive-edf").expect("builtin"));
    let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
    for &depth in &[16usize, 1_000, 16_000] {
        let seed = seed_state(&ctx, depth);
        group.bench_with_input(BenchmarkId::new("indexed", depth), &depth, |b, _| {
            b.iter(|| {
                let (mut inst, mut queue) = seed.clone();
                for _ in 0..BURST {
                    let out = inst.admit(&mut queue, &ctx, &mut []);
                    black_box(out.admitted.len());
                    if !inst.running.is_empty() {
                        black_box(inst.execute_iteration(&mut cost, &ctx).len());
                    }
                }
                black_box(queue.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", depth), &depth, |b, _| {
            b.iter(|| {
                let (mut inst, mut queue) = seed.clone();
                for _ in 0..BURST {
                    let out = inst.admit_reference(&mut queue, &ctx, &mut []);
                    black_box(out.admitted.len());
                    if !inst.running.is_empty() {
                        black_box(inst.execute_iteration(&mut cost, &ctx).len());
                    }
                }
                black_box(queue.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision_cost);
criterion_main!(benches);
