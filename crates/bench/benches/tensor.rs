//! Criterion benches of the dense math substrate: blocked MMUL vs the naive
//! triple loop (the blocking ablation), and INT12 quantized MMUL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exion_tensor::quant::quant_matmul;
use exion_tensor::rng::seeded_uniform;
use exion_tensor::{ops, IntWidth, Matrix, QuantMatrix};
use std::hint::black_box;

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &size in &[64usize, 128, 256] {
        let a = seeded_uniform(size, size, -1.0, 1.0, 1);
        let b = seeded_uniform(size, size, -1.0, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("blocked", size), &size, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("naive", size), &size, |bench, _| {
            bench.iter(|| naive_matmul(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_quant_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant_matmul_int12");
    for &size in &[64usize, 128] {
        let a = seeded_uniform(size, size, -1.0, 1.0, 3);
        let b = seeded_uniform(size, size, -1.0, 1.0, 4);
        let qa = QuantMatrix::quantize(&a, IntWidth::Int12);
        let qb = QuantMatrix::quantize(&b, IntWidth::Int12);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| quant_matmul(black_box(&qa), black_box(&qb)))
        });
    }
    group.finish();
}

fn bench_softmax_and_norm(c: &mut Criterion) {
    let scores = seeded_uniform(256, 256, -4.0, 4.0, 5);
    c.bench_function("softmax_rows_256", |b| {
        b.iter(|| exion_tensor::softmax::softmax_rows(black_box(&scores)))
    });
    let gamma = vec![1.0f32; 256];
    let beta = vec![0.0f32; 256];
    c.bench_function("layer_norm_256", |b| {
        b.iter(|| exion_tensor::norm::layer_norm(black_box(&scores), &gamma, &beta, 1e-5))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_quant_matmul,
    bench_softmax_and_norm
);
criterion_main!(benches);
