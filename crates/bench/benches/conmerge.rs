//! Criterion benches of the ConMerge pipeline, including the sorted-vs-
//! unsorted merging ablation (the design choice Fig. 12 motivates) and the
//! merge-budget ablation (0/1/2 merges per output block).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exion_core::bitmask::Bitmask2D;
use exion_core::conmerge::{CompactionConfig, TileCompactor};
use std::hint::black_box;

/// A reproducible sparse bitmask with bimodal column density.
fn workload(rows: usize, cols: usize, sparsity_pct: u32) -> Bitmask2D {
    Bitmask2D::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let dense_col = c % 17 == 0;
        let threshold = if dense_col { 60 } else { sparsity_pct as u64 };
        h % 100 >= threshold
    })
}

fn bench_sorted_vs_unsorted(c: &mut Criterion) {
    let mask = workload(64, 1024, 95);
    let mut group = c.benchmark_group("conmerge_sorting");
    for (name, sorted) in [("sorted", true), ("unsorted", false)] {
        let compactor = TileCompactor::new(CompactionConfig {
            sorted,
            ..CompactionConfig::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| compactor.compact_matrix(black_box(&mask)))
        });
    }
    group.finish();
}

fn bench_merge_budget(c: &mut Criterion) {
    let mask = workload(64, 1024, 95);
    let mut group = c.benchmark_group("conmerge_merge_budget");
    for max_merges in [0usize, 1, 2] {
        let compactor = TileCompactor::new(CompactionConfig {
            max_merges,
            ..CompactionConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(max_merges),
            &max_merges,
            |b, _| b.iter(|| compactor.compact_matrix(black_box(&mask))),
        );
    }
    group.finish();
}

fn bench_sparsity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("conmerge_sparsity_sweep");
    let compactor = TileCompactor::new(CompactionConfig::default());
    for sparsity in [70u32, 90, 97] {
        let mask = workload(64, 512, sparsity);
        group.bench_with_input(BenchmarkId::from_parameter(sparsity), &sparsity, |b, _| {
            b.iter(|| compactor.compact_matrix(black_box(&mask)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sorted_vs_unsorted,
    bench_merge_budget,
    bench_sparsity_sweep
);
criterion_main!(benches);
