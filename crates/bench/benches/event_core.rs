//! Criterion benches of the event-calendar serving core: the raw heap
//! push/pop discipline (stale-entry skipping included) and the full
//! boundary-execution hot path of `ServeSimulator::run_traced` on a
//! fleet-sized placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exion_serve::{
    EventCalendar, EventKind, Placement, ServeConfig, ServeSimulator, TraceConfig, TrafficPattern,
    WorkloadMix,
};
use exion_sim::config::HwConfig;
use exion_sim::partition::PartitionStrategy;
use std::hint::black_box;

/// Heap discipline alone: schedule every unit, then repeatedly pop the
/// minimum and reschedule it one step ahead — the steady-state shape of
/// the cluster loop, with a reschedule (superseded entry left to die in
/// the heap) every 16th op to exercise the lazy-invalidation path.
fn bench_calendar_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_calendar");
    for &units in &[8usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("churn", units), &units, |b, &units| {
            b.iter(|| {
                let mut cal = EventCalendar::new(units);
                for u in 0..units {
                    cal.schedule_unit(u, u as f64, EventKind::UnitBoundary);
                }
                for step in 0..10_000u64 {
                    let ev = cal.pop().expect("units stay scheduled");
                    let next = ev.at_ms + 1.0 + (ev.unit % 7) as f64;
                    cal.schedule_unit(ev.unit, next, EventKind::UnitBoundary);
                    if step % 16 == 0 {
                        cal.reschedule_unit(ev.unit, next + 0.5, EventKind::UnitBoundary);
                    }
                }
                black_box(cal.len())
            })
        });
    }
    group.finish();
}

/// The full boundary-execution hot path: a short multi-tenant run over a
/// mixed replica/gang fleet, arrivals streamed lazily — what one
/// `BENCH_serve.json` fleet point does per unit of horizon.
fn bench_cluster_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_loop");
    group.sample_size(10);
    for &(replicas, gangs) in &[(4usize, 1usize), (24, 4)] {
        let units = replicas + gangs;
        let placement = Placement::mixed(replicas, gangs, PartitionStrategy::Tensor { ways: 2 });
        let config = ServeConfig::builder(HwConfig::exion4())
            .placement(placement)
            .build();
        let mix = WorkloadMix::multi_tenant();
        let capacity = ServeSimulator::new(config.clone()).capacity_estimate_rps(&mix);
        let trace = TraceConfig {
            pattern: TrafficPattern::Poisson {
                rate_rps: 0.8 * capacity,
            },
            horizon_ms: 300.0,
            seed: 0x5E17E,
            mix,
        };
        group.bench_with_input(BenchmarkId::new("run_traced", units), &units, |b, _| {
            b.iter(|| {
                let report = ServeSimulator::new(config.clone()).run(black_box(&trace));
                black_box(report.completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_calendar_churn, bench_cluster_loop);
criterion_main!(benches);
