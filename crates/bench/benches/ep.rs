//! Criterion benches of eager prediction: LOD depths, the one-hot OR-tree vs
//! exact accumulation ablation, and full attention-plan prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exion_core::ep::{log_dot, AccumMode, AttentionPlan, EpConfig, LodMode};
use exion_tensor::rng::seeded_uniform;
use exion_tensor::{IntWidth, QuantMatrix};
use std::hint::black_box;

fn quantized(rows: usize, cols: usize, seed: u64) -> QuantMatrix {
    QuantMatrix::quantize(
        &seeded_uniform(rows, cols, -1.0, 1.0, seed),
        IntWidth::Int12,
    )
}

fn bench_log_dot_modes(c: &mut Criterion) {
    let a = quantized(1, 256, 1);
    let b = quantized(1, 256, 2);
    let mut group = c.benchmark_group("log_dot_256");
    for (name, lod, accum) in [
        ("lod_exact", LodMode::Single, AccumMode::Exact),
        ("tslod_exact", LodMode::TwoStep, AccumMode::Exact),
        ("tslod_ortree", LodMode::TwoStep, AccumMode::OneHotOrTree),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| log_dot(black_box(a.row(0)), black_box(b.row(0)), lod, accum))
        });
    }
    // Reference: exact integer dot product.
    group.bench_function("exact_int", |bench| {
        bench.iter(|| {
            a.row(0)
                .iter()
                .zip(b.row(0))
                .map(|(&x, &y)| x as i64 * y as i64)
                .sum::<i64>()
        })
    });
    group.finish();
}

fn bench_attention_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_plan_predict");
    for &tokens in &[32usize, 64, 128] {
        let q = quantized(tokens, 32, 3);
        let k = quantized(tokens, 32, 4);
        let config = EpConfig::new(0.3, 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &tokens, |b, _| {
            b.iter(|| AttentionPlan::predict(black_box(&q), black_box(&k), 1e-4, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_log_dot_modes, bench_attention_plan);
criterion_main!(benches);
