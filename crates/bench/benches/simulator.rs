//! Criterion benches of the cycle-level simulator and DRAM model throughput
//! (how fast the *simulator itself* runs, so sweeps stay tractable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exion_dram::{Dram, DramTiming};
use exion_model::config::{ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::perf::{simulate_model, SimAblation};
use exion_sim::workload::SparsityProfile;
use std::hint::black_box;

fn bench_simulate_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_model");
    group.sample_size(20);
    for (name, kind) in [("MLD", ModelKind::Mld), ("DiT", ModelKind::Dit)] {
        let model = ModelConfig::for_kind(kind);
        let profile = SparsityProfile::analytic(
            model.ffn_reuse.target_sparsity,
            model.ep.paper_sparsity_pct / 100.0,
            16,
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                simulate_model(
                    black_box(&HwConfig::exion24()),
                    &model,
                    &profile,
                    SimAblation::All,
                    1,
                )
            })
        });
    }
    group.finish();
}

fn bench_dram_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.bench_function("burst_sim_1mib", |b| {
        b.iter(|| {
            let mut d = Dram::for_bandwidth(DramTiming::gddr6(), 819.0);
            d.transfer(0, 1 << 20, false, 0.0)
        })
    });
    group.bench_function("stream_1gib", |b| {
        b.iter(|| {
            let mut d = Dram::for_bandwidth(DramTiming::gddr6(), 819.0);
            d.stream_transfer(1 << 30, false, 0.0)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulate_model, bench_dram_transfers);
criterion_main!(benches);
