//! Criterion benches of FFN-Reuse: dense vs sparse iteration cost at the
//! paper's sparsity levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exion_core::ffn_reuse::{FfnReuseConfig, FfnReuseEngine, FfnWeights};
use exion_tensor::rng::seeded_uniform;
use exion_tensor::Activation;
use std::hint::black_box;

fn bench_dense_vs_sparse_iterations(c: &mut Criterion) {
    let w = FfnWeights::random(64, 256, Activation::Gelu, 1);
    let x = seeded_uniform(64, 64, -1.0, 1.0, 2);
    let mut group = c.benchmark_group("ffn_reuse_iteration");

    group.bench_function("dense_baseline", |b| {
        b.iter(|| w.forward_dense(black_box(&x)))
    });

    for sparsity in [70u64, 95, 97] {
        group.bench_with_input(
            BenchmarkId::new("sparse_iteration", sparsity),
            &sparsity,
            |b, &s| {
                let mut engine =
                    FfnReuseEngine::new(FfnReuseConfig::with_target_sparsity(s as f64 / 100.0, 4));
                let (_, _) = engine.forward(&x, &w); // dense iteration primes state
                b.iter(|| {
                    // Keep the engine in its sparse phase.
                    if engine.next_is_dense() {
                        let _ = engine.forward(&x, &w);
                    }
                    engine.forward(black_box(&x), &w)
                })
            },
        );
    }
    group.finish();
}

fn bench_threshold_calibration(c: &mut Criterion) {
    let w = FfnWeights::random(64, 512, Activation::Gelu, 3);
    let x = seeded_uniform(64, 64, -1.0, 1.0, 4);
    let hidden = w.hidden_dense(&x);
    c.bench_function("calibrate_threshold_32k", |b| {
        b.iter(|| exion_core::ffn_reuse::calibrate_threshold(black_box(&hidden), 0.95))
    });
}

criterion_group!(
    benches,
    bench_dense_vs_sparse_iterations,
    bench_threshold_calibration
);
criterion_main!(benches);
