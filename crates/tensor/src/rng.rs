//! Deterministic seeded initializers.
//!
//! Every experiment in the reproduction is seeded, so reruns are bit-stable.
//! Normal sampling uses Box–Muller on top of `rand`'s uniform generator to
//! avoid pulling in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::Matrix;

/// A seeded uniform matrix over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn seeded_uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    assert!(lo < hi, "empty uniform range [{lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// A seeded standard-normal matrix scaled by `std`.
pub fn seeded_normal(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = NormalSampler::default();
    Matrix::from_fn(rows, cols, |_, _| sampler.sample(&mut rng) * std)
}

/// Xavier/Glorot uniform initialization for a weight matrix of shape
/// `fan_in × fan_out`. Keeps activation magnitudes stable through deep
/// random-weight transformer stacks, which is what makes the synthetic
/// diffusion workloads behave like trained ones for sparsity purposes.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    seeded_uniform(fan_in, fan_out, -limit, limit, seed)
}

/// Box–Muller standard-normal sampler that caches its spare variate.
#[derive(Debug, Default)]
pub struct NormalSampler {
    spare: Option<f32>,
}

impl NormalSampler {
    /// Creates a sampler with no cached variate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f32 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller transform: u1 ∈ (0, 1] avoids ln(0).
        let u1: f32 = 1.0 - rng.random_range(0.0f32..1.0f32);
        let u2: f32 = rng.random_range(0.0f32..1.0f32);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// Fills a vector with seeded normal noise (used for diffusion priors).
pub fn seeded_noise_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = NormalSampler::new();
    (0..len).map(|_| sampler.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let a = seeded_uniform(4, 4, -1.0, 1.0, 99);
        let b = seeded_uniform(4, 4, -1.0, 1.0, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_matrix() {
        let a = seeded_uniform(4, 4, -1.0, 1.0, 1);
        let b = seeded_uniform(4, 4, -1.0, 1.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = seeded_uniform(10, 10, -0.5, 0.5, 5);
        for &x in m.as_slice() {
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = seeded_normal(100, 100, 1.0, 77);
        let mean = m.mean();
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_limit_shrinks_with_width() {
        let narrow = xavier_uniform(4, 4, 3).max_abs();
        let wide = xavier_uniform(1024, 1024, 3).max_abs();
        assert!(wide < narrow);
    }

    #[test]
    fn noise_vec_is_deterministic() {
        assert_eq!(seeded_noise_vec(8, 4), seeded_noise_vec(8, 4));
    }
}
