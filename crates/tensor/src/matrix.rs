//! Row-major `f32` matrix used by every layer of the EXION stack.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
///
/// `Matrix` is deliberately small and concrete: the EXION workloads only ever
/// need 2-D `f32` data (higher-rank activations are flattened to
/// `tokens × features` before reaching the accelerator, exactly as the paper's
/// tiling assumes).
///
/// # Examples
///
/// ```
/// use exion_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
/// assert_eq!(m[(0, 1)], 1.0);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use exion_tensor::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.as_slice(), &[0.0; 6]);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use exion_tensor::Matrix;
    /// let i = Matrix::identity(2);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a generator function called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns an iterator over rows (each row as a slice).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Applies `f` to every element, returning a new matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use exion_tensor::Matrix;
    /// let m = Matrix::full(1, 2, 2.0).map(|x| x * x);
    /// assert_eq!(m.as_slice(), &[4.0, 4.0]);
    /// ```
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Extracts a rectangular sub-matrix `[r0, r0+h) × [c0, c0+w)`.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "submatrix [{r0}+{h}, {c0}+{w}] exceeds shape {:?}",
            self.shape()
        );
        Self::from_fn(h, w, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontally concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Self {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Maximum absolute value, or `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Mean of all elements, or `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Fraction of elements whose absolute value is `<= eps`.
    ///
    /// This is the *output sparsity* measure used throughout the paper.
    pub fn sparsity(&self, eps: f32) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zero = self.data.iter().filter(|&&x| x.abs() <= eps).count();
        zero as f64 / self.data.len() as f64
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Matrix::full(2, 2, 3.0);
        let b = Matrix::full(2, 2, 4.0);
        assert_eq!(a.map(|x| x + 1.0).as_slice(), &[4.0; 4]);
        assert_eq!(a.zip_map(&b, |x, y| x * y).as_slice(), &[12.0; 4]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = a.zip_map(&b, |x, _| x);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = m.submatrix(1, 2, 2, 2);
        assert_eq!(s.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::full(1, 2, 1.0);
        let b = Matrix::full(1, 2, 2.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn sparsity_counts_near_zero() {
        let m = Matrix::from_vec(1, 4, vec![0.0, 0.5, 0.0, -0.2]);
        assert!((m.sparsity(1e-6) - 0.5).abs() < 1e-12);
        assert!((m.sparsity(0.3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn norms_and_mean() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((m.mean() - 3.5).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}
