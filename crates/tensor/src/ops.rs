//! Matrix operations: blocked MMUL, transpose and element-wise arithmetic.
//!
//! MMUL is the operation EXION accelerates; the blocked implementation here
//! mirrors the tiling mindset of the paper's hardware (Section III-B observes
//! that "an HW accelerator running MMUL operations … employs a tiling
//! strategy") while remaining an ordinary cache-blocked CPU kernel.

use crate::Matrix;

/// Cache block edge used by [`matmul`]. 64 `f32`s = 256 B per row segment.
const BLOCK: usize = 64;

/// Dense matrix multiplication `A (m×k) · B (k×n) -> C (m×n)`.
///
/// Uses i-k-j loop order with `k`-blocking, which is both cache-friendly and
/// bit-identical to the naive triple loop for `f32` accumulation order within
/// each row (accumulation runs in ascending `k`).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
///
/// # Examples
///
/// ```
/// use exion_tensor::{Matrix, ops};
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// assert_eq!(ops::matmul(&a, &b), a);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner-dimension mismatch: {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for kb in (0..k).step_by(BLOCK) {
        let kend = (kb + BLOCK).min(k);
        for i in 0..m {
            let a_row = a.row(i);
            let c_row = c.row_mut(i);
            #[allow(clippy::needless_range_loop)] // kk walks a k-window, not a slice
            for kk in kb..kend {
                let aik = a_row[kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = b.row(kk);
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
    c
}

/// Matrix multiplication with the second operand transposed:
/// `A (m×k) · Bᵀ (k×n) -> C (m×n)` where `b` is stored as `n×k`.
///
/// This is the natural layout for attention scores `Q·Kᵀ`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose_b inner-dimension mismatch: {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    Matrix::from_fn(m, n, |i, j| dot(a.row(i), b.row(j)))
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Transposes a matrix.
pub fn transpose(m: &Matrix) -> Matrix {
    Matrix::from_fn(m.cols(), m.rows(), |r, c| m[(c, r)])
}

/// Element-wise sum.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    a.zip_map(b, |x, y| x + y)
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    a.zip_map(b, |x, y| x - y)
}

/// Element-wise (Hadamard) product.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    a.zip_map(b, |x, y| x * y)
}

/// Multiplies every element by a scalar.
pub fn scale(m: &Matrix, s: f32) -> Matrix {
    m.map(|x| x * s)
}

/// Adds a bias row vector to every row of `m`.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols()`.
pub fn add_bias(m: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(bias.len(), m.cols(), "bias length mismatch");
    Matrix::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)] + bias[c])
}

/// Linear layer: `x · w + bias`.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn linear(x: &Matrix, w: &Matrix, bias: &[f32]) -> Matrix {
    add_bias(&matmul(x, w), bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_uniform;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_on_random_sizes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (17, 33, 9), (65, 130, 66)] {
            let a = seeded_uniform(m, k, -1.0, 1.0, 42);
            let b = seeded_uniform(k, n, -1.0, 1.0, 43);
            let fast = matmul(&a, &b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-3, "blocked {x} vs naive {y}");
            }
        }
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = seeded_uniform(4, 6, -1.0, 1.0, 1);
        let b = seeded_uniform(5, 6, -1.0, 1.0, 2);
        let via_t = matmul(&a, &transpose(&b));
        let direct = matmul_transpose_b(&a, &b);
        for (x, y) in via_t.as_slice().iter().zip(direct.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn transpose_involution() {
        let m = seeded_uniform(3, 7, -1.0, 1.0, 9);
        assert_eq!(transpose(&transpose(&m)), m);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::full(2, 2, 6.0);
        let b = Matrix::full(2, 2, 2.0);
        assert_eq!(add(&a, &b).as_slice(), &[8.0; 4]);
        assert_eq!(sub(&a, &b).as_slice(), &[4.0; 4]);
        assert_eq!(hadamard(&a, &b).as_slice(), &[12.0; 4]);
        assert_eq!(scale(&a, 0.5).as_slice(), &[3.0; 4]);
    }

    #[test]
    fn linear_applies_bias() {
        let x = Matrix::identity(2);
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = linear(&x, &w, &[10.0, 20.0]);
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }
}
