//! Statistics used by the accuracy experiments.
//!
//! The paper's Table I reports dataset metrics (FID, IS, R-Precision, …) plus
//! "PSNR w/ Vanilla". Without the pre-trained models and datasets, the
//! reproduction relies on the relative metrics: PSNR/MSE/cosine similarity
//! against the vanilla (unapproximated) pipeline output, plus a Fréchet
//! distance between Gaussian fits of random-projection features — the same
//! quantity FID measures, minus the Inception embedding (see DESIGN.md §1).

use crate::rng::seeded_normal;
use crate::{ops, Matrix};

/// Cosine similarity of two equal-length vectors. Returns 0.0 when either
/// vector is all-zero.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Examples
///
/// ```
/// use exion_tensor::stats::cosine_similarity;
/// assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
/// assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
/// ```
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Mean squared error between two equal-shape matrices.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Peak signal-to-noise ratio of `approx` against `reference`, in dB.
///
/// The peak is taken as the reference's max-abs value (its dynamic range for
/// zero-centred diffusion outputs). Identical inputs yield `f64::INFINITY`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn psnr(reference: &Matrix, approx: &Matrix) -> f64 {
    let e = mse(reference, approx);
    if e == 0.0 {
        return f64::INFINITY;
    }
    let peak = reference.max_abs() as f64;
    if peak == 0.0 {
        return 0.0;
    }
    10.0 * ((peak * peak) / e).log10()
}

/// Relative Frobenius error `‖a − b‖ / ‖a‖` (0.0 when `a` is zero).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f64 {
    let na = a.frobenius_norm() as f64;
    if na == 0.0 {
        return 0.0;
    }
    ops::sub(a, b).frobenius_norm() as f64 / na
}

/// Per-dimension mean and variance of a set of feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianFit {
    /// Per-dimension means.
    pub mean: Vec<f64>,
    /// Per-dimension variances.
    pub var: Vec<f64>,
}

impl GaussianFit {
    /// Fits a diagonal Gaussian to a batch of feature vectors (rows).
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty.
    pub fn fit(features: &Matrix) -> Self {
        assert!(features.rows() > 0, "cannot fit Gaussian to empty batch");
        let n = features.rows() as f64;
        let d = features.cols();
        let mut mean = vec![0.0f64; d];
        for row in features.iter_rows() {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; d];
        for row in features.iter_rows() {
            for ((v, &x), m) in var.iter_mut().zip(row).zip(&mean) {
                let diff = x as f64 - m;
                *v += diff * diff;
            }
        }
        for v in &mut var {
            *v /= n;
        }
        Self { mean, var }
    }
}

/// Fréchet distance between two diagonal Gaussians:
/// `‖μ₁−μ₂‖² + Σ (√v₁ − √v₂)²`.
///
/// This is the exact 2-Wasserstein distance between axis-aligned Gaussians
/// and the proxy-FID of the accuracy experiments.
///
/// # Panics
///
/// Panics if the fits have different dimensionality.
pub fn frechet_distance(a: &GaussianFit, b: &GaussianFit) -> f64 {
    assert_eq!(a.mean.len(), b.mean.len(), "Fréchet dimension mismatch");
    let mean_term: f64 = a
        .mean
        .iter()
        .zip(&b.mean)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum();
    let var_term: f64 = a
        .var
        .iter()
        .zip(&b.var)
        .map(|(&x, &y)| {
            let d = x.max(0.0).sqrt() - y.max(0.0).sqrt();
            d * d
        })
        .sum();
    mean_term + var_term
}

/// Projects a batch of flattened samples (rows) into a `dim`-dimensional
/// feature space with a seeded random projection, the stand-in for the
/// Inception embedding in proxy-FID.
pub fn random_projection_features(samples: &Matrix, dim: usize, seed: u64) -> Matrix {
    let proj = seeded_normal(
        samples.cols(),
        dim,
        (1.0 / samples.cols() as f32).sqrt(),
        seed,
    );
    ops::matmul(samples, &proj)
}

/// Proxy-FID between two batches of flattened samples: Fréchet distance of
/// diagonal-Gaussian fits over seeded random-projection features.
///
/// # Panics
///
/// Panics if the batches have different feature width or either is empty.
pub fn proxy_fid(reference: &Matrix, generated: &Matrix, feature_dim: usize, seed: u64) -> f64 {
    assert_eq!(
        reference.cols(),
        generated.cols(),
        "proxy_fid feature width mismatch"
    );
    let fa = GaussianFit::fit(&random_projection_features(reference, feature_dim, seed));
    let fb = GaussianFit::fit(&random_projection_features(generated, feature_dim, seed));
    frechet_distance(&fa, &fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_uniform;

    #[test]
    fn cosine_of_identical_is_one() {
        let v = [0.3f32, -0.7, 2.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_of_opposite_is_minus_one() {
        let v = [1.0f32, 2.0];
        let w = [-1.0f32, -2.0];
        assert!((cosine_similarity(&v, &w) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_and_psnr_identity() {
        let m = seeded_uniform(4, 4, -1.0, 1.0, 8);
        assert_eq!(mse(&m, &m), 0.0);
        assert!(psnr(&m, &m).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let m = seeded_uniform(16, 16, -1.0, 1.0, 8);
        let small = m.map(|x| x + 0.01);
        let large = m.map(|x| x + 0.1);
        assert!(psnr(&m, &small) > psnr(&m, &large));
    }

    #[test]
    fn relative_error_scales() {
        let m = Matrix::full(2, 2, 2.0);
        let n = Matrix::full(2, 2, 1.0);
        assert!((relative_error(&m, &n) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gaussian_fit_recovers_moments() {
        let features = Matrix::from_vec(4, 1, vec![1.0, 3.0, 1.0, 3.0]);
        let fit = GaussianFit::fit(&features);
        assert!((fit.mean[0] - 2.0).abs() < 1e-9);
        assert!((fit.var[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frechet_zero_for_identical_fits() {
        let features = seeded_uniform(32, 8, -1.0, 1.0, 10);
        let fit = GaussianFit::fit(&features);
        assert_eq!(frechet_distance(&fit, &fit), 0.0);
    }

    #[test]
    fn proxy_fid_separates_distributions() {
        let a = seeded_uniform(64, 32, -1.0, 1.0, 1);
        let near = seeded_uniform(64, 32, -1.0, 1.0, 2);
        let far = seeded_uniform(64, 32, 4.0, 6.0, 3);
        let fid_near = proxy_fid(&a, &near, 16, 42);
        let fid_far = proxy_fid(&a, &far, 16, 42);
        assert!(fid_near < fid_far, "near {fid_near} vs far {fid_far}");
    }
}
