//! Layer normalization (the "Add & Normalization" blocks of Figure 3(b)).

use crate::Matrix;

/// Row-wise layer normalization with learned scale (`gamma`) and shift
/// (`beta`).
///
/// Each row is normalized to zero mean / unit variance and then affinely
/// transformed: `y = gamma ⊙ (x - mean) / sqrt(var + eps) + beta`.
///
/// # Panics
///
/// Panics if `gamma.len()` or `beta.len()` differs from `x.cols()`.
///
/// # Examples
///
/// ```
/// use exion_tensor::{Matrix, norm::layer_norm};
/// let x = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
/// let y = layer_norm(&x, &[1.0, 1.0], &[0.0, 0.0], 1e-5);
/// assert!((y[(0, 0)] + y[(0, 1)]).abs() < 1e-5); // zero mean
/// ```
pub fn layer_norm(x: &Matrix, gamma: &[f32], beta: &[f32], eps: f32) -> Matrix {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    let n = x.cols() as f32;
    for r in 0..x.rows() {
        let row = x.row(r);
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var + eps).sqrt();
        let out_row = out.row_mut(r);
        for c in 0..row.len() {
            out_row[c] = gamma[c] * (row[c] - mean) * inv_std + beta[c];
        }
    }
    out
}

/// Layer normalization with unit scale and zero shift.
pub fn layer_norm_plain(x: &Matrix, eps: f32) -> Matrix {
    let ones = vec![1.0; x.cols()];
    let zeros = vec![0.0; x.cols()];
    layer_norm(x, &ones, &zeros, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_uniform;

    #[test]
    fn normalized_rows_have_zero_mean_unit_var() {
        let x = seeded_uniform(4, 16, -3.0, 3.0, 7);
        let y = layer_norm_plain(&x, 1e-6);
        for r in 0..y.rows() {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_applied() {
        let x = Matrix::from_vec(1, 2, vec![-1.0, 1.0]);
        let y = layer_norm(&x, &[2.0, 2.0], &[5.0, 5.0], 1e-9);
        // normalized values are ±1; after affine: 5 ∓ 2.
        assert!((y[(0, 0)] - 3.0).abs() < 1e-4);
        assert!((y[(0, 1)] - 7.0).abs() < 1e-4);
    }

    #[test]
    fn constant_row_maps_to_beta() {
        let x = Matrix::full(1, 4, 9.0);
        let y = layer_norm(&x, &[1.0; 4], &[0.5; 4], 1e-5);
        for c in 0..4 {
            assert!((y[(0, c)] - 0.5).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "gamma length mismatch")]
    fn rejects_bad_gamma() {
        let _ = layer_norm(&Matrix::zeros(1, 3), &[1.0; 2], &[0.0; 3], 1e-5);
    }
}
