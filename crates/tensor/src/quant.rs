//! Symmetric post-training quantization (PTQ).
//!
//! The paper verifies accuracy "after applying post-training quantization,
//! reducing MMUL operations to 12-bit INT and other operations to either
//! 16-bit or 32-bit INT, aligning with our HW architecture" (Section V-A).
//! This module provides exactly that: per-tensor symmetric quantization at
//! 12/16/32-bit widths and an integer MMUL with 32-bit accumulation that
//! mirrors the SDUE datapath.

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// Integer width of a quantized tensor, matching the EXION datapaths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntWidth {
    /// 12-bit signed (SDUE / EPRE MMUL operands).
    Int12,
    /// 16-bit signed (CFSE two-way mode).
    Int16,
    /// 32-bit signed (CFSE one-way mode / accumulators).
    Int32,
}

impl IntWidth {
    /// Largest representable magnitude (`2^(bits-1) - 1`).
    pub fn max_value(&self) -> i32 {
        match self {
            IntWidth::Int12 => (1 << 11) - 1,
            IntWidth::Int16 => (1 << 15) - 1,
            IntWidth::Int32 => i32::MAX,
        }
    }

    /// Number of bits.
    pub fn bits(&self) -> u32 {
        match self {
            IntWidth::Int12 => 12,
            IntWidth::Int16 => 16,
            IntWidth::Int32 => 32,
        }
    }
}

/// Per-tensor symmetric quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
    /// Integer width.
    pub width: IntWidth,
}

impl QuantParams {
    /// Calibrates the scale so that the matrix's max-abs value maps to the
    /// largest representable integer.
    ///
    /// A zero matrix gets scale 1.0 (any scale represents it exactly).
    pub fn calibrate(m: &Matrix, width: IntWidth) -> Self {
        let max_abs = m.max_abs();
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / width.max_value() as f32
        };
        Self { scale, width }
    }

    /// Quantizes one real value to the clamped integer grid.
    pub fn quantize(&self, x: f32) -> i32 {
        let q = (x / self.scale).round() as i64;
        let max = self.width.max_value() as i64;
        q.clamp(-max, max) as i32
    }

    /// Recovers the real value of one integer.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }
}

/// A quantized matrix: integer payload plus its [`QuantParams`].
///
/// Integers are stored as `i32` regardless of logical width; the width only
/// constrains the representable range (as the hardware's 12-bit registers
/// would).
///
/// # Examples
///
/// ```
/// use exion_tensor::{IntWidth, Matrix, QuantMatrix};
///
/// let m = Matrix::from_vec(1, 2, vec![1.0, -0.5]);
/// let q = QuantMatrix::quantize(&m, IntWidth::Int12);
/// let back = q.dequantize();
/// assert!((back[(0, 0)] - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
    params: QuantParams,
}

impl QuantMatrix {
    /// Quantizes a real matrix with per-tensor calibration.
    pub fn quantize(m: &Matrix, width: IntWidth) -> Self {
        let params = QuantParams::calibrate(m, width);
        Self::quantize_with(m, params)
    }

    /// Quantizes a real matrix with explicit parameters.
    pub fn quantize_with(m: &Matrix, params: QuantParams) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&x| params.quantize(x)).collect(),
            params,
        }
    }

    /// Builds a quantized matrix from raw integers (e.g. re-quantized
    /// log-domain prediction outputs), clamping each value to the width's
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_parts(rows: usize, cols: usize, data: Vec<i32>, params: QuantParams) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        let max = params.width.max_value();
        Self {
            rows,
            cols,
            data: data.into_iter().map(|q| q.clamp(-max, max)).collect(),
            params,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Integer value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> i32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Borrows row `r` of integers.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[i32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrows the full integer payload (row-major).
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Recovers the real-valued matrix.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
        )
    }
}

/// Integer MMUL `A (m×k) · B (k×n)` with 32-bit accumulation, returning the
/// dequantized real result (`scale = scale_a * scale_b`).
///
/// This is the numerically exact model of the SDUE dense datapath: INT12
/// multipliers, Wallace-tree accumulation in wide registers, and a final
/// scale-factor multiply.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn quant_matmul(a: &QuantMatrix, b: &QuantMatrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "quant_matmul inner-dimension mismatch: {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let scale = a.params().scale * b.params().scale;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            let mut acc: i64 = 0;
            for (p, &av) in a_row.iter().enumerate().take(k) {
                acc += av as i64 * b.get(p, j) as i64;
            }
            out[(i, j)] = acc as f32 * scale;
        }
    }
    out
}

/// Worst-case quantization error of one tensor round trip (for tests and
/// calibration sanity checks): half a scale step.
pub fn quant_step(params: QuantParams) -> f32 {
    params.scale * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::rng::seeded_uniform;

    #[test]
    fn int_width_ranges() {
        assert_eq!(IntWidth::Int12.max_value(), 2047);
        assert_eq!(IntWidth::Int16.max_value(), 32767);
        assert_eq!(IntWidth::Int12.bits(), 12);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let m = seeded_uniform(8, 8, -2.0, 2.0, 3);
        let q = QuantMatrix::quantize(&m, IntWidth::Int12);
        let back = q.dequantize();
        let step = quant_step(q.params());
        for (x, y) in m.as_slice().iter().zip(back.as_slice()) {
            assert!((x - y).abs() <= step * 1.001, "{x} vs {y} (step {step})");
        }
    }

    #[test]
    fn calibration_maps_extreme_to_max_int() {
        let m = Matrix::from_vec(1, 2, vec![4.0, -4.0]);
        let q = QuantMatrix::quantize(&m, IntWidth::Int12);
        assert_eq!(q.get(0, 0), 2047);
        assert_eq!(q.get(0, 1), -2047);
    }

    #[test]
    fn zero_matrix_round_trips() {
        let m = Matrix::zeros(2, 2);
        let q = QuantMatrix::quantize(&m, IntWidth::Int12);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn quant_matmul_close_to_real_matmul() {
        let a = seeded_uniform(6, 10, -1.0, 1.0, 11);
        let b = seeded_uniform(10, 5, -1.0, 1.0, 12);
        let qa = QuantMatrix::quantize(&a, IntWidth::Int12);
        let qb = QuantMatrix::quantize(&b, IntWidth::Int12);
        let approx = quant_matmul(&qa, &qb);
        let exact = ops::matmul(&a, &b);
        for (x, y) in approx.as_slice().iter().zip(exact.as_slice()) {
            assert!((x - y).abs() < 0.02, "quant {x} vs exact {y}");
        }
    }

    #[test]
    fn int16_is_more_precise_than_int12() {
        let m = seeded_uniform(16, 16, -1.0, 1.0, 20);
        let err12: f32 = QuantMatrix::quantize(&m, IntWidth::Int12)
            .dequantize()
            .zip_map(&m, |a, b| (a - b).abs())
            .as_slice()
            .iter()
            .sum();
        let err16: f32 = QuantMatrix::quantize(&m, IntWidth::Int16)
            .dequantize()
            .zip_map(&m, |a, b| (a - b).abs())
            .as_slice()
            .iter()
            .sum();
        assert!(err16 < err12);
    }

    #[test]
    fn quantize_clamps_outliers() {
        let params = QuantParams {
            scale: 1.0,
            width: IntWidth::Int12,
        };
        assert_eq!(params.quantize(1e9), 2047);
        assert_eq!(params.quantize(-1e9), -2047);
    }
}
