//! # exion-tensor
//!
//! Dense math substrate for the [EXION](https://arxiv.org/abs/2501.05680)
//! reproduction.
//!
//! The EXION paper operates on the matrix multiplications (MMULs) inside
//! diffusion-model transformer blocks. This crate supplies everything those
//! workloads need in pure Rust:
//!
//! * [`Matrix`] — a row-major `f32` matrix with shape-checked operations,
//! * [`ops`] — blocked MMUL, transposes, element-wise arithmetic,
//! * [`activation`] — GELU / GEGLU / SiLU / ReLU non-linearities,
//! * [`softmax`] and [`norm`] — numerically stable softmax and LayerNorm,
//! * [`quant`] — INT12/INT16 symmetric post-training quantization matching the
//!   paper's mixed-precision hardware datapath (12-bit SDUE/EPRE, 16/32-bit CFSE),
//! * [`stats`] — cosine similarity, PSNR, MSE and a Fréchet distance used by the
//!   accuracy-evaluation experiments,
//! * [`rng`] — deterministic seeded initializers so every experiment is
//!   reproducible.
//!
//! # Examples
//!
//! ```
//! use exion_tensor::{Matrix, ops};
//!
//! let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::identity(3);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c, a);
//! ```

pub mod activation;
pub mod matrix;
pub mod norm;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod softmax;
pub mod stats;

pub use activation::Activation;
pub use matrix::Matrix;
pub use quant::{IntWidth, QuantMatrix, QuantParams};
