//! Non-linearities used between the two FFN layers of diffusion transformer
//! blocks.
//!
//! The paper's FFN-Reuse bitmask is generated from "the output of the
//! non-linear layer (e.g., GELU or GEGLU)" (Section III-A), so both variants
//! are provided, plus SiLU and ReLU for the UNet-style benchmarks.

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// Gaussian Error Linear Unit (tanh approximation, as used by GPT-style
/// transformer stacks and the DiT reference implementation).
///
/// # Examples
///
/// ```
/// use exion_tensor::activation::gelu;
/// assert!(gelu(0.0).abs() < 1e-7);
/// assert!((gelu(3.0) - 3.0).abs() < 0.01);
/// assert!(gelu(-3.0).abs() < 0.01);
/// ```
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Sigmoid Linear Unit (`x * sigmoid(x)`), used by UNet ResBlocks.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Rectified Linear Unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// The non-linearity between the two FFN linear layers.
///
/// `Geglu` is a gated variant: the first FFN layer produces `2·d_ff` features;
/// the activation output is `gelu(a) ⊙ b` over the split halves (Shazeer,
/// "GLU Variants Improve Transformer", 2020). Stable Diffusion's transformer
/// blocks use GEGLU, the other benchmarks use GELU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Plain GELU over every element.
    Gelu,
    /// Gated GELU: input columns are split in half, output is
    /// `gelu(left) ⊙ right` with half the input width.
    Geglu,
    /// SiLU (used in ResBlocks).
    Silu,
    /// ReLU.
    Relu,
}

impl Activation {
    /// Applies the activation to a hidden matrix.
    ///
    /// For [`Activation::Geglu`] the input must have an even number of
    /// columns; the output has half as many columns. All other variants
    /// preserve the shape.
    ///
    /// # Panics
    ///
    /// Panics if `Geglu` is applied to a matrix with an odd column count.
    ///
    /// # Examples
    ///
    /// ```
    /// use exion_tensor::{Activation, Matrix};
    /// let h = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
    /// let out = Activation::Geglu.apply(&h);
    /// assert_eq!(out.shape(), (1, 1));
    /// ```
    pub fn apply(&self, h: &Matrix) -> Matrix {
        match self {
            Activation::Gelu => h.map(gelu),
            Activation::Silu => h.map(silu),
            Activation::Relu => h.map(relu),
            Activation::Geglu => {
                assert!(
                    h.cols().is_multiple_of(2),
                    "GEGLU needs an even column count, got {}",
                    h.cols()
                );
                let half = h.cols() / 2;
                Matrix::from_fn(h.rows(), half, |r, c| gelu(h[(r, c)]) * h[(r, half + c)])
            }
        }
    }

    /// Output width of the activation given the first FFN layer's width.
    pub fn output_cols(&self, input_cols: usize) -> usize {
        match self {
            Activation::Geglu => input_cols / 2,
            _ => input_cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_limits() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu(-10.0).abs() < 1e-4);
        // GELU is monotonically increasing for x > 0.
        assert!(gelu(2.0) > gelu(1.0));
    }

    #[test]
    fn silu_and_relu_basics() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_produces_small_outputs_for_small_negatives() {
        // The near-zero region is what FFN-Reuse's threshold bitmask exploits.
        for x in [-0.5f32, -0.2, -0.05] {
            assert!(gelu(x).abs() < 0.2);
        }
    }

    #[test]
    fn activation_apply_preserves_or_halves_shape() {
        let h = Matrix::full(3, 4, 1.0);
        assert_eq!(Activation::Gelu.apply(&h).shape(), (3, 4));
        assert_eq!(Activation::Silu.apply(&h).shape(), (3, 4));
        assert_eq!(Activation::Relu.apply(&h).shape(), (3, 4));
        assert_eq!(Activation::Geglu.apply(&h).shape(), (3, 2));
    }

    #[test]
    fn geglu_gates_left_half_by_right_half() {
        let h = Matrix::from_vec(1, 4, vec![1.0, 2.0, 0.0, 3.0]);
        let out = Activation::Geglu.apply(&h);
        assert_eq!(out[(0, 0)], 0.0); // gelu(1) * 0
        assert!((out[(0, 1)] - gelu(2.0) * 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "even column count")]
    fn geglu_rejects_odd_width() {
        let _ = Activation::Geglu.apply(&Matrix::zeros(1, 3));
    }

    #[test]
    fn output_cols() {
        assert_eq!(Activation::Gelu.output_cols(8), 8);
        assert_eq!(Activation::Geglu.output_cols(8), 4);
    }
}
