//! Numerically stable softmax, applied row-wise over attention scores.

use crate::Matrix;

/// Row-wise numerically stable softmax.
///
/// Each row is shifted by its maximum before exponentiation, so arbitrarily
/// large scores do not overflow.
///
/// # Examples
///
/// ```
/// use exion_tensor::{Matrix, softmax::softmax_rows};
/// let s = softmax_rows(&Matrix::from_vec(1, 2, vec![0.0, 0.0]));
/// assert!((s[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(scores: &Matrix) -> Matrix {
    let mut out = scores.clone();
    for r in 0..out.rows() {
        softmax_row_inplace(out.row_mut(r));
    }
    out
}

/// In-place stable softmax over a single row.
pub fn softmax_row_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Softmax with some entries masked out (treated as `-inf`).
///
/// `mask[r][c] == false` removes the entry from the distribution. Rows whose
/// mask is entirely `false` become all zeros. This models the paper's top-k
/// eager-prediction pruning, where "values that do not rank within the top k
/// are directly assigned to zero" before the real-domain softmax.
///
/// # Panics
///
/// Panics if the mask shape does not match the score shape.
pub fn masked_softmax_rows(scores: &Matrix, mask: &[Vec<bool>]) -> Matrix {
    assert_eq!(mask.len(), scores.rows(), "mask row count mismatch");
    let mut out = Matrix::zeros(scores.rows(), scores.cols());
    for r in 0..scores.rows() {
        assert_eq!(mask[r].len(), scores.cols(), "mask col count mismatch");
        let kept: Vec<(usize, f32)> = (0..scores.cols())
            .filter(|&c| mask[r][c])
            .map(|c| (c, scores[(r, c)]))
            .collect();
        if kept.is_empty() {
            continue;
        }
        let max = kept.iter().fold(f32::NEG_INFINITY, |m, &(_, x)| m.max(x));
        let exps: Vec<(usize, f32)> = kept.iter().map(|&(c, x)| (c, (x - max).exp())).collect();
        let sum: f32 = exps.iter().map(|&(_, e)| e).sum();
        for (c, e) in exps {
            out[(r, c)] = e / sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_rows(&Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let b = softmax_rows(&Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_scores() {
        let s = softmax_rows(&Matrix::from_vec(1, 2, vec![1e30f32, -1e30f32]));
        assert!((s[(0, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(s[(0, 1)], 0.0);
    }

    #[test]
    fn dominant_element_takes_almost_all_mass() {
        // This is the property the eager-prediction row-skip relies on: when
        // one score dominates, the softmax output is effectively one-hot.
        let s = softmax_rows(&Matrix::from_vec(1, 4, vec![20.0, 0.0, 0.0, 0.0]));
        assert!(s[(0, 0)] > 0.999);
    }

    #[test]
    fn masked_softmax_zeroes_masked_entries() {
        let m = Matrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        let mask = vec![vec![true, false, true]];
        let s = masked_softmax_rows(&m, &mask);
        assert_eq!(s[(0, 1)], 0.0);
        assert!((s[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((s[(0, 2)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_all_false_row_is_zero() {
        let m = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let s = masked_softmax_rows(&m, &[vec![false, false]]);
        assert_eq!(s.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn empty_row_is_noop() {
        let mut row: [f32; 0] = [];
        softmax_row_inplace(&mut row);
    }
}
