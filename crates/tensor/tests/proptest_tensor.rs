//! Property-based tests of the math substrate's algebraic invariants.

use exion_tensor::quant::quant_matmul;
use exion_tensor::rng::seeded_uniform;
use exion_tensor::softmax::softmax_rows;
use exion_tensor::{ops, IntWidth, Matrix, QuantMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identity is a two-sided unit for MMUL.
    #[test]
    fn identity_is_matmul_unit(n in 1usize..24, seed in 0u64..1000) {
        let a = seeded_uniform(n, n, -2.0, 2.0, seed);
        let i = Matrix::identity(n);
        let left = ops::matmul(&i, &a);
        let right = ops::matmul(&a, &i);
        for (x, y) in left.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
        for (x, y) in right.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_reverses_products(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
    ) {
        let a = seeded_uniform(m, k, -1.0, 1.0, seed);
        let b = seeded_uniform(k, n, -1.0, 1.0, seed + 1);
        let lhs = ops::transpose(&ops::matmul(&a, &b));
        let rhs = ops::matmul(&ops::transpose(&b), &ops::transpose(&a));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// MMUL distributes over addition.
    #[test]
    fn matmul_distributes(m in 1usize..10, k in 1usize..10, seed in 0u64..1000) {
        let a = seeded_uniform(m, k, -1.0, 1.0, seed);
        let b = seeded_uniform(k, m, -1.0, 1.0, seed + 1);
        let c = seeded_uniform(k, m, -1.0, 1.0, seed + 2);
        let lhs = ops::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&ops::matmul(&a, &b), &ops::matmul(&a, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows are probability distributions whatever the input.
    #[test]
    fn softmax_rows_are_distributions(
        m in 1usize..8, n in 1usize..16, lo in -50.0f32..0.0, seed in 0u64..1000
    ) {
        let s = softmax_rows(&seeded_uniform(m, n, lo, lo + 60.0, seed));
        for r in 0..m {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Quantization round-trip error is bounded by half a step, and the
    /// quantized MMUL tracks the real one.
    #[test]
    fn quantization_bounds(m in 2usize..10, k in 2usize..16, seed in 0u64..1000) {
        let a = seeded_uniform(m, k, -3.0, 3.0, seed);
        let q = QuantMatrix::quantize(&a, IntWidth::Int12);
        let step = q.params().scale;
        for (x, y) in a.as_slice().iter().zip(q.dequantize().as_slice()) {
            prop_assert!((x - y).abs() <= step * 0.501);
        }
        let b = seeded_uniform(k, m, -3.0, 3.0, seed + 1);
        let qb = QuantMatrix::quantize(&b, IntWidth::Int12);
        let approx = quant_matmul(&q, &qb);
        let exact = ops::matmul(&a, &b);
        let denom = exact.max_abs().max(1e-3);
        for (x, y) in approx.as_slice().iter().zip(exact.as_slice()) {
            prop_assert!((x - y).abs() / denom < 0.02, "{x} vs {y}");
        }
    }

    /// PSNR is monotone in perturbation size.
    #[test]
    fn psnr_monotone(seed in 0u64..1000, eps in 0.01f32..0.2) {
        let a = seeded_uniform(8, 8, -1.0, 1.0, seed);
        let near = a.map(|v| v + eps * 0.5);
        let far = a.map(|v| v + eps);
        prop_assert!(
            exion_tensor::stats::psnr(&a, &near) >= exion_tensor::stats::psnr(&a, &far)
        );
    }
}
