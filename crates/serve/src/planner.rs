//! The placement planner: workload-driven auto-placement of replicas vs
//! TP/PP gangs.
//!
//! PR 3/4 built every *mechanism* a sharded serving cluster needs —
//! partitioned cost model, shard-granular GSC residency, gangs, a pluggable
//! policy/admission control plane — but nothing *chooses* a placement:
//! every sweep hand-picks the replicas-vs-gangs split. This module is the
//! missing control-plane tier between the cost model and the scheduler: an
//! offline optimizer that turns (model mix, load forecast, hardware,
//! instance budget) into a [`Placement`].
//!
//! [`PlacementPlanner::plan`] enumerates every placement the budget admits
//! — `r` whole-model replicas plus `g` gangs of each candidate
//! [`PartitionStrategy`] (TP=2/4, PP=2/4 by default), including mixed
//! clusters — prunes the GSC-infeasible ones ([`gsc_feasible`]), scores
//! the survivors against the forecast, and keeps the top
//! [`PlannerConfig::beam_width`].
//!
//! The score is an analytic goodput projection built from the same
//! currencies the cluster itself runs on:
//!
//! * **steady-state service time** — a replica serving a tenant bigger
//!   than its GSC never gets warmer than its partial residency, so its
//!   generations are priced at
//!   [`CostModel::generation_cost_at_residency`]; each gang member is
//!   priced at *its shard's* steady-state residency
//!   ([`PartitionPlan::min_member_residency`]) plus the topology-aware,
//!   contention-adjusted collective term
//!   ([`PartitionPlan::collective_ms_contended`] — concurrent gangs on a
//!   ring fabric share its links);
//! * **capacity** — the mix-weighted harmonic unit throughput at the full
//!   batch, summed across units;
//! * **SLO attainment** — per-model projected latency (service at the
//!   load-implied batch occupancy plus an M/M/c-flavored queueing term)
//!   against the same SLOs the cluster scales from the warm replica
//!   service time;
//! * **latency pressure** — a small tie-break penalty so that when two
//!   placements both meet every SLO (light load), the one with the
//!   shorter generations wins — exactly the regime where a TP gang's
//!   halved critical path beats replicas, before the replicas' independent
//!   queues win the throughput race past the goodput crossover.
//!
//! The online half — epoch re-planning against realized load with a priced
//! migration — lives in the cluster loop (`ServeConfigBuilder::
//! auto_placement`); this module only decides.

use exion_model::config::ModelConfig;
use exion_sim::config::HwConfig;
use exion_sim::partition::{Interconnect, PartitionPlan, PartitionStrategy};
use exion_sim::residency::{latent_state_bytes, model_weight_bytes, partial_residency};
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::placement::Placement;
use crate::trace::WorkloadMix;

/// Weight of the latency-pressure tie-break in the score: large enough to
/// separate placements that both meet every SLO, small enough never to
/// override a real goodput difference.
const LATENCY_PRESSURE_WEIGHT: f64 = 0.1;

/// Queueing blow-up factor charged to a candidate driven at or past its
/// capacity (the projection's stand-in for an unbounded queue).
const OVERLOAD_LATENCY_FACTOR: f64 = 10.0;

/// Configuration of the placement planner: the instance budget, the gang
/// strategies worth considering, and the online re-planning knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Hardware instances the placement may occupy in total.
    pub budget: usize,
    /// Candidate gang strategies (replicas are always enumerated).
    pub strategies: Vec<PartitionStrategy>,
    /// The board fabric gang members would communicate over.
    pub interconnect: Interconnect,
    /// The deployment's per-unit batch bound (must match the serving
    /// config's; `ServeConfigBuilder::auto_placement` syncs it).
    pub max_batch: usize,
    /// Candidates kept (and reported) after scoring — the beam.
    pub beam_width: usize,
    /// Online re-planning cadence (ms of simulated time).
    pub epoch_ms: f64,
    /// Relative forecast-vs-realized divergence that triggers a re-plan
    /// (e.g. 0.35 = re-plan when realized load strays 35% from the
    /// forecast). Hysteresis: below the threshold the current placement
    /// and forecast are kept, so noise does not churn the cluster.
    pub hysteresis: f64,
}

impl PlannerConfig {
    /// The default planner over `budget` instances: TP=2/4 and PP=2/4
    /// candidate cuts, ring interconnect, batch 8, beam 8, 1 s epochs,
    /// 35% hysteresis.
    pub fn new(budget: usize) -> Self {
        Self {
            budget: budget.max(1),
            strategies: vec![
                PartitionStrategy::Tensor { ways: 2 },
                PartitionStrategy::Tensor { ways: 4 },
                PartitionStrategy::Pipeline { stages: 2 },
                PartitionStrategy::Pipeline { stages: 4 },
            ],
            interconnect: Interconnect::default(),
            max_batch: 8,
            beam_width: 8,
            epoch_ms: 1_000.0,
            hysteresis: 0.35,
        }
    }

    /// Replaces the board fabric candidates are priced over.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Replaces the online re-planning knobs.
    pub fn with_replanning(mut self, epoch_ms: f64, hysteresis: f64) -> Self {
        self.epoch_ms = epoch_ms.max(1.0);
        self.hysteresis = hysteresis.max(0.0);
        self
    }
}

/// One scored placement candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateScore {
    /// The placement scored.
    pub placement: Placement,
    /// Human-readable summary (`replicated x2`, `tp2 gang x1`, …).
    pub label: String,
    /// Residency-adjusted cluster capacity (requests/s).
    pub capacity_rps: f64,
    /// Mix-weighted projected request latency at the forecast load (ms).
    pub latency_ms: f64,
    /// Mix-weighted projected SLO attainment at the forecast load.
    pub slo_attainment: f64,
    /// Projected energy per request (J), capacity-weighted across unit
    /// types.
    pub joules_per_request: f64,
    /// Projected goodput (requests/s): served rate times attainment.
    pub goodput_rps: f64,
    /// The scalar the planner ranks by: projected goodput shaded by the
    /// latency-pressure tie-break.
    pub score: f64,
}

/// What one planning pass produced: the chosen placement and the scored
/// beam it won against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// The winning candidate.
    pub chosen: CandidateScore,
    /// The scored beam, best first (contains `chosen` at index 0).
    pub candidates: Vec<CandidateScore>,
}

/// Whether a gang under `strategy` is structurally and GSC-feasible for
/// every model of `mix` on `hw`:
///
/// * every model's parked-latent footprint fits the GSC (a member that
///   cannot even park one latent cannot take part in preemptive serving);
/// * a pipeline cut never has more stages than the model has transformer
///   blocks (an empty stage would idle a member every iteration);
/// * a tensor cut never has more ways than attention heads (ranks own
///   whole heads).
///
/// Weight working sets are *not* required to fit — partial residency is
/// exactly what the cost model prices.
pub fn gsc_feasible(hw: &HwConfig, mix: &WorkloadMix, strategy: PartitionStrategy) -> bool {
    let gsc = hw.gsc_bytes();
    let operand = hw.operand_bytes();
    mix.kinds().iter().all(|&kind| {
        let model = ModelConfig::for_kind(kind);
        if latent_state_bytes(&model, operand) as f64 > gsc {
            return false;
        }
        match strategy {
            PartitionStrategy::Replicated => true,
            PartitionStrategy::Tensor { ways } => (ways.max(1) as usize) <= model.paper.heads,
            PartitionStrategy::Pipeline { stages } => {
                (stages.max(1) as usize) <= model.paper.blocks
            }
        }
    })
}

/// Placement-invariant replica-side pricing of one mix model (computed
/// once per plan, shared by every candidate).
struct ReplicaProjection {
    /// Normalized traffic share.
    share: f64,
    /// The model's SLO in absolute terms (the cluster's SLO currency).
    slo_ms: f64,
    /// DDIM steps per generation (scales per-iteration contention terms).
    iterations: f64,
    /// (latency ms, energy mJ) of one steady-state full-batch generation.
    full: (f64, f64),
    /// Steady-state batch-1 generation latency (light-load tail).
    b1_ms: f64,
}

/// Per-strategy gang-side pricing of one mix model: the partition plan and
/// the *uncontended* generation costs (candidates add their own
/// concurrent-gang contention term).
struct GangProjection {
    /// The model's cut under the strategy.
    plan: PartitionPlan,
    /// (latency ms, energy mJ) of one full-batch gang generation.
    full: (f64, f64),
    /// Batch-1 gang generation latency.
    b1_ms: f64,
}

/// The offline placement optimizer. Construct with a [`PlannerConfig`] and
/// call [`Self::plan`]; the same planner object drives the cluster loop's
/// epoch re-planning when installed through
/// `ServeConfigBuilder::auto_placement`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlanner {
    /// The planner's knobs.
    pub config: PlannerConfig,
}

impl PlacementPlanner {
    /// A planner over `config`.
    pub fn new(config: PlannerConfig) -> Self {
        Self { config }
    }

    /// Every placement the budget admits: `r` replicas alone, and every
    /// `r` replicas + `g` gangs mix per candidate strategy. GSC-infeasible
    /// strategies are pruned before scoring.
    fn enumerate(&self, hw: &HwConfig, mix: &WorkloadMix) -> Vec<Placement> {
        let budget = self.config.budget.max(1);
        let mut out: Vec<Placement> = (1..=budget)
            .map(|r| Placement::replicated(r).with_interconnect(self.config.interconnect))
            .collect();
        for &strategy in &self.config.strategies {
            let degree = strategy.degree();
            if degree < 2 || degree > budget || !gsc_feasible(hw, mix, strategy) {
                continue;
            }
            for gangs in 1..=budget / degree {
                for replicas in 0..=budget - gangs * degree {
                    out.push(
                        Placement::mixed(replicas, gangs, strategy)
                            .with_interconnect(self.config.interconnect),
                    );
                }
            }
        }
        out
    }

    /// [`Self::plan`] with its wall-clock cost accumulated into `watch` —
    /// the self-metering hook the cluster loop wraps every offline pick
    /// and epoch re-score in, so run profiles can report how much of a
    /// run's wall time went to planner scoring.
    pub fn plan_timed(
        &self,
        hw: &HwConfig,
        mix: &WorkloadMix,
        forecast_rps: f64,
        cost: &mut CostModel,
        watch: &mut exion_telemetry::StopWatch,
    ) -> PlanOutcome {
        let t0 = std::time::Instant::now();
        let outcome = self.plan(hw, mix, forecast_rps, cost);
        watch.add(t0.elapsed());
        outcome
    }

    /// Plans a placement for `mix` at the forecast offered load on `hw`,
    /// pricing candidates through `cost`. Always returns a plan: if every
    /// gang strategy is infeasible the replicated candidates remain (a
    /// budget-wide replicated placement is always enumerable).
    pub fn plan(
        &self,
        hw: &HwConfig,
        mix: &WorkloadMix,
        forecast_rps: f64,
        cost: &mut CostModel,
    ) -> PlanOutcome {
        let placements = self.enumerate(hw, mix);
        // Placement-invariant pricing is hoisted out of the candidate
        // loop: the replica-side projections are identical for every
        // candidate, and the gang-side base costs depend only on the
        // strategy (the per-candidate concurrent-gang contention term is
        // applied on top, cheaply, in `score`).
        let replicas = self.replica_projections(hw, mix, cost);
        let strategies: Vec<PartitionStrategy> = {
            let mut out = Vec::new();
            for p in &placements {
                if p.gangs > 0 && !out.contains(&p.strategy) {
                    out.push(p.strategy);
                }
            }
            out
        };
        let gangs_by_strategy: Vec<(PartitionStrategy, Vec<GangProjection>)> = strategies
            .into_iter()
            .map(|s| (s, self.gang_projections(hw, mix, s, cost)))
            .collect();
        let mut candidates: Vec<CandidateScore> = placements
            .into_iter()
            .map(|p| {
                let gang_projs = gangs_by_strategy
                    .iter()
                    .find(|(s, _)| *s == p.strategy)
                    .map(|(_, g)| g.as_slice())
                    .unwrap_or(&[]);
                self.score(p, forecast_rps, &replicas, gang_projs)
            })
            .collect();
        // Deterministic total order: score, then capacity, then the label
        // (so equal-scoring candidates rank identically on every platform).
        candidates.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(b.capacity_rps.total_cmp(&a.capacity_rps))
                .then(a.label.cmp(&b.label))
        });
        candidates.truncate(self.config.beam_width.max(1));
        PlanOutcome {
            chosen: candidates[0].clone(),
            candidates,
        }
    }

    /// The placement-invariant replica-side projections of every mix
    /// model: traffic share, the SLO currency, and the steady-state
    /// (residency-adjusted) generation costs — computed once per plan.
    fn replica_projections(
        &self,
        hw: &HwConfig,
        mix: &WorkloadMix,
        cost: &mut CostModel,
    ) -> Vec<ReplicaProjection> {
        let batch = self.config.max_batch.max(1) as u64;
        let gsc = hw.gsc_bytes();
        let operand = hw.operand_bytes();
        let total_w: f64 = mix.entries.iter().map(|&(_, w, _)| w).sum();
        mix.entries
            .iter()
            .map(|&(kind, w, slo_mult)| {
                let model = ModelConfig::for_kind(kind);
                // The cluster's SLO currency: the warm replica service time.
                let slo_ms = slo_mult * cost.generation_latency_ms(&model, batch);
                let frac = partial_residency(gsc, model_weight_bytes(&model, operand) as f64);
                let full = cost.generation_cost_at_residency(&model, batch, frac);
                let b1 = cost.generation_cost_at_residency(&model, 1, frac);
                ReplicaProjection {
                    share: w / total_w.max(1e-12),
                    slo_ms,
                    iterations: model.iterations as f64,
                    full: (full.latency_ms, full.energy_mj),
                    b1_ms: b1.latency_ms,
                }
            })
            .collect()
    }

    /// The per-strategy gang-side projections of every mix model: the
    /// partition plan and the uncontended generation costs at each
    /// member's steady-state shard residency — computed once per
    /// (strategy, plan); candidates layer their own concurrent-gang
    /// contention on top in [`Self::score`].
    fn gang_projections(
        &self,
        hw: &HwConfig,
        mix: &WorkloadMix,
        strategy: PartitionStrategy,
        cost: &mut CostModel,
    ) -> Vec<GangProjection> {
        let batch = self.config.max_batch.max(1) as u64;
        let gsc = hw.gsc_bytes();
        let operand = hw.operand_bytes();
        mix.entries
            .iter()
            .map(|&(kind, _, _)| {
                let model = ModelConfig::for_kind(kind);
                let plan = PartitionPlan::new(&model, strategy, self.config.interconnect, operand);
                let member_frac = plan.min_member_residency(gsc);
                let full =
                    cost.gang_generation_cost_at_residency(&model, &plan, batch, member_frac, 1);
                let b1 = cost.gang_generation_cost_at_residency(&model, &plan, 1, member_frac, 1);
                GangProjection {
                    full: (full.latency_ms, full.energy_mj),
                    b1_ms: b1.latency_ms,
                    plan,
                }
            })
            .collect()
    }

    /// Scores one candidate placement against the forecast, using the
    /// hoisted projections (`gang_projs` is empty for replica-only
    /// candidates, and parallel to `replicas` otherwise).
    fn score(
        &self,
        placement: Placement,
        forecast_rps: f64,
        replicas: &[ReplicaProjection],
        gang_projs: &[GangProjection],
    ) -> CandidateScore {
        let batch = self.config.max_batch.max(1) as u64;
        let gangs = placement.gangs;
        // The only placement-dependent term of the gang generation costs:
        // concurrent gangs contending for the board fabric, paid once per
        // iteration.
        let gang_latency = |r: &ReplicaProjection, g: &GangProjection, base_ms: f64, b: u64| {
            base_ms
                + r.iterations
                    * (g.plan.collective_ms_contended(b, gangs) - g.plan.collective_ms(b))
        };

        // Mix-weighted unit seconds-per-request at the full batch, per
        // unit type (weighted harmonic mean, as in the cluster's capacity
        // estimate — but residency-adjusted).
        let replica_spr: f64 = replicas
            .iter()
            .map(|p| p.share * p.full.0 / 1000.0 / batch as f64)
            .sum();
        let gang_spr: f64 = replicas
            .iter()
            .zip(gang_projs)
            .map(|(r, g)| r.share * gang_latency(r, g, g.full.0, batch) / 1000.0 / batch as f64)
            .sum();
        let replica_cap = placement.replicas as f64 / replica_spr.max(1e-12);
        let gang_cap = if gangs > 0 {
            gangs as f64 / gang_spr.max(1e-12)
        } else {
            0.0
        };
        let capacity = replica_cap + gang_cap;
        let units = placement.units().max(1) as f64;
        let rho = forecast_rps / capacity.max(1e-12);
        let served = forecast_rps.min(capacity);
        // How full batches run at this load, for the service-latency term.
        let occupancy = ((rho * batch as f64).ceil() as u64).clamp(1, batch);
        let occ_frac = (occupancy as f64 / batch as f64).clamp(0.0, 1.0);

        // Capacity shares route traffic between unit types (the shared
        // queue feeds whichever unit frees up first).
        let replica_weight = replica_cap / capacity.max(1e-12);
        let gang_weight = gang_cap / capacity.max(1e-12);

        let mut latency_ms = 0.0;
        let mut attainment = 0.0;
        let mut pressure = 0.0;
        let mut energy_mj_per_req = 0.0;
        for (i, r) in replicas.iter().enumerate() {
            // Service latency at the load-implied occupancy, interpolated
            // between the batch-1 and full-batch generations per unit type.
            let svc_of = |b1: f64, full: f64| b1 + (full - b1) * occ_frac;
            let (gang_svc, gang_energy) = match gang_projs.get(i) {
                Some(g) if gangs > 0 => (
                    svc_of(
                        gang_latency(r, g, g.b1_ms, 1),
                        gang_latency(r, g, g.full.0, batch),
                    ),
                    g.full.1,
                ),
                _ => (0.0, 0.0),
            };
            let svc = replica_weight * svc_of(r.b1_ms, r.full.0) + gang_weight * gang_svc;
            // M/M/c-flavored wait, capped at the overload blow-up so the
            // projection stays monotone through the capacity wall (an
            // uncapped 1/(1−ρ) would price 98% load *worse* than 120%).
            let wait = if rho < 1.0 {
                (svc * rho / (units * (1.0 - rho))).min(svc * OVERLOAD_LATENCY_FACTOR)
            } else {
                svc * OVERLOAD_LATENCY_FACTOR
            };
            let latency = svc + wait;
            latency_ms += r.share * latency;
            attainment += r.share * (r.slo_ms / latency.max(1e-9)).min(1.0);
            pressure += r.share * (latency / r.slo_ms.max(1e-9)).min(1.0);
            energy_mj_per_req +=
                r.share * (replica_weight * r.full.1 + gang_weight * gang_energy) / batch as f64;
        }
        let goodput = served * attainment;
        CandidateScore {
            placement,
            label: placement.summary(),
            capacity_rps: capacity,
            latency_ms,
            slo_attainment: attainment,
            joules_per_request: energy_mj_per_req / 1000.0,
            goodput_rps: goodput,
            score: goodput * (1.0 - LATENCY_PRESSURE_WEIGHT * pressure),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;
    use exion_sim::perf::SimAblation;

    #[test]
    fn enumeration_respects_the_budget_and_prunes_infeasible_cuts() {
        let hw = HwConfig::exion4();
        let mix = WorkloadMix::text_to_video();
        let planner = PlacementPlanner::new(PlannerConfig::new(2));
        let candidates = planner.enumerate(&hw, &mix);
        assert!(!candidates.is_empty());
        for p in &candidates {
            assert!(p.total_instances() <= 2, "{} over budget", p.summary());
            assert!(p.units() >= 1);
        }
        // TP=4/PP=4 need four instances: pruned at budget 2.
        assert!(candidates.iter().all(|p| p.strategy.degree() <= 2));
        // A budget of 4 admits them (and mixed replica+gang splits).
        let wide = PlacementPlanner::new(PlannerConfig::new(4));
        let candidates = wide.enumerate(&hw, &mix);
        assert!(candidates
            .iter()
            .any(|p| p.strategy == PartitionStrategy::Tensor { ways: 4 }));
        assert!(
            candidates.iter().any(|p| p.replicas > 0 && p.gangs > 0),
            "mixed placements enumerated"
        );
    }

    #[test]
    fn infeasible_pipeline_cut_is_pruned() {
        let hw = HwConfig::exion4();
        // MLD has few transformer blocks; a 64-stage pipeline cannot give
        // every stage a block.
        let mix = WorkloadMix {
            entries: vec![(ModelKind::Mld, 1.0, 4.0)],
        };
        assert!(!gsc_feasible(
            &hw,
            &mix,
            PartitionStrategy::Pipeline { stages: 64 }
        ));
        assert!(gsc_feasible(
            &hw,
            &mix,
            PartitionStrategy::Pipeline { stages: 2 }
        ));
        assert!(gsc_feasible(&hw, &mix, PartitionStrategy::Replicated));
        let mut config = PlannerConfig::new(64);
        config.strategies = vec![PartitionStrategy::Pipeline { stages: 64 }];
        let planner = PlacementPlanner::new(config);
        let candidates = planner.enumerate(&hw, &mix);
        assert!(candidates
            .iter()
            .all(|p| p.strategy == PartitionStrategy::Replicated));
    }

    #[test]
    fn plan_is_deterministic_and_ranked() {
        let hw = HwConfig::exion4();
        let mix = WorkloadMix::text_to_video();
        let mut cost = CostModel::new(hw, SimAblation::All);
        let planner = PlacementPlanner::new(PlannerConfig::new(2));
        let a = planner.plan(&hw, &mix, 2.0, &mut cost);
        let b = planner.plan(&hw, &mix, 2.0, &mut cost);
        assert_eq!(a, b);
        assert_eq!(a.chosen, a.candidates[0]);
        for w in a.candidates.windows(2) {
            assert!(w[0].score >= w[1].score, "beam must be sorted");
        }
        for c in &a.candidates {
            assert!(c.capacity_rps > 0.0, "{}", c.label);
            assert!(c.latency_ms > 0.0, "{}", c.label);
            assert!((0.0..=1.0).contains(&c.slo_attainment), "{}", c.label);
        }
    }
}
