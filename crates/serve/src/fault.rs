//! Seeded fault injection: chaos plans, failure semantics, and the
//! checkpoint policy that bounds what a crash can destroy.
//!
//! A [`FaultPlan`] is a deterministic, serde-able list of failure events
//! the cluster loop schedules on its event calendar before the run
//! starts. Three failure kinds are modeled:
//!
//! - [`FaultKind::UnitCrash`] — a whole scheduling unit (a replica or an
//!   entire gang) dies and rejoins after a repair delay. In-flight
//!   latents on the unit are lost unless previously checkpointed to
//!   DRAM; lost requests become the `lost` terminal outcome, priced as
//!   SLO misses. The rejoined unit starts with a cold GSC, so recovery
//!   cost shows up as refill bytes.
//! - [`FaultKind::MemberLoss`] — one gang member dies. A gang missing a
//!   member stalls at its next iteration boundary: the surviving members
//!   cannot run a TP/PP iteration alone, so the whole unit's capacity is
//!   out until repair. Latents held on the dead member are lost;
//!   latents parked on surviving members are written back to DRAM (a
//!   priced transfer) and their requests stay queued with steps intact.
//! - [`FaultKind::LinkDegrade`] — the interconnect loses bandwidth for a
//!   window: every collective and migration transfer in the window pays
//!   the slowdown, and the window closes on its own.
//!
//! Plans come from three places: hand-built ([`FaultPlan::crash`] etc.),
//! seed-derived ([`FaultPlan::seeded`] draws MTBF-exponential crash
//! times from the same generator family as the arrival streams), or the
//! environment ([`FaultPlan::from_env_spec`] parses the
//! `EXION_SERVE_FAULTS` knob). Named presets mirror the policy/admission
//! registries via [`by_name`].
//!
//! An empty plan is the default and is free: it schedules nothing,
//! draws no randomness, and leaves every fixed-seed golden byte-identical.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::trace::exp_sample;

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Injection time (ms into the run).
    pub at_ms: f64,
    /// What fails.
    pub kind: FaultKind,
}

/// The failure kinds the injector models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A whole scheduling unit crashes and rejoins `repair_ms` later.
    ///
    /// `unit` is taken modulo the live fleet size at injection time, so
    /// one plan stays valid across re-plans that change the fleet shape.
    UnitCrash {
        /// Target scheduling unit (modulo fleet size at fire time).
        unit: usize,
        /// Repair delay before the unit rejoins (ms).
        repair_ms: f64,
    },
    /// One gang member dies; the whole gang stalls until repair.
    ///
    /// On a replica unit (gang of one) this is equivalent to
    /// [`FaultKind::UnitCrash`].
    MemberLoss {
        /// Target scheduling unit (modulo fleet size at fire time).
        unit: usize,
        /// Member slot within the gang (modulo gang width).
        member: usize,
        /// Repair delay before the unit rejoins (ms).
        repair_ms: f64,
    },
    /// The interconnect loses bandwidth for a window.
    LinkDegrade {
        /// Bandwidth divisor while degraded (e.g. `4.0` = quarter speed).
        slowdown: f64,
        /// Window length (ms); the link restores itself afterwards.
        duration_ms: f64,
    },
}

impl FaultKind {
    /// Short label for telemetry instants and fault records.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::UnitCrash { .. } => "unit-crash",
            FaultKind::MemberLoss { .. } => "member-loss",
            FaultKind::LinkDegrade { .. } => "link-degrade",
        }
    }
}

/// Opt-in periodic latent checkpointing: every `every_steps` completed
/// denoising steps, each running request's latent is spilled to DRAM (a
/// priced transfer on its unit's clock). A crash then loses only the
/// steps since the last checkpoint instead of the whole generation: the
/// request requeues with `steps_done` rolled back to the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Checkpoint cadence in denoising steps (≥ 1).
    pub every_steps: usize,
}

impl CheckpointPolicy {
    /// Checkpoint every `every_steps` completed steps.
    pub fn every(every_steps: usize) -> Self {
        CheckpointPolicy { every_steps }
    }
}

/// A deterministic schedule of failures for one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled failures, in any order (the calendar sorts them).
    pub events: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The no-fault plan (the default): schedules nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a whole-unit crash at `at_ms`, repaired `repair_ms` later.
    pub fn crash(mut self, at_ms: f64, unit: usize, repair_ms: f64) -> Self {
        self.events.push(FaultSpec {
            at_ms,
            kind: FaultKind::UnitCrash { unit, repair_ms },
        });
        self
    }

    /// Adds a single-member loss at `at_ms`, repaired `repair_ms` later.
    pub fn member_loss(mut self, at_ms: f64, unit: usize, member: usize, repair_ms: f64) -> Self {
        self.events.push(FaultSpec {
            at_ms,
            kind: FaultKind::MemberLoss {
                unit,
                member,
                repair_ms,
            },
        });
        self
    }

    /// Adds an interconnect degradation window starting at `at_ms`.
    pub fn link_degrade(mut self, at_ms: f64, slowdown: f64, duration_ms: f64) -> Self {
        self.events.push(FaultSpec {
            at_ms,
            kind: FaultKind::LinkDegrade {
                slowdown,
                duration_ms,
            },
        });
        self
    }

    /// Seed-derived chaos: draws crash times from an exponential
    /// inter-failure distribution with mean `mtbf_ms` (the same inversion
    /// sampler as the arrival streams), rotating the target unit, until
    /// the horizon is exhausted or `max_faults` crashes are placed. Each
    /// crash repairs after `repair_ms`. Deterministic in `seed`.
    pub fn seeded(
        seed: u64,
        horizon_ms: f64,
        mtbf_ms: f64,
        repair_ms: f64,
        max_faults: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::empty();
        let mut t = 0.0;
        for _ in 0..max_faults {
            t += exp_sample(&mut rng, mtbf_ms.max(1e-9));
            if t >= horizon_ms {
                break;
            }
            // Spread targets across the fleet deterministically; the
            // cluster reduces modulo the live fleet size at fire time.
            let unit = rng.random_range(0usize..usize::MAX);
            plan = plan.crash(t, unit, repair_ms);
        }
        plan
    }

    /// Parses the `EXION_SERVE_FAULTS` environment spec: a
    /// comma-separated `key=value` list.
    ///
    /// Keys: `crashes=<n>` (number of seeded crashes, default 1),
    /// `seed=<u64>` (default 7), `mtbf_ms=<f64>` (mean time between
    /// failures, default `horizon_ms / (crashes + 1)`),
    /// `repair_ms=<f64>` (default `horizon_ms / 4`), `unit=<usize>` +
    /// `at_ms=<f64>` (a directed crash instead of seeded ones),
    /// `member=<usize>` (turn the directed crash into a member loss),
    /// `degrade=<f64>` + `degrade_ms=<f64>` (append a mid-horizon link
    /// degradation window with that slowdown). A bare preset name (see
    /// [`by_name`]) is also accepted.
    pub fn from_env_spec(spec: &str, horizon_ms: f64) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::empty());
        }
        if !spec.contains('=') {
            return by_name(spec, horizon_ms).ok_or_else(|| {
                format!("unknown fault preset {spec:?}; built-ins: {BUILTIN_FAULT_PLAN_NAMES:?}")
            });
        }
        let mut crashes: usize = 1;
        let mut seed: u64 = 7;
        let mut mtbf_ms: Option<f64> = None;
        let mut repair_ms: f64 = horizon_ms / 4.0;
        let mut unit: Option<usize> = None;
        let mut member: Option<usize> = None;
        let mut at_ms: Option<f64> = None;
        let mut degrade: Option<f64> = None;
        let mut degrade_ms: Option<f64> = None;
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {pair:?} is not key=value"))?;
            let bad = |k: &str| format!("fault spec {k}={value:?} is not a number");
            match key.trim() {
                "crashes" => crashes = value.parse().map_err(|_| bad("crashes"))?,
                "seed" => seed = value.parse().map_err(|_| bad("seed"))?,
                "mtbf_ms" => mtbf_ms = Some(value.parse().map_err(|_| bad("mtbf_ms"))?),
                "repair_ms" => repair_ms = value.parse().map_err(|_| bad("repair_ms"))?,
                "unit" => unit = Some(value.parse().map_err(|_| bad("unit"))?),
                "member" => member = Some(value.parse().map_err(|_| bad("member"))?),
                "at_ms" => at_ms = Some(value.parse().map_err(|_| bad("at_ms"))?),
                "degrade" => degrade = Some(value.parse().map_err(|_| bad("degrade"))?),
                "degrade_ms" => degrade_ms = Some(value.parse().map_err(|_| bad("degrade_ms"))?),
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        let mut plan = if let Some(u) = unit {
            let at = at_ms.unwrap_or(horizon_ms / 2.0);
            match member {
                Some(m) => FaultPlan::empty().member_loss(at, u, m, repair_ms),
                None => FaultPlan::empty().crash(at, u, repair_ms),
            }
        } else if crashes > 0 {
            let mtbf = mtbf_ms.unwrap_or(horizon_ms / (crashes as f64 + 1.0));
            FaultPlan::seeded(seed, horizon_ms, mtbf, repair_ms, crashes)
        } else {
            FaultPlan::empty()
        };
        if let Some(s) = degrade {
            let dur = degrade_ms.unwrap_or(horizon_ms / 4.0);
            plan = plan.link_degrade(horizon_ms / 2.0, s, dur);
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Checks the plan is well-formed: finite non-negative times, finite
    /// positive repair delays, slowdowns > 1, positive durations.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.at_ms.is_finite() || ev.at_ms < 0.0 {
                return Err(format!(
                    "fault {i}: at_ms {} is not finite and non-negative",
                    ev.at_ms
                ));
            }
            match ev.kind {
                FaultKind::UnitCrash { repair_ms, .. }
                | FaultKind::MemberLoss { repair_ms, .. } => {
                    if !repair_ms.is_finite() || repair_ms < 0.0 {
                        return Err(format!(
                            "fault {i}: repair_ms {repair_ms} is not finite and non-negative"
                        ));
                    }
                }
                FaultKind::LinkDegrade {
                    slowdown,
                    duration_ms,
                } => {
                    if !slowdown.is_finite() || slowdown <= 1.0 {
                        return Err(format!(
                            "fault {i}: slowdown {slowdown} must be finite and > 1"
                        ));
                    }
                    if !duration_ms.is_finite() || duration_ms <= 0.0 {
                        return Err(format!(
                            "fault {i}: duration_ms {duration_ms} must be finite and positive"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Built-in preset names accepted by [`by_name`] (and therefore by the
/// `EXION_SERVE_FAULTS` knob).
pub const BUILTIN_FAULT_PLAN_NAMES: [&str; 3] = ["midpoint-crash", "member-loss", "ring-degrade"];

/// Looks up a named fault-plan preset, scaled to `horizon_ms`:
///
/// - `"midpoint-crash"` — unit 0 crashes at the midpoint, repairs after a
///   quarter horizon.
/// - `"member-loss"` — unit 0 loses member 1 at the midpoint, repairs
///   after a quarter horizon.
/// - `"ring-degrade"` — the interconnect runs at quarter bandwidth for
///   the middle half of the horizon.
pub fn by_name(name: &str, horizon_ms: f64) -> Option<FaultPlan> {
    let h = horizon_ms;
    match name {
        "midpoint-crash" => Some(FaultPlan::empty().crash(h / 2.0, 0, h / 4.0)),
        "member-loss" => Some(FaultPlan::empty().member_loss(h / 2.0, 0, 1, h / 4.0)),
        "ring-degrade" => Some(FaultPlan::empty().link_degrade(h / 4.0, 4.0, h / 2.0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_free() {
        assert!(FaultPlan::empty().is_empty());
        assert_eq!(FaultPlan::empty(), FaultPlan::default());
        assert!(FaultPlan::empty().validate().is_ok());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(11, 4_000.0, 800.0, 500.0, 4);
        let b = FaultPlan::seeded(11, 4_000.0, 800.0, 500.0, 4);
        assert_eq!(a, b);
        assert!(a.events.len() <= 4);
        for ev in &a.events {
            assert!(ev.at_ms > 0.0 && ev.at_ms < 4_000.0);
            assert!(matches!(ev.kind, FaultKind::UnitCrash { .. }));
        }
        let c = FaultPlan::seeded(12, 4_000.0, 800.0, 500.0, 4);
        assert_ne!(a, c, "different seeds should move the crash times");
    }

    #[test]
    fn env_spec_round_trips() {
        let seeded = FaultPlan::from_env_spec("crashes=2,seed=5,repair_ms=300", 2_000.0).unwrap();
        assert!(seeded.events.len() <= 2);
        let directed = FaultPlan::from_env_spec("unit=1,at_ms=600,repair_ms=300", 2_000.0).unwrap();
        assert_eq!(
            directed.events,
            vec![FaultSpec {
                at_ms: 600.0,
                kind: FaultKind::UnitCrash {
                    unit: 1,
                    repair_ms: 300.0
                }
            }]
        );
        let member = FaultPlan::from_env_spec("unit=0,member=1,at_ms=600", 2_000.0).unwrap();
        assert!(matches!(
            member.events[0].kind,
            FaultKind::MemberLoss {
                unit: 0,
                member: 1,
                ..
            }
        ));
        let preset = FaultPlan::from_env_spec("midpoint-crash", 2_000.0).unwrap();
        assert_eq!(preset, by_name("midpoint-crash", 2_000.0).unwrap());
        assert!(FaultPlan::from_env_spec("bogus", 2_000.0).is_err());
        assert!(FaultPlan::from_env_spec("crashes=abc", 2_000.0).is_err());
        assert!(FaultPlan::from_env_spec("", 2_000.0).unwrap().is_empty());
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        assert!(FaultPlan::empty()
            .crash(f64::NAN, 0, 1.0)
            .validate()
            .is_err());
        assert!(FaultPlan::empty().crash(-1.0, 0, 1.0).validate().is_err());
        assert!(FaultPlan::empty()
            .link_degrade(10.0, 1.0, 5.0)
            .validate()
            .is_err());
        assert!(FaultPlan::empty()
            .link_degrade(10.0, 2.0, 0.0)
            .validate()
            .is_err());
        assert!(FaultPlan::empty()
            .member_loss(10.0, 0, 1, f64::INFINITY)
            .validate()
            .is_err());
    }
}
