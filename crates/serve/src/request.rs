//! Generation requests and their lifecycle records.

use exion_model::config::ModelKind;
use serde::{Deserialize, Serialize};

/// Monotone request identifier, assigned in arrival order.
pub type RequestId = u64;

/// One in-flight generation request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Identifier (also the arrival rank).
    pub id: RequestId,
    /// Which benchmark model the request targets.
    pub model: ModelKind,
    /// Arrival time (ms since simulation start).
    pub arrival_ms: f64,
    /// Latency SLO measured from arrival (ms).
    pub slo_ms: f64,
    /// Denoising steps the request needs in total (possibly reduced by a
    /// [`Self::degrade_to`] admission decision).
    pub total_steps: usize,
    /// The full DDIM step schedule the request originally asked for.
    pub full_steps: usize,
    /// Whether admission degraded the request to a reduced step budget.
    pub degraded: bool,
    /// Denoising steps already executed.
    pub steps_done: usize,
    /// When the request was first admitted into a running batch (ms);
    /// `None` while queued (or parked after a preemption, in which case
    /// the first-admission stamp is retained).
    pub admitted_ms: Option<f64>,
    /// Times the request was preempted (parked at an iteration boundary).
    pub preemptions: u32,
    /// Earliest time the request may (re-)enter a batch (ms): the arrival
    /// time for fresh requests, the park-completion time after a
    /// preemption. Keeps multi-instance admission causal — an instance
    /// whose clock trails the parking instance's cannot resume a request
    /// before it was parked.
    pub ready_ms: f64,
    /// The instance whose GSC holds this request's parked latent (`None`
    /// for fresh requests or DRAM-spilled parks). Resume-affinity hint:
    /// scheduling on the parking instance reloads the latent for free,
    /// anywhere else pays a DRAM migration read — so foreign instances
    /// deprioritize the request by exactly that cost.
    pub parked_on: Option<usize>,
    /// The step count of the request's last DRAM latent checkpoint
    /// (`None` = never checkpointed). Written by the opt-in periodic
    /// checkpoint policy; consulted only when a fault kills the unit
    /// holding the request — a checkpointed request requeues with
    /// `steps_done` rolled back to this count instead of being lost.
    pub checkpointed_steps: Option<usize>,
}

impl Request {
    /// A fresh queued request.
    pub fn new(
        id: RequestId,
        model: ModelKind,
        arrival_ms: f64,
        slo_ms: f64,
        total_steps: usize,
    ) -> Self {
        Self {
            id,
            model,
            arrival_ms,
            slo_ms,
            total_steps,
            full_steps: total_steps,
            degraded: false,
            steps_done: 0,
            admitted_ms: None,
            preemptions: 0,
            ready_ms: arrival_ms,
            parked_on: None,
            checkpointed_steps: None,
        }
    }

    /// Degrades the request to a reduced DDIM step budget (an admission
    /// [`crate::admission::AdmissionDecision::Degrade`] decision): the
    /// cheaper variant still meets the deadline at the cost of a lower
    /// quality tier. Clamped to `1..=full_steps`; a budget at or above the
    /// full schedule leaves the request untouched.
    pub fn degrade_to(&mut self, steps: usize) {
        let steps = steps.clamp(1, self.full_steps);
        if steps < self.full_steps {
            self.total_steps = steps;
            self.degraded = true;
        }
    }

    /// Absolute completion deadline (ms).
    pub fn deadline_ms(&self) -> f64 {
        self.arrival_ms + self.slo_ms
    }

    /// Remaining denoising steps.
    pub fn steps_left(&self) -> usize {
        self.total_steps.saturating_sub(self.steps_done)
    }

    /// Whether every denoising step has run.
    pub fn is_done(&self) -> bool {
        self.steps_done >= self.total_steps
    }
}

/// The immutable record of one finished request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Request identifier.
    pub id: RequestId,
    /// Benchmark model.
    pub model: ModelKind,
    /// Arrival time (ms).
    pub arrival_ms: f64,
    /// First admission into a batch (ms).
    pub admitted_ms: f64,
    /// Completion time (ms).
    pub finished_ms: f64,
    /// Latency SLO from arrival (ms).
    pub slo_ms: f64,
    /// Index of the hardware instance that completed the request.
    pub instance: usize,
    /// Times the request was preempted over its lifetime.
    pub preemptions: u32,
    /// DDIM steps the request executed (the degraded budget when admission
    /// reduced it, the full schedule otherwise).
    pub steps: usize,
    /// Whether admission degraded the request's step budget.
    pub degraded: bool,
}

impl Completion {
    /// End-to-end latency: queueing plus service (ms).
    pub fn latency_ms(&self) -> f64 {
        self.finished_ms - self.arrival_ms
    }

    /// Time spent queued before first admission (ms).
    pub fn queue_ms(&self) -> f64 {
        self.admitted_ms - self.arrival_ms
    }

    /// Whether the request met its SLO.
    pub fn within_slo(&self) -> bool {
        self.latency_ms() <= self.slo_ms
    }
}

/// The record of one request refused (shed) at enqueue by admission
/// control — the priced refusal: sheds count as SLO misses in the
/// report's attainment, they just never consume machine time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedRecord {
    /// Request identifier.
    pub id: RequestId,
    /// Benchmark model (per-class shed-rate accounting).
    pub model: ModelKind,
    /// When the refusal was issued (the decision instant — the releasing
    /// unit's clock, at or shortly after arrival; ms).
    pub at_ms: f64,
}

/// The record of one request destroyed by a fault: its latent lived on a
/// unit (or gang member) that died, and no DRAM checkpoint existed to
/// resume from. Lost requests are the third terminal outcome next to
/// completions and sheds — they count as SLO misses, and conservation
/// extends to `served + shed + lost == arrivals`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LostRecord {
    /// Request identifier.
    pub id: RequestId,
    /// Benchmark model (per-class lost-rate accounting).
    pub model: ModelKind,
    /// When the fault destroyed the request (ms).
    pub at_ms: f64,
    /// Denoising steps of progress destroyed with the latent.
    pub steps_lost: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_accessors() {
        let mut r = Request::new(3, ModelKind::Mld, 10.0, 40.0, 50);
        assert_eq!(r.deadline_ms(), 50.0);
        assert_eq!(r.steps_left(), 50);
        assert!(!r.is_done());
        r.steps_done = 50;
        assert!(r.is_done());
        assert_eq!(r.steps_left(), 0);
    }

    #[test]
    fn degrade_clamps_and_flags() {
        let mut r = Request::new(0, ModelKind::Mld, 0.0, 100.0, 50);
        r.degrade_to(60); // at/above the full schedule: untouched
        assert!(!r.degraded);
        assert_eq!(r.total_steps, 50);
        r.degrade_to(30);
        assert!(r.degraded);
        assert_eq!(r.total_steps, 30);
        assert_eq!(r.full_steps, 50);
        assert_eq!(r.steps_left(), 30);
        let mut floor = Request::new(1, ModelKind::Mld, 0.0, 100.0, 50);
        floor.degrade_to(0); // clamped to at least one step
        assert_eq!(floor.total_steps, 1);
        assert!(floor.degraded);
    }

    #[test]
    fn completion_latency_split() {
        let c = Completion {
            id: 1,
            model: ModelKind::Dit,
            arrival_ms: 5.0,
            admitted_ms: 9.0,
            finished_ms: 30.0,
            slo_ms: 26.0,
            instance: 0,
            preemptions: 0,
            steps: 50,
            degraded: false,
        };
        assert_eq!(c.latency_ms(), 25.0);
        assert_eq!(c.queue_ms(), 4.0);
        assert!(c.within_slo());
    }
}
