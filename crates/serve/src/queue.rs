//! The indexed shared request queue of the cluster scheduler.
//!
//! PR 7 made *time advance* O(log units); this module makes scheduling
//! *decisions* sub-linear too. A [`ReadyQueue`] keeps three synchronized
//! views of the waiting requests:
//!
//! * `entries` — a flat `Vec<Request>` that evolves through exactly the
//!   same `push` / `swap_remove` sequence the historical scheduler used,
//!   so every consumer that folds over the raw slice (admission-control
//!   backlog scans, telemetry lookups, reports) observes bit-identical
//!   state;
//! * per-model **fresh buckets** — `BTreeSet`s of `(ordering-key bits,
//!   id)` over the never-preempted requests (`steps_done == 0`). Fresh
//!   requests enter the queue only once admissible (the cluster releases
//!   an arrival when a unit clock passes it, and event time is
//!   non-decreasing), and they carry no resume-affinity penalty, so a
//!   bucket's ascending order *is* the policy's admission order on every
//!   unit and its first element is the bucket minimum — no visibility or
//!   penalty filtering needed;
//! * a **deferred list** — the ids of previously preempted requests
//!   (`steps_done > 0`), whose `ready_ms` visibility and per-unit
//!   migration-penalty shift genuinely vary by unit. The list is bounded
//!   by how many requests were ever simultaneously parked (a slice of the
//!   in-flight set, not of the backlog), so the scheduler scans it
//!   linearly.
//!
//! Float ordering keys are mapped to order-preserving `u64` bits
//! ([`key_bits`]), making the BTree order identical to the scheduler's
//! historical `(f64, u64)` `partial_cmp` order for the finite keys the
//! [`crate::policy::SchedulerPolicy::ordering_key`] contract requires.
//! The queue also maintains a [`BacklogIndex`] — per-model Fenwick trees
//! over queued DDIM steps in deadline order — so deadline-feasibility
//! admission projects its competing backlog in O(log n) per arrival
//! instead of rescanning the queue.

use std::collections::{BTreeSet, HashMap};

use exion_model::config::ModelKind;

use crate::request::Request;
use crate::scheduler::SchedContext;

/// Maps a finite ordering key to bits whose unsigned order equals the
/// float's `total_cmp` order (which agrees with `partial_cmp` for the
/// finite, non-NaN keys the policy contract requires, up to the
/// irrelevant `-0.0`/`+0.0` distinction).
#[inline]
pub fn key_bits(key: f64) -> u64 {
    let b = key.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// Inverse of [`key_bits`].
#[inline]
pub fn key_from_bits(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits ^ 0x8000_0000_0000_0000)
    } else {
        f64::from_bits(!bits)
    }
}

/// Where one queued request lives: its slot in the flat entry vector and
/// the cached ordering-key bits its bucket entry is filed under (cached so
/// removal — and the [`ReadyQueue::rekey`] hook — never depends on the
/// policy still returning the old key).
#[derive(Debug, Clone, Copy)]
struct SlotInfo {
    idx: usize,
    key: u64,
}

/// The shared scheduler queue, indexed for O(log n) decisions. See the
/// module docs for the invariants tying the three views together.
#[derive(Debug, Clone, Default)]
pub struct ReadyQueue {
    entries: Vec<Request>,
    slot_of: HashMap<u64, SlotInfo>,
    fresh: HashMap<ModelKind, BTreeSet<(u64, u64)>>,
    deferred: Vec<u64>,
    backlog: BacklogIndex,
    // Reusable scratch of the scheduler's boundary path (candidate keys,
    // removal slots, per-model seed minima): admit takes them, works, and
    // puts them back, so steady-state boundaries allocate nothing.
    pub(crate) scratch_keys: Vec<(f64, u64)>,
    pub(crate) scratch_slots: Vec<usize>,
    pub(crate) scratch_seed: Vec<(ModelKind, (f64, u64))>,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue holding `requests` in order (test/bench convenience).
    pub fn from_requests(requests: Vec<Request>, ctx: &SchedContext) -> Self {
        let mut q = Self::new();
        for r in requests {
            q.push(r, ctx);
        }
        q
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The flat entry slice, in the exact historical queue order.
    pub fn as_slice(&self) -> &[Request] {
        &self.entries
    }

    /// Iterates the waiting requests in flat-slice order.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.entries.iter()
    }

    /// The queued request of `id`, if any (O(1)).
    pub fn get(&self, id: u64) -> Option<&Request> {
        self.slot_of.get(&id).map(|s| &self.entries[s.idx])
    }

    /// The flat-slice slot of queued request `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not queued.
    pub(crate) fn slot(&self, id: u64) -> usize {
        self.slot_of.get(&id).expect("queued request id").idx
    }

    /// Enqueues `r`, filing it under its policy ordering key.
    ///
    /// Contract: a never-preempted request (`steps_done == 0`) may only be
    /// enqueued once admissible — `r.ready_ms` (its arrival) at or before
    /// every boundary clock that will observe the queue from now on. The
    /// cluster guarantees this by releasing arrivals in event-time order.
    pub fn push(&mut self, r: Request, ctx: &SchedContext) {
        let key = key_bits(ctx.policy.ordering_key(&r).0);
        let idx = self.entries.len();
        let prev = self.slot_of.insert(r.id, SlotInfo { idx, key });
        debug_assert!(prev.is_none(), "request {} enqueued twice", r.id);
        if r.steps_done == 0 {
            self.fresh.entry(r.model).or_default().insert((key, r.id));
        } else {
            self.deferred.push(r.id);
        }
        self.backlog.enqueue(&r);
        self.entries.push(r);
    }

    /// Removes and returns the request in flat slot `slot`, preserving the
    /// historical `swap_remove` slot evolution.
    pub(crate) fn take_slot(&mut self, slot: usize, _ctx: &SchedContext) -> Request {
        let r = self.entries.swap_remove(slot);
        let info = self
            .slot_of
            .remove(&r.id)
            .expect("every entry has a slot record");
        debug_assert_eq!(info.idx, slot, "slot map out of sync");
        if let Some(moved) = self.entries.get(slot) {
            self.slot_of
                .get_mut(&moved.id)
                .expect("moved entry has a slot record")
                .idx = slot;
        }
        if r.steps_done == 0 {
            let bucket = self
                .fresh
                .get_mut(&r.model)
                .expect("fresh entries have a bucket");
            let removed = bucket.remove(&(info.key, r.id));
            debug_assert!(removed, "fresh entry filed under its cached key");
        } else {
            let pos = self
                .deferred
                .iter()
                .position(|&id| id == r.id)
                .expect("deferred entries are listed");
            self.deferred.swap_remove(pos);
        }
        self.backlog.dequeue(&r);
        r
    }

    /// Removes and returns the queued request `id` (test convenience).
    pub fn remove_by_id(&mut self, id: u64, ctx: &SchedContext) -> Option<Request> {
        let slot = self.slot_of.get(&id)?.idx;
        Some(self.take_slot(slot, ctx))
    }

    /// The "key changed" hook of the
    /// [`crate::policy::SchedulerPolicy::ordering_key`] contract: re-files
    /// `id` under its current ordering key after an in-place mutation
    /// changed it. The built-in policies key on arrival/deadline, which
    /// never change while queued, so the cluster never needs this — it
    /// exists for custom policies with mutable keys.
    pub fn rekey(&mut self, id: u64, ctx: &SchedContext) {
        let Some(info) = self.slot_of.get(&id).copied() else {
            return;
        };
        let r = &self.entries[info.idx];
        let key = key_bits(ctx.policy.ordering_key(r).0);
        if key == info.key {
            return;
        }
        if r.steps_done == 0 {
            let bucket = self
                .fresh
                .get_mut(&r.model)
                .expect("fresh entries have a bucket");
            bucket.remove(&(info.key, id));
            bucket.insert((key, id));
        }
        self.slot_of.get_mut(&id).expect("checked above").key = key;
    }

    /// Clears the resume-affinity hint of queued request `id` (its parked
    /// latent was evicted to DRAM, so no unit is preferable anymore).
    pub(crate) fn clear_parked_hint(&mut self, id: u64) {
        if let Some(info) = self.slot_of.get(&id) {
            self.entries[info.idx].parked_on = None;
        }
    }

    /// Takes every queued request's resume-affinity hint, appending
    /// `(id, home instance)` pairs to `out` — the epoch-migration teardown
    /// that both clears the hints and tells the cluster which latent
    /// copies to discard.
    pub(crate) fn take_parked_homes(&mut self, out: &mut Vec<(u64, usize)>) {
        for r in &mut self.entries {
            if let Some(home) = r.parked_on.take() {
                out.push((r.id, home));
            }
        }
    }

    /// Per-model fresh buckets (ascending ordering-key order). Buckets may
    /// be empty once drained; callers skip those naturally via `first()`.
    pub(crate) fn fresh_buckets(&self) -> impl Iterator<Item = (ModelKind, &BTreeSet<(u64, u64)>)> {
        self.fresh.iter().map(|(&k, v)| (k, v))
    }

    /// The fresh bucket of `model`, if any requests of it ever queued.
    pub(crate) fn fresh_bucket(&self, model: ModelKind) -> Option<&BTreeSet<(u64, u64)>> {
        self.fresh.get(&model)
    }

    /// Ids of the previously preempted (visibility- and penalty-carrying)
    /// requests, in no particular order.
    pub(crate) fn deferred_ids(&self) -> &[u64] {
        &self.deferred
    }

    /// Earliest `ready_ms` among the deferred requests (`+inf` when none).
    /// Fresh requests are admissible by construction, so when a unit goes
    /// idle with work still queued, the deferred minimum *is* the queue
    /// minimum — the idle-wake scan the cluster used to fold over the
    /// whole queue.
    pub(crate) fn min_deferred_ready_ms(&self) -> f64 {
        self.deferred
            .iter()
            .map(|id| self.entries[self.slot(*id)].ready_ms)
            .fold(f64::INFINITY, f64::min)
    }

    /// The incremental deadline-backlog projection over the queued set.
    pub fn backlog(&self) -> &BacklogIndex {
        &self.backlog
    }

    /// Invariant sweep (tests and debug asserts): every id filed exactly
    /// once, every fresh entry under its current key, slots in sync.
    #[cfg_attr(not(any(test, debug_assertions)), allow(dead_code))]
    pub(crate) fn debug_check(&self, ctx: &SchedContext) {
        assert_eq!(self.entries.len(), self.slot_of.len());
        let filed: usize = self.fresh.values().map(|b| b.len()).sum();
        assert_eq!(filed + self.deferred.len(), self.entries.len());
        for (idx, r) in self.entries.iter().enumerate() {
            let info = self.slot_of[&r.id];
            assert_eq!(info.idx, idx);
            if r.steps_done == 0 {
                assert_eq!(info.key, key_bits(ctx.policy.ordering_key(r).0));
                assert!(self.fresh[&r.model].contains(&(info.key, r.id)));
            } else {
                assert!(self.deferred.contains(&r.id));
            }
        }
    }
}

impl std::ops::Index<usize> for ReadyQueue {
    type Output = Request;

    fn index(&self, idx: usize) -> &Request {
        &self.entries[idx]
    }
}

impl<'a> IntoIterator for &'a ReadyQueue {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Incremental deadline-ordered backlog projection: per model, a Fenwick
/// tree over queued DDIM steps in deadline order, updated O(log n) per
/// enqueue/dequeue. [`crate::admission::AdmissionView::competing_backlog_ms`]
/// answers "how many queued steps compete with a deadline-`d` arrival"
/// as a prefix sum instead of rescanning the queue.
///
/// Deadlines of a model arrive non-decreasing in real traces (per-kind
/// SLO scaling over non-decreasing arrival times), so positions are
/// append-only; if a caller ever enqueues out of deadline order the
/// model's index marks itself non-monotone and queries decline
/// (`None`), letting the view fall back to the exact scan.
#[derive(Debug, Clone, Default)]
pub struct BacklogIndex {
    models: Vec<ModelBacklog>,
}

#[derive(Debug, Clone)]
struct ModelBacklog {
    kind: ModelKind,
    /// Deadline per position, in first-enqueue order.
    deadlines: Vec<f64>,
    /// Fenwick tree (1-based) over currently queued steps per position.
    tree: Vec<u64>,
    /// Request id -> 1-based Fenwick position.
    position: HashMap<u64, usize>,
    monotone: bool,
}

impl ModelBacklog {
    fn new(kind: ModelKind) -> Self {
        Self {
            kind,
            deadlines: Vec::new(),
            tree: Vec::new(),
            position: HashMap::new(),
            monotone: true,
        }
    }

    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i - 1];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        while i <= self.tree.len() {
            self.tree[i - 1] = (self.tree[i - 1] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Appends a new position holding `steps`, seeding the Fenwick node
    /// that covers it with the range sum it is responsible for.
    fn append(&mut self, deadline: f64, steps: u64) -> usize {
        let i = self.tree.len() + 1;
        if let Some(&last) = self.deadlines.last() {
            if deadline < last {
                self.monotone = false;
            }
        }
        self.deadlines.push(deadline);
        let lower = i - (i & i.wrapping_neg());
        let node = self.prefix(i - 1) - self.prefix(lower) + steps;
        self.tree.push(node);
        i
    }
}

impl BacklogIndex {
    fn model_mut(&mut self, kind: ModelKind) -> &mut ModelBacklog {
        if let Some(i) = self.models.iter().position(|m| m.kind == kind) {
            &mut self.models[i]
        } else {
            self.models.push(ModelBacklog::new(kind));
            self.models.last_mut().expect("just pushed")
        }
    }

    fn enqueue(&mut self, r: &Request) {
        let steps = r.steps_left() as u64;
        let deadline = r.deadline_ms();
        let id = r.id;
        let m = self.model_mut(r.model);
        match m.position.get(&id) {
            Some(&pos) => m.add(pos, steps as i64),
            None => {
                let pos = m.append(deadline, steps);
                m.position.insert(id, pos);
            }
        }
    }

    fn dequeue(&mut self, r: &Request) {
        let steps = r.steps_left() as u64;
        let m = self.model_mut(r.model);
        let pos = *m.position.get(&r.id).expect("dequeued requests enqueued");
        m.add(pos, -(steps as i64));
    }

    /// Queued steps of `kind` with deadline at or before `deadline_ms`,
    /// or `None` when the model's deadlines were not enqueued in order
    /// (callers fall back to the exact scan).
    pub fn queued_steps_through(&self, kind: ModelKind, deadline_ms: f64) -> Option<u64> {
        match self.models.iter().find(|m| m.kind == kind) {
            None => Some(0),
            Some(m) if !m.monotone => None,
            Some(m) => {
                let hi = m.deadlines.partition_point(|d| *d <= deadline_ms);
                Some(m.prefix(hi))
            }
        }
    }

    /// The per-model queued-step sums competing with a deadline-`d`
    /// arrival, in deterministic first-enqueue model order, or `None`
    /// when any model's index declined (non-monotone deadlines).
    pub fn competing_steps(
        &self,
        deadline_ms: f64,
        mut per_model: impl FnMut(ModelKind, u64),
    ) -> Option<()> {
        for m in &self.models {
            if !m.monotone {
                return None;
            }
            let hi = m.deadlines.partition_point(|d| *d <= deadline_ms);
            per_model(m.kind, m.prefix(hi));
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::policy::Edf;
    use exion_model::config::ModelConfig;
    use exion_sim::config::HwConfig;
    use exion_sim::partition::Interconnect;
    use exion_sim::perf::SimAblation;
    use std::sync::Arc;

    fn ctx() -> SchedContext {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        SchedContext::build(
            Arc::new(Edf),
            8,
            &[ModelKind::Mld, ModelKind::Mdm],
            &mut cost,
            Interconnect::default(),
            |k| ModelConfig::for_kind(k).shrunk(1, 12),
            |_| None,
        )
    }

    #[test]
    fn key_bits_preserve_order() {
        let keys = [
            f64::NEG_INFINITY,
            -1e300,
            -3.5,
            -0.0,
            0.0,
            1e-300,
            2.25,
            7.0e12,
            f64::INFINITY,
        ];
        for w in keys.windows(2) {
            assert!(key_bits(w[0]) <= key_bits(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &k in &keys {
            assert_eq!(
                key_from_bits(key_bits(k)).total_cmp(&k),
                std::cmp::Ordering::Equal
            );
        }
    }

    #[test]
    fn push_take_keeps_views_in_sync() {
        let ctx = ctx();
        let mut q = ReadyQueue::new();
        for i in 0..6u64 {
            let kind = if i % 2 == 0 {
                ModelKind::Mld
            } else {
                ModelKind::Mdm
            };
            let mut r = Request::new(i, kind, i as f64, 100.0 + i as f64, 12);
            if i >= 4 {
                r.steps_done = 3; // deferred class
            }
            q.push(r, &ctx);
        }
        assert_eq!(q.len(), 6);
        assert_eq!(q.deferred_ids().len(), 2);
        assert_eq!(q.get(3).map(|r| r.model), Some(ModelKind::Mdm));
        // EDF bucket order: ascending deadline within the model.
        let mld: Vec<u64> = q
            .fresh_bucket(ModelKind::Mld)
            .expect("bucket")
            .iter()
            .map(|&(_, id)| id)
            .collect();
        assert_eq!(mld, vec![0, 2]);
        // swap_remove semantics on the flat slice.
        let r = q.take_slot(0, &ctx);
        assert_eq!(r.id, 0);
        assert_eq!(q[0].id, 5, "last entry swapped into the hole");
        assert_eq!(q.slot(5), 0);
        q.debug_check(&ctx);
        let r = q.remove_by_id(4, &ctx).expect("queued");
        assert_eq!(r.id, 4);
        assert_eq!(q.deferred_ids(), &[5]);
        q.debug_check(&ctx);
    }

    #[test]
    fn backlog_prefix_matches_scan() {
        let ctx = ctx();
        let mut q = ReadyQueue::new();
        for i in 0..32u64 {
            let kind = if i % 3 == 0 {
                ModelKind::Mdm
            } else {
                ModelKind::Mld
            };
            q.push(
                Request::new(i, kind, i as f64, 50.0 + 2.0 * i as f64, 12),
                &ctx,
            );
        }
        // Dequeue a few to exercise removals.
        for id in [0u64, 7, 20] {
            q.remove_by_id(id, &ctx).expect("queued");
        }
        for d in [0.0, 60.0, 77.0, 1e9] {
            for kind in [ModelKind::Mld, ModelKind::Mdm] {
                let scan: u64 = q
                    .iter()
                    .filter(|r| r.model == kind && r.deadline_ms() <= d)
                    .map(|r| r.steps_left() as u64)
                    .sum();
                assert_eq!(
                    q.backlog().queued_steps_through(kind, d),
                    Some(scan),
                    "kind {kind:?} deadline {d}"
                );
            }
        }
    }

    #[test]
    fn backlog_declines_on_non_monotone_deadlines() {
        let ctx = ctx();
        let mut q = ReadyQueue::new();
        q.push(Request::new(0, ModelKind::Mld, 0.0, 100.0, 12), &ctx);
        q.push(Request::new(1, ModelKind::Mld, 0.0, 50.0, 12), &ctx);
        assert_eq!(
            q.backlog().queued_steps_through(ModelKind::Mld, 1e9),
            None,
            "out-of-order deadlines must fall back to the scan"
        );
        assert_eq!(
            q.backlog().queued_steps_through(ModelKind::Mdm, 1e9),
            Some(0)
        );
    }

    #[test]
    fn rekey_refiles_under_the_new_key() {
        let ctx = ctx();
        let mut q = ReadyQueue::new();
        q.push(Request::new(0, ModelKind::Mld, 0.0, 100.0, 12), &ctx);
        q.push(Request::new(1, ModelKind::Mld, 0.0, 200.0, 12), &ctx);
        let first = |q: &ReadyQueue| {
            q.fresh_bucket(ModelKind::Mld)
                .and_then(|b| b.iter().next().map(|&(_, id)| id))
        };
        assert_eq!(first(&q), Some(0));
        // Mutate the key in place (tests only — slo_ms moves the EDF
        // deadline), then notify the queue.
        let slot = q.slot(0);
        q.entries[slot].slo_ms = 500.0;
        q.rekey(0, &ctx);
        assert_eq!(first(&q), Some(1));
        q.debug_check(&ctx);
    }
}
