//! # exion-serve
//!
//! Request-level serving simulation over the EXION accelerator: the layer
//! between the cycle-level simulator (one inference at a fixed batch) and
//! the ROADMAP's production-scale north star (heavy traffic from millions of
//! users).
//!
//! The subsystem models the full request path:
//!
//! * [`trace`] — deterministic, seeded arrival streams (Poisson steady
//!   state, two-state bursty MMPP, diurnal ramp) over weighted model mixes
//!   of the `exion-model` zoo;
//! * [`admission`] — the enqueue-time half of the pluggable control plane:
//!   an [`AdmissionController`] may accept an arrival, *shed* it (a priced
//!   refusal counted as an SLO miss), or *degrade* it to a reduced DDIM
//!   step budget that still meets the deadline — so goodput saturates at
//!   the knee instead of collapsing past it ([`DeadlineFeasibility`]);
//! * [`scheduler`] / [`cluster`] — a continuous batcher that exploits the
//!   iterative structure of DDIM denoising: requests join and leave running
//!   batches at *iteration boundaries* rather than waiting for a full batch
//!   drain, across one or more hardware instances; each instance carries a
//!   byte-accounted [`exion_sim::residency::GscCache`] of weight shards and
//!   parked request latents, and idle instances seed the tenant whose
//!   refill-adjusted urgency wins (residency-aware routing, with a
//!   resume-affinity hint that steers parked requests back to the unit
//!   still holding their latent);
//! * [`placement`] — groups instances into whole-model replicas and
//!   tensor/pipeline-parallel *gangs* ([`exion_sim::partition`]): a gang
//!   serves models whose weight working set exceeds one instance's GSC by
//!   giving each member its own shard (and shard-granular residency),
//!   advancing a sharded batch only when every member is done and pricing
//!   the interconnect collectives; preempted latents park on the gang's
//!   least-GSC-pressured member, spreading pressure off the leader;
//! * [`planner`] — the placement planner: an offline optimizer that turns
//!   (model mix, load forecast, hardware, instance budget) into a
//!   [`Placement`] by enumerating replica/TP/PP candidates, pruning
//!   GSC-infeasible cuts, and scoring residency-adjusted capacity and
//!   projected SLO attainment over the topology-aware interconnect model
//!   (ring vs all-to-all, with link contention between concurrent gangs);
//!   installed through `ServeConfigBuilder::auto_placement` it also
//!   re-plans online at epoch boundaries, executing priced migrations when
//!   realized load diverges past its hysteresis threshold;
//! * [`fault`] — seeded fault injection: a [`FaultPlan`] schedules
//!   instance crashes, gang-member losses, and interconnect degradations
//!   as first-class calendar events; a gang missing a member stalls,
//!   in-flight latents on dead hardware are *lost* (a third terminal
//!   outcome priced as an SLO miss, with conservation extended to
//!   `served + shed + lost == arrivals`) unless an opt-in periodic
//!   checkpoint policy spilled them to DRAM, the planner re-places around
//!   the reduced fleet out of cadence, and recovery rejoins capacity
//!   after a repair delay — all summarized in a [`FaultReport`];
//! * [`policy`] — the scheduling half of the control plane: a
//!   [`SchedulerPolicy`] trait object decides admission ordering,
//!   batch-join gating, and preemption against a read-only
//!   [`SchedSnapshot`]; FCFS, SLO-aware EDF, *preemptive* EDF, and the
//!   sparsity-aware phase-aligning policy ship as named implementations
//!   behind a [`PolicyRegistry`];
//! * [`cost`] — memoized per-iteration pricing through
//!   [`exion_sim::simulate_iteration`]: each iteration is priced by the
//!   *fraction* of the model's weight working set GSC-resident (partial
//!   refills, not a warm/cold flag), under the analytic sparsity profile or
//!   a measured override (`exion-bench::profiles`);
//! * [`metrics`] — p50/p95/p99 latency (from streaming log-bucketed
//!   histograms, no full-sample sort), goodput, SLO attainment,
//!   utilization, queue depth, joules per request, preemption counts,
//!   residency hit-rate, refill bytes, shed/degrade accounting, and
//!   fixed-cadence metric time-series ([`MetricsSnapshot`]);
//! * [`telemetry`] (re-export of `exion-telemetry`) — a pure-observer
//!   instrumentation plane: request-lifecycle spans and per-instance
//!   busy/idle/collective/refill/drain timeline slices are emitted through
//!   a [`Sink`] by [`ServeSimulator::run_traced`], exportable as Chrome
//!   trace-event JSON ([`chrome_trace_json`], loadable in Perfetto /
//!   `chrome://tracing`); a run with a sink attached produces a report
//!   identical to one without, and [`ServeSimulator::last_run_profile`]
//!   self-meters the wall-clock cost of every run;
//! * [`attribution`] — latency attribution and SLO forensics: every
//!   request accumulates a ten-phase [`PhaseBreakdown`] conserved to its
//!   end-to-end latency by construction, aggregated in
//!   [`ServeReport::attribution`][metrics::ServeReport::attribution] into
//!   per-phase distributions, dominant-phase bottlenecks, a five-way
//!   [`MissCause`] classification, and a worst-overshoot forensics
//!   digest — a pure observer (on by default; the simulation is
//!   byte-identical with it off) exportable as JSON via
//!   [`attribution_json`].
//!
//! # Example
//!
//! ```
//! use exion_serve::{ServeConfig, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix};
//! use exion_sim::config::HwConfig;
//!
//! let config = ServeConfig::builder(HwConfig::exion4())
//!     .policy_name("sparsity-aware")
//!     .admission_name("admit-all")
//!     .build();
//! let mut sim = ServeSimulator::new(config);
//! let report = sim.run(&TraceConfig {
//!     pattern: TrafficPattern::Poisson { rate_rps: 50.0 },
//!     horizon_ms: 500.0,
//!     seed: 7,
//!     mix: WorkloadMix::text_to_motion(),
//! });
//! assert_eq!(report.completed, report.arrivals);
//! assert!(report.latency.p99 >= report.latency.p50);
//! ```

pub mod admission;
pub mod attribution;
pub mod calendar;
pub mod cluster;
pub mod cost;
pub mod fault;
pub mod metrics;
pub mod placement;
pub mod planner;
pub mod policy;
pub mod queue;
mod registry;
pub mod request;
pub mod scheduler;
pub mod trace;

/// The instrumentation crate, re-exported so downstream users need not
/// depend on `exion-telemetry` directly.
pub use exion_telemetry as telemetry;

pub use admission::{
    AdmissionController, AdmissionDecision, AdmissionRegistry, AdmissionView, AdmitAll,
    DeadlineFeasibility,
};
pub use attribution::{
    attribution_json, AttributionReport, MissCause, MissRecord, ModelAttribution, Phase,
    PhaseBreakdown, RequestAttribution, RequestOutcome, PHASES,
};
pub use calendar::{Event, EventCalendar, EventKind};
pub use cluster::{RunProfile, ServeConfig, ServeConfigBuilder, ServeSimulator};
pub use cost::CostModel;
pub use exion_sim::partition::Topology;
pub use exion_sim::partition::{Interconnect, PartitionPlan, PartitionStrategy};
pub use exion_sim::residency::EvictionPolicy;
pub use exion_telemetry::{
    chrome_trace_json, LogHistogram, MemorySink, NullSink, RequestEvent, Sink, SliceKind,
    SpanRecord, TimelineSlice,
};
pub use fault::{CheckpointPolicy, FaultKind, FaultPlan, FaultSpec};
pub use metrics::{
    EpochStat, FaultRecord, FaultReport, GangStats, InstanceStats, LatencyStats, MetricSample,
    MetricsSnapshot, PlannerReport, ReplanEvent, ServeReport,
};
pub use placement::{Gang, Placement};
pub use planner::{gsc_feasible, CandidateScore, PlacementPlanner, PlanOutcome, PlannerConfig};
pub use policy::{
    Edf, Fcfs, PolicyKey, PolicyRegistry, PreemptiveEdf, SchedSnapshot, SchedulerPolicy,
    SparsityAware,
};
pub use queue::{BacklogIndex, ReadyQueue};
pub use request::{Completion, LostRecord, Request, RequestId, ShedRecord};
pub use scheduler::{AdmitOutcome, Instance, ModelInfo, SchedContext};
pub use trace::{Arrival, TraceConfig, TrafficPattern, WorkloadMix};
