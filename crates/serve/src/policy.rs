//! The scheduling half of the pluggable serving control plane.
//!
//! Scheduling behavior is no longer a closed enum with hard-coded branches
//! in the batcher: a [`SchedulerPolicy`] is a trait object that answers the
//! three questions continuous batching asks at every iteration boundary —
//! *in what order do queued requests admit* ([`SchedulerPolicy::admission_key`]),
//! *may new members join the running batch right now*
//! ([`SchedulerPolicy::admits_join`]), and *should the running batch yield
//! to a queued request* ([`SchedulerPolicy::preempt_for`] /
//! [`SchedulerPolicy::swap_for`]) — against a read-only [`SchedSnapshot`]
//! of the unit's state. The four historical policies (FCFS, EDF,
//! preemptive EDF, sparsity-aware) are ordinary implementations behind a
//! name [`PolicyRegistry`], so configs stay serde-able as policy *names*
//! while downstream crates plug in their own implementations without
//! touching the scheduler.

use std::fmt;
use std::sync::Arc;

use exion_model::config::ModelKind;

use crate::request::Request;

/// Admission-ordering key: smaller admits first. The second component is
/// the request id tie-break that keeps every ordering total and
/// deterministic.
pub type PolicyKey = (f64, u64);

/// A read-only view of one scheduling unit's state at an iteration
/// boundary — everything a [`SchedulerPolicy`] may base a decision on.
/// Policies never see the mutable scheduler internals (GSC, clocks,
/// counters); the batcher owns those and prices the mechanism (migration
/// penalties, thrash guards, latent parking) itself.
#[derive(Debug, Clone, Copy)]
pub struct SchedSnapshot<'a> {
    /// Instance id of the unit's leader.
    pub instance: usize,
    /// The unit's clock (ms).
    pub now_ms: f64,
    /// The model whose batch is running (sticky after drain).
    pub active_model: Option<ModelKind>,
    /// The running batch, in deterministic id order.
    pub running: &'a [Request],
    /// Maximum batch rows of the unit.
    pub max_batch: usize,
    /// Steps the running members sit past their last FFN-Reuse dense
    /// boundary (0 at a boundary or when idle).
    pub steps_into_period: usize,
}

impl SchedSnapshot<'_> {
    /// Free batch rows at this boundary.
    pub fn free_slots(&self) -> usize {
        self.max_batch.saturating_sub(self.running.len())
    }

    /// The tightest running deadline (`+inf` when idle): the bar a
    /// cross-model candidate must beat to justify parking the whole batch.
    pub fn earliest_running_deadline(&self) -> f64 {
        self.running
            .iter()
            .map(Request::deadline_ms)
            .fold(f64::INFINITY, f64::min)
    }

    /// The loosest running deadline (`-inf` when idle): the member a
    /// same-model candidate displaces in a full-batch swap.
    pub fn worst_running_deadline(&self) -> f64 {
        self.running
            .iter()
            .map(Request::deadline_ms)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A pluggable scheduling policy of the continuous batcher.
///
/// Implementations must be deterministic pure functions of their inputs:
/// the cluster event loop replays identically for a fixed trace, and the
/// test suite asserts bit-identical reports per seed.
pub trait SchedulerPolicy: fmt::Debug + Send + Sync {
    /// Registry/report name (e.g. `"edf"`).
    fn name(&self) -> &str;

    /// The *stable* admission-ordering key of `r`: smaller admits first,
    /// ties broken by the id component. This is the key the indexed
    /// scheduler queue precomputes and buckets requests under, so it must
    /// be a pure function of the request alone — finite, and immutable
    /// for as long as the request sits queued (arrival time and deadline
    /// qualify; anything depending on the unit's state does not — that
    /// belongs in [`Self::admission_key`]'s snapshot, or in the batcher's
    /// own migration-penalty shift). A policy whose key for a queued
    /// request *does* change must notify the queue through
    /// [`crate::queue::ReadyQueue::rekey`].
    fn ordering_key(&self, r: &Request) -> PolicyKey;

    /// Admission-ordering key of `r` on the unit `snap` describes. The
    /// default delegates to [`Self::ordering_key`]; overriding it with a
    /// snapshot-dependent key forfeits the indexed fast path's exactness,
    /// so overrides must keep it equal to `ordering_key` for queued
    /// ordering (the built-ins all use the default).
    fn admission_key(&self, r: &Request, _snap: &SchedSnapshot<'_>) -> PolicyKey {
        self.ordering_key(r)
    }

    /// Batch-join gating: whether new members may join the running batch
    /// at this boundary. The sparsity-aware policy closes the gate
    /// mid-period so co-batched requests stay phase-aligned; most policies
    /// leave it open.
    fn admits_join(&self, _snap: &SchedSnapshot<'_>) -> bool {
        true
    }

    /// Whether the policy may park running requests at iteration
    /// boundaries at all (cheap capability probe; the per-candidate
    /// decisions are [`Self::preempt_for`] and [`Self::swap_for`]).
    fn preemptive(&self) -> bool {
        false
    }

    /// Preemption decision: should the running batch be parked so the
    /// cross-model `candidate` can take the unit? The batcher only asks
    /// for visible candidates and additionally applies its deadline-
    /// feasibility thrash guard; the policy supplies the urgency rule.
    fn preempt_for(&self, _candidate: &Request, _snap: &SchedSnapshot<'_>) -> bool {
        false
    }

    /// Full-batch swap decision: should the worst running member yield its
    /// slot to the same-model `candidate`?
    fn swap_for(&self, _candidate: &Request, _snap: &SchedSnapshot<'_>) -> bool {
        false
    }

    /// Optional fast-path contract for [`Self::preempt_for`]: when this
    /// returns `Some(bound)`, the batcher assumes
    /// `preempt_for(r, snap) == (ordering_key(r).0 < bound)` for every
    /// queued `r`, letting it early-exit an ascending bucket scan at the
    /// first key at or past the bound instead of probing each candidate.
    /// Return `None` (the default) when no such threshold exists; the
    /// batcher then falls back to per-candidate probes.
    fn preempt_key_bound(&self, _snap: &SchedSnapshot<'_>) -> Option<f64> {
        None
    }

    /// Optional fast-path contract for [`Self::swap_for`], analogous to
    /// [`Self::preempt_key_bound`]:
    /// `swap_for(r, snap) == (ordering_key(r).0 < bound)`.
    fn swap_key_bound(&self, _snap: &SchedSnapshot<'_>) -> Option<f64> {
        None
    }
}

/// First-come-first-served on arrival time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedulerPolicy for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn ordering_key(&self, r: &Request) -> PolicyKey {
        (r.arrival_ms, r.id)
    }
}

/// SLO-aware earliest-deadline-first, non-preemptive: an urgent request
/// still waits for the running batch to drain before the unit can switch
/// models.
#[derive(Debug, Clone, Copy, Default)]
pub struct Edf;

impl SchedulerPolicy for Edf {
    fn name(&self) -> &str {
        "edf"
    }

    fn ordering_key(&self, r: &Request) -> PolicyKey {
        (r.deadline_ms(), r.id)
    }
}

/// EDF with iteration-boundary preemption: when a queued request's
/// deadline beats every running member's, the batcher parks the running
/// requests' denoising latents (GSC if they fit, DRAM at a priced
/// write-back otherwise) and switches immediately; a same-model request
/// beating the worst member swaps into a full batch. DDIM step counts are
/// conserved by construction — the counter travels with the request.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreemptiveEdf;

impl SchedulerPolicy for PreemptiveEdf {
    fn name(&self) -> &str {
        "preemptive-edf"
    }

    fn ordering_key(&self, r: &Request) -> PolicyKey {
        (r.deadline_ms(), r.id)
    }

    fn preemptive(&self) -> bool {
        true
    }

    fn preempt_for(&self, candidate: &Request, snap: &SchedSnapshot<'_>) -> bool {
        candidate.deadline_ms() < snap.earliest_running_deadline()
    }

    fn swap_for(&self, candidate: &Request, snap: &SchedSnapshot<'_>) -> bool {
        candidate.deadline_ms() < snap.worst_running_deadline()
    }

    fn preempt_key_bound(&self, snap: &SchedSnapshot<'_>) -> Option<f64> {
        Some(snap.earliest_running_deadline())
    }

    fn swap_key_bound(&self, snap: &SchedSnapshot<'_>) -> Option<f64> {
        Some(snap.worst_running_deadline())
    }
}

/// FCFS ordering, but admission into a non-empty batch waits for the
/// batch's FFN-Reuse dense boundary, so every member stays in the same
/// dense/sparse phase and sparse iterations are never forfeited to a
/// straggler.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparsityAware;

impl SchedulerPolicy for SparsityAware {
    fn name(&self) -> &str {
        "sparsity-aware"
    }

    fn ordering_key(&self, r: &Request) -> PolicyKey {
        (r.arrival_ms, r.id)
    }

    fn admits_join(&self, snap: &SchedSnapshot<'_>) -> bool {
        snap.steps_into_period == 0
    }
}

/// The built-in policy names, in presentation order (sweeps iterate this).
pub const BUILTIN_POLICY_NAMES: [&str; 4] = ["fcfs", "edf", "preemptive-edf", "sparsity-aware"];

/// A name-keyed registry of scheduling policies: the serde-able
/// configuration surface (configs carry policy *names*, the registry
/// resolves them to implementations) and the extension point downstream
/// crates register custom policies into. Registration order is iteration
/// order, and re-registering a name replaces the entry in place (the
/// semantics live in [`crate::registry::NamedRegistry`], shared with the
/// admission registry).
#[derive(Debug, Clone, Default)]
pub struct PolicyRegistry {
    inner: crate::registry::NamedRegistry<dyn SchedulerPolicy>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The registry holding the four built-in policies.
    pub fn builtin() -> Self {
        let mut reg = Self::empty();
        reg.register(Arc::new(Fcfs));
        reg.register(Arc::new(Edf));
        reg.register(Arc::new(PreemptiveEdf));
        reg.register(Arc::new(SparsityAware));
        reg
    }

    /// Registers `policy` under its own [`SchedulerPolicy::name`],
    /// replacing any previous entry of that name.
    pub fn register(&mut self, policy: Arc<dyn SchedulerPolicy>) {
        self.inner.register(policy.name().to_string(), policy);
    }

    /// Resolves `name` to its policy.
    pub fn get(&self, name: &str) -> Option<Arc<dyn SchedulerPolicy>> {
        self.inner.get(name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.inner.names()
    }

    /// Every registered policy, in registration order.
    pub fn all(&self) -> Vec<Arc<dyn SchedulerPolicy>> {
        self.inner.all()
    }
}

/// Resolves `name` against the built-in registry.
pub fn by_name(name: &str) -> Option<Arc<dyn SchedulerPolicy>> {
    PolicyRegistry::builtin().get(name)
}

/// The four built-in policies, in presentation order.
pub fn builtin_policies() -> Vec<Arc<dyn SchedulerPolicy>> {
    PolicyRegistry::builtin().all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;

    fn snap<'a>(running: &'a [Request], steps_into_period: usize) -> SchedSnapshot<'a> {
        SchedSnapshot {
            instance: 0,
            now_ms: 0.0,
            active_model: running.first().map(|r| r.model),
            running,
            max_batch: 8,
            steps_into_period,
        }
    }

    #[test]
    fn edf_orders_by_deadline_not_arrival() {
        let early_arrival = Request::new(0, ModelKind::Mld, 0.0, 100.0, 50);
        let urgent = Request::new(1, ModelKind::Mld, 10.0, 20.0, 50);
        let s = snap(&[], 0);
        assert!(Fcfs.admission_key(&early_arrival, &s) < Fcfs.admission_key(&urgent, &s));
        assert!(Edf.admission_key(&urgent, &s) < Edf.admission_key(&early_arrival, &s));
        assert_eq!(
            PreemptiveEdf.admission_key(&urgent, &s),
            Edf.admission_key(&urgent, &s)
        );
    }

    #[test]
    fn sparsity_aware_gates_on_boundary() {
        let batch = [Request::new(0, ModelKind::Mld, 0.0, 1e9, 50)];
        assert!(SparsityAware.admits_join(&snap(&batch, 0)));
        assert!(!SparsityAware.admits_join(&snap(&batch, 3)));
        assert!(Fcfs.admits_join(&snap(&batch, 3)));
        assert!(Edf.admits_join(&snap(&batch, 3)));
        assert!(PreemptiveEdf.admits_join(&snap(&batch, 3)));
    }

    #[test]
    fn only_preemptive_edf_preempts() {
        for p in builtin_policies() {
            assert_eq!(p.preemptive(), p.name() == "preemptive-edf", "{}", p.name());
        }
        let running = [Request::new(0, ModelKind::StableDiffusion, 0.0, 500.0, 50)];
        let urgent = Request::new(1, ModelKind::Mld, 1.0, 10.0, 50);
        let lax = Request::new(2, ModelKind::Mld, 1.0, 10_000.0, 50);
        let s = snap(&running, 0);
        assert!(PreemptiveEdf.preempt_for(&urgent, &s));
        assert!(!PreemptiveEdf.preempt_for(&lax, &s));
        assert!(!Edf.preempt_for(&urgent, &s));
        assert!(PreemptiveEdf.swap_for(&urgent, &s));
        assert!(!Fcfs.swap_for(&urgent, &s));
    }

    #[test]
    fn registry_resolves_builtin_names() {
        let reg = PolicyRegistry::builtin();
        assert_eq!(reg.names(), BUILTIN_POLICY_NAMES.to_vec());
        for name in BUILTIN_POLICY_NAMES {
            assert_eq!(reg.get(name).expect("builtin").name(), name);
            assert_eq!(by_name(name).expect("builtin").name(), name);
        }
        assert!(by_name("no-such-policy").is_none());
    }

    #[test]
    fn registry_replaces_same_name_and_keeps_order() {
        #[derive(Debug)]
        struct CustomFcfs;
        impl SchedulerPolicy for CustomFcfs {
            fn name(&self) -> &str {
                "fcfs"
            }
            fn ordering_key(&self, r: &Request) -> PolicyKey {
                (-r.arrival_ms, r.id)
            }
        }
        let mut reg = PolicyRegistry::builtin();
        reg.register(Arc::new(CustomFcfs));
        assert_eq!(reg.names(), BUILTIN_POLICY_NAMES.to_vec(), "order kept");
        let r = Request::new(3, ModelKind::Mld, 7.0, 100.0, 50);
        let s = snap(&[], 0);
        assert_eq!(
            reg.get("fcfs").expect("replaced").admission_key(&r, &s),
            (-7.0, 3)
        );
    }
}
