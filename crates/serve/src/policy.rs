//! Admission-ordering (and preemption) policies of the continuous batcher.

use serde::{Deserialize, Serialize};

use crate::request::Request;

/// How queued requests are ordered (and gated) for admission into running
/// batches at iteration boundaries — and whether the batcher may *preempt*
/// running requests at those boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First-come-first-served on arrival time.
    Fcfs,
    /// SLO-aware earliest-deadline-first, non-preemptive: an urgent request
    /// still waits for the running batch to drain before the instance can
    /// switch models.
    Edf,
    /// EDF with iteration-boundary preemption: when a queued request's
    /// deadline beats every running member's, the batcher parks the running
    /// requests' denoising latents in the GSC (or spills them to DRAM at a
    /// priced penalty) and switches immediately, resuming the parked
    /// requests later with their DDIM step counts conserved.
    PreemptiveEdf,
    /// FCFS ordering, but admission into a non-empty batch waits for the
    /// batch's FFN-Reuse dense boundary, so every member stays in the same
    /// dense/sparse phase and sparse iterations are never forfeited to a
    /// straggler.
    SparsityAware,
}

impl Policy {
    /// All policies in presentation order.
    pub const ALL: [Policy; 4] = [
        Policy::Fcfs,
        Policy::Edf,
        Policy::PreemptiveEdf,
        Policy::SparsityAware,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Edf => "edf",
            Policy::PreemptiveEdf => "preemptive-edf",
            Policy::SparsityAware => "sparsity-aware",
        }
    }

    /// Whether the policy may park running requests at iteration boundaries.
    pub fn preemptive(&self) -> bool {
        matches!(self, Policy::PreemptiveEdf)
    }

    /// Sort key: smaller is admitted first. The id tie-break keeps the
    /// ordering total and deterministic.
    pub(crate) fn key(&self, r: &Request) -> (f64, u64) {
        match self {
            Policy::Fcfs | Policy::SparsityAware => (r.arrival_ms, r.id),
            Policy::Edf | Policy::PreemptiveEdf => (r.deadline_ms(), r.id),
        }
    }

    /// Whether admission into a batch whose members sit `steps_into_period`
    /// steps past the last dense boundary is allowed.
    pub(crate) fn admits_mid_period(&self, steps_into_period: usize) -> bool {
        match self {
            Policy::Fcfs | Policy::Edf | Policy::PreemptiveEdf => true,
            Policy::SparsityAware => steps_into_period == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;

    #[test]
    fn edf_orders_by_deadline_not_arrival() {
        let early_arrival = Request::new(0, ModelKind::Mld, 0.0, 100.0, 50);
        let urgent = Request::new(1, ModelKind::Mld, 10.0, 20.0, 50);
        assert!(Policy::Fcfs.key(&early_arrival) < Policy::Fcfs.key(&urgent));
        assert!(Policy::Edf.key(&urgent) < Policy::Edf.key(&early_arrival));
        assert_eq!(Policy::PreemptiveEdf.key(&urgent), Policy::Edf.key(&urgent));
    }

    #[test]
    fn sparsity_aware_gates_on_boundary() {
        assert!(Policy::SparsityAware.admits_mid_period(0));
        assert!(!Policy::SparsityAware.admits_mid_period(3));
        assert!(Policy::Fcfs.admits_mid_period(3));
        assert!(Policy::Edf.admits_mid_period(3));
        assert!(Policy::PreemptiveEdf.admits_mid_period(3));
    }

    #[test]
    fn only_preemptive_edf_preempts() {
        for p in Policy::ALL {
            assert_eq!(p.preemptive(), p == Policy::PreemptiveEdf, "{}", p.name());
        }
    }
}
