//! The admission half of the pluggable serving control plane: load
//! shedding and quality degradation at enqueue time.
//!
//! Without admission control every arrival is eventually served, so past
//! the saturation knee queues grow without bound and *goodput collapses*:
//! completions still happen, but almost none inside their SLO. An
//! [`AdmissionController`] is consulted once per arrival — before the
//! request enters the shared queue — and may [`AdmissionDecision::Accept`]
//! it, [`AdmissionDecision::Shed`] it (a priced refusal: the shed counts
//! as an SLO miss in the report's attainment, it just never consumes
//! machine time), or [`AdmissionDecision::Degrade`] it to a reduced DDIM
//! step budget — a cheaper quality tier that still meets the deadline.
//! With [`DeadlineFeasibility`] installed, goodput *saturates* at the
//! knee instead of collapsing past it.
//!
//! Controllers are registered by name (see [`AdmissionRegistry`]), so
//! configs stay serde-able as controller names — `"admit-all"` and
//! `"deadline"` ship built in.

use std::fmt;
use std::sync::Arc;

use exion_model::config::ModelKind;

use crate::placement::Gang;
use crate::queue::BacklogIndex;
use crate::request::Request;
use crate::scheduler::SchedContext;

/// What admission control decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Enqueue the request untouched.
    Accept,
    /// Refuse the request outright: it never enters the queue. The
    /// refusal is priced — the report counts it as a definite SLO miss.
    Shed,
    /// Enqueue a cheaper variant limited to `steps` DDIM iterations (the
    /// quality-tier knob): clamped to `1..=full_steps` by
    /// [`Request::degrade_to`].
    Degrade {
        /// The reduced step budget.
        steps: usize,
    },
}

/// The read-only cluster view an [`AdmissionController`] decides against:
/// the shared queue, every unit's in-flight work, and the per-model
/// pricing constants of the scheduling context.
pub struct AdmissionView<'a> {
    /// The decision instant (ms): the clock of the unit releasing the
    /// arrival into the queue — at or shortly after the arrival time.
    now_ms: f64,
    queue: &'a [Request],
    units: &'a [Gang],
    ctx: &'a SchedContext,
    /// Incremental per-model backlog projection (Fenwick prefix sums over
    /// queued steps in deadline order), when the caller maintains one —
    /// turns the competing-backlog scan into an O(models × log queue)
    /// lookup. `None` (or a declined index) falls back to the exact scan.
    backlog: Option<&'a BacklogIndex>,
}

impl<'a> AdmissionView<'a> {
    pub(crate) fn new(
        now_ms: f64,
        queue: &'a [Request],
        units: &'a [Gang],
        ctx: &'a SchedContext,
    ) -> Self {
        Self {
            now_ms,
            queue,
            units,
            ctx,
            backlog: None,
        }
    }

    /// Attaches the caller's incrementally maintained [`BacklogIndex`] so
    /// deadline projections stop re-scanning the queue per arrival.
    pub(crate) fn with_index(mut self, backlog: &'a BacklogIndex) -> Self {
        self.backlog = Some(backlog);
        self
    }

    /// The instant the decision is made at (ms): the releasing unit's
    /// clock, up to one iteration past the arrival time.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Scheduling units (replicas + gangs) serving the queue.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Requests waiting in the shared queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Steady-state per-iteration latency of `kind` at the deployment's
    /// full batch size (ms) — the same service currency SLOs scale, so
    /// feasibility projections and deadlines stay consistent.
    pub fn batched_step_ms(&self, kind: ModelKind) -> f64 {
        self.ctx.info(kind).batched_step_ms
    }

    /// Total projected backlog (ms): the summed remaining work of every
    /// queued and running request at the full-batch amortized per-row
    /// rate, spread over the cluster's units. Deliberately simple — an
    /// M/M/c-style estimate, not a schedule simulation — so controllers
    /// stay O(queue) per arrival. Deadline-aware controllers use
    /// [`Self::competing_backlog_ms`] instead.
    pub fn backlog_ms(&self) -> f64 {
        let per_row = |r: &Request| {
            let info = self.ctx.info(r.model);
            r.steps_left() as f64 * info.batched_step_ms / self.ctx.max_batch.max(1) as f64
        };
        let queued: f64 = self.queue.iter().map(per_row).sum();
        let drains: f64 = self
            .units
            .iter()
            .map(|unit| {
                unit.leader()
                    .running
                    .iter()
                    .map(|r| r.steps_left() as f64 * self.ctx.info(r.model).batched_step_ms)
                    .fold(0.0, f64::max)
            })
            .sum();
        (queued + drains) / self.units.len().max(1) as f64
    }

    /// Like [`Self::backlog_ms`], but projecting the wait of an arrival of
    /// `kind` due at `deadline_ms` the way the continuous batcher will
    /// actually serve it:
    ///
    /// * only queued requests with earlier-or-equal deadlines compete —
    ///   under EDF a tight-deadline arrival jumps the lax backlog, so
    ///   charging it the *total* queue would shed feasible traffic;
    /// * a running batch's rows advance *concurrently*, so a unit's drain
    ///   is the slowest member's remaining schedule at the full-batch
    ///   iteration rate — not the summed rows — and the arrival only waits
    ///   for the *best* unit, not all of them;
    /// * a unit that is idle, or already running `kind` with a free batch
    ///   slot, can take the arrival at the next iteration boundary
    ///   (continuous batching joins mid-generation), so it contributes no
    ///   drain at all.
    pub fn competing_backlog_ms(&self, kind: ModelKind, deadline_ms: f64) -> f64 {
        let per_row = |r: &Request| {
            let info = self.ctx.info(r.model);
            r.steps_left() as f64 * info.batched_step_ms / self.ctx.max_batch.max(1) as f64
        };
        // With a backlog index attached, the competing work is a per-model
        // Fenwick prefix (the step counts are integers, so the per-model
        // sums are exact); without one — or if any model's deadlines
        // arrived out of order and its index declined — the exact scan.
        let indexed: Option<f64> = self.backlog.and_then(|idx| {
            let mut sum = 0.0;
            let max_batch = self.ctx.max_batch.max(1) as f64;
            idx.competing_steps(deadline_ms, |m, steps| {
                sum += steps as f64 * self.ctx.info(m).batched_step_ms / max_batch;
            })?;
            Some(sum)
        });
        let queued: f64 = indexed.unwrap_or_else(|| {
            self.queue
                .iter()
                .filter(|q| q.deadline_ms() <= deadline_ms)
                .map(per_row)
                .sum()
        });
        let best_drain = self
            .units
            .iter()
            .map(|unit| {
                let leader = unit.leader();
                let joinable = leader.is_idle()
                    || (leader.active_model == Some(kind)
                        && leader.running.len() < self.ctx.max_batch);
                if joinable {
                    0.0
                } else {
                    leader
                        .running
                        .iter()
                        .map(|r| r.steps_left() as f64 * self.ctx.info(r.model).batched_step_ms)
                        .fold(0.0, f64::max)
                }
            })
            .fold(f64::INFINITY, f64::min);
        let best_drain = if best_drain.is_finite() {
            best_drain
        } else {
            0.0
        };
        queued / self.units.len().max(1) as f64 + best_drain
    }
}

/// A pluggable admission controller, consulted once per arrival at
/// enqueue time. Implementations must be deterministic pure functions of
/// their inputs (the cluster replays identically for a fixed trace).
pub trait AdmissionController: fmt::Debug + Send + Sync {
    /// Registry/report name (e.g. `"deadline"`).
    fn name(&self) -> &str;

    /// The decision for arrival `r` given the cluster state `view`.
    fn decide(&self, r: &Request, view: &AdmissionView<'_>) -> AdmissionDecision;
}

/// Accept every arrival (the historical behavior): saturation shows up as
/// unbounded queueing delay and collapsing goodput rather than refusals.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionController for AdmitAll {
    fn name(&self) -> &str {
        "admit-all"
    }

    fn decide(&self, _r: &Request, _view: &AdmissionView<'_>) -> AdmissionDecision {
        AdmissionDecision::Accept
    }
}

/// Shed or degrade arrivals whose projected completion at the current
/// queue depth misses their SLO.
///
/// The projection prices the request's own service and the backlog ahead
/// of it at the full-batch steady-state rate (the same currency its SLO
/// was scaled from). When the full DDIM schedule cannot finish inside the
/// deadline, the controller first tries a *degraded* variant — the largest
/// step budget that still fits, as long as it keeps at least
/// [`Self::min_steps_frac`] of the schedule (quality floor) — and only
/// sheds when even the floor variant would miss.
///
/// The projection is an estimate, not a schedule simulation, and it is
/// deliberately conservative: during bursts it sheds a little traffic
/// that would have squeaked inside its SLO, costing a few percent of
/// goodput *below* the knee in exchange for a bounded tail — and past the
/// knee it is the difference between goodput saturating and collapsing
/// (see `serve_sweep::admission_comparison`).
#[derive(Debug, Clone, Copy)]
pub struct DeadlineFeasibility {
    /// Smallest fraction of the full DDIM schedule a degraded variant may
    /// run (the quality floor below which refusal beats degradation).
    pub min_steps_frac: f64,
}

impl Default for DeadlineFeasibility {
    fn default() -> Self {
        Self {
            min_steps_frac: 0.5,
        }
    }
}

impl AdmissionController for DeadlineFeasibility {
    fn name(&self) -> &str {
        "deadline"
    }

    fn decide(&self, r: &Request, view: &AdmissionView<'_>) -> AdmissionDecision {
        let step_ms = view.batched_step_ms(r.model);
        if step_ms <= 0.0 {
            return AdmissionDecision::Accept;
        }
        let wait_ms = view.competing_backlog_ms(r.model, r.deadline_ms());
        // Slack remaining at the decision instant: the decision fires when
        // the releasing unit's clock passes the arrival, so part of the SLO
        // may already have elapsed — budgeting the full `slo_ms` here would
        // admit variants that are already infeasible.
        let slack_ms = r.deadline_ms() - view.now_ms();
        if slack_ms <= 0.0 {
            return AdmissionDecision::Shed;
        }
        if wait_ms + r.total_steps as f64 * step_ms <= slack_ms {
            return AdmissionDecision::Accept;
        }
        // The largest step budget that still fits the deadline behind the
        // projected backlog.
        let budget = ((slack_ms - wait_ms) / step_ms).floor();
        let floor = (self.min_steps_frac * r.total_steps as f64).ceil().max(1.0);
        if budget >= floor {
            AdmissionDecision::Degrade {
                steps: (budget as usize).min(r.total_steps),
            }
        } else {
            AdmissionDecision::Shed
        }
    }
}

/// The built-in admission-controller names, in presentation order.
pub const BUILTIN_ADMISSION_NAMES: [&str; 2] = ["admit-all", "deadline"];

/// A name-keyed registry of admission controllers — the serde-able
/// configuration surface (configs and env switches carry controller
/// *names*) and the extension point for custom controllers. Registration
/// order is iteration order, and re-registering a name replaces the entry
/// in place (the semantics live in [`crate::registry::NamedRegistry`],
/// shared with the policy registry).
#[derive(Debug, Clone, Default)]
pub struct AdmissionRegistry {
    inner: crate::registry::NamedRegistry<dyn AdmissionController>,
}

impl AdmissionRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The registry holding the built-in controllers.
    pub fn builtin() -> Self {
        let mut reg = Self::empty();
        reg.register(Arc::new(AdmitAll));
        reg.register(Arc::new(DeadlineFeasibility::default()));
        reg
    }

    /// Registers `controller` under its own [`AdmissionController::name`],
    /// replacing any previous entry of that name.
    pub fn register(&mut self, controller: Arc<dyn AdmissionController>) {
        self.inner
            .register(controller.name().to_string(), controller);
    }

    /// Resolves `name` to its controller.
    pub fn get(&self, name: &str) -> Option<Arc<dyn AdmissionController>> {
        self.inner.get(name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.inner.names()
    }

    /// Every registered controller, in registration order.
    pub fn all(&self) -> Vec<Arc<dyn AdmissionController>> {
        self.inner.all()
    }
}

/// Resolves `name` against the built-in registry.
pub fn by_name(name: &str) -> Option<Arc<dyn AdmissionController>> {
    AdmissionRegistry::builtin().get(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::policy::Fcfs;
    use exion_model::config::ModelConfig;
    use exion_sim::config::HwConfig;
    use exion_sim::partition::Interconnect;
    use exion_sim::perf::SimAblation;

    fn tiny(kind: ModelKind) -> ModelConfig {
        ModelConfig::for_kind(kind).shrunk(1, 12)
    }

    fn ctx() -> SchedContext {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        SchedContext::build(
            Arc::new(Fcfs),
            8,
            &[ModelKind::Mld],
            &mut cost,
            Interconnect::default(),
            tiny,
            |_| None,
        )
    }

    #[test]
    fn admit_all_accepts_everything() {
        let ctx = ctx();
        let queue: Vec<Request> = Vec::new();
        let units: Vec<Gang> = Vec::new();
        let view = AdmissionView::new(0.0, &queue, &units, &ctx);
        let r = Request::new(0, ModelKind::Mld, 0.0, 0.0, 12);
        assert_eq!(AdmitAll.decide(&r, &view), AdmissionDecision::Accept);
    }

    #[test]
    fn deadline_controller_accepts_degrades_and_sheds() {
        let ctx = ctx();
        let units: Vec<Gang> = Vec::new();
        let queue: Vec<Request> = Vec::new();
        let view = AdmissionView::new(0.0, &queue, &units, &ctx);
        let controller = DeadlineFeasibility::default();
        let step_ms = view.batched_step_ms(ModelKind::Mld);
        assert!(step_ms > 0.0);

        // Ample slack: the full schedule fits.
        let easy = Request::new(0, ModelKind::Mld, 0.0, 100.0 * 12.0 * step_ms, 12);
        assert_eq!(controller.decide(&easy, &view), AdmissionDecision::Accept);

        // Slack for ~8 of 12 steps (≥ the 50% floor): degraded, and the
        // budget itself is deadline-feasible.
        let tight = Request::new(1, ModelKind::Mld, 0.0, 8.4 * step_ms, 12);
        match controller.decide(&tight, &view) {
            AdmissionDecision::Degrade { steps } => {
                assert!((6..12).contains(&steps), "budget {steps}");
                assert!(steps as f64 * step_ms <= tight.slo_ms, "budget must fit");
            }
            other => panic!("expected degrade, got {other:?}"),
        }

        // Slack below the quality floor: shed.
        let hopeless = Request::new(2, ModelKind::Mld, 0.0, 2.0 * step_ms, 12);
        assert_eq!(controller.decide(&hopeless, &view), AdmissionDecision::Shed);
    }

    #[test]
    fn backlog_defers_the_projection() {
        let ctx = ctx();
        let units: Vec<Gang> = Vec::new();
        // A deep queue of *tight-deadline* requests ahead of the arrival:
        // they will be served first under deadline ordering, so they count
        // against the projection.
        let queue: Vec<Request> = (0..64)
            .map(|i| Request::new(i, ModelKind::Mld, 0.0, 0.0, 12))
            .collect();
        let view = AdmissionView::new(0.0, &queue, &units, &ctx);
        assert!(view.backlog_ms() > 0.0);
        let controller = DeadlineFeasibility::default();
        let step_ms = view.batched_step_ms(ModelKind::Mld);
        // Would be comfortably feasible on an empty cluster...
        let r = Request::new(99, ModelKind::Mld, 0.0, 13.0 * step_ms, 12);
        let empty_queue: Vec<Request> = Vec::new();
        let empty = AdmissionView::new(0.0, &empty_queue, &units, &ctx);
        assert_eq!(controller.decide(&r, &empty), AdmissionDecision::Accept);
        // ...but the competing backlog pushes it past the deadline.
        assert_ne!(controller.decide(&r, &view), AdmissionDecision::Accept);
        // Lax backlog (later deadlines) does not compete under EDF: the
        // same queue with huge slack leaves the arrival feasible.
        let lax: Vec<Request> = (0..64)
            .map(|i| Request::new(i, ModelKind::Mld, 0.0, 1e9, 12))
            .collect();
        let lax_view = AdmissionView::new(0.0, &lax, &units, &ctx);
        assert!(
            lax_view.competing_backlog_ms(ModelKind::Mld, r.deadline_ms()) < lax_view.backlog_ms()
        );
        assert_eq!(controller.decide(&r, &lax_view), AdmissionDecision::Accept);
    }

    #[test]
    fn registry_resolves_builtin_names() {
        let reg = AdmissionRegistry::builtin();
        assert_eq!(reg.names(), BUILTIN_ADMISSION_NAMES.to_vec());
        for name in BUILTIN_ADMISSION_NAMES {
            assert_eq!(reg.get(name).expect("builtin").name(), name);
            assert_eq!(by_name(name).expect("builtin").name(), name);
        }
        assert!(by_name("no-such-controller").is_none());
    }
}
