//! Placement: grouping instances into whole-model replicas and sharded
//! TP/PP gangs.
//!
//! A [`Gang`] is the cluster's unit of execution. A replica gang has one
//! member running the whole model; a sharded gang has
//! [`PartitionStrategy::degree`] members, each holding *its own shard* of
//! every served model in *its own* GSC ([`GscObject::WeightShard`] entries
//! priced per member). Gangs are iteration-synchronous: a sharded batch
//! advances only when every member has finished its shard (tensor ranks run
//! concurrently, pipeline stages sequentially), so the gang keeps one
//! logical clock — the leader's — and followers advance in lockstep.
//!
//! Scheduling stays on the leader: the shared queue, continuous batching,
//! and preemption all act on `members[0]`. Parked latents, however, land on
//! the *least-GSC-pressured* member of the unit (the one with the most
//! capacity not committed to pinned shards or other parked latents), with
//! the request's `parked_on` affinity hint updated to that member — so
//! heavy preemption spreads latent pressure across the gang instead of
//! thrashing the leader's GSC. Followers contribute their shard's
//! residency, compute time, and energy.

use exion_model::config::ModelKind;
use exion_sim::config::HwConfig;
use exion_sim::partition::{Interconnect, PartitionStrategy};
use exion_sim::perf::IterationCost;
use exion_sim::residency::EvictionPolicy;

use crate::cost::CostModel;
use crate::metrics::{GangStats, InstanceStats};
use crate::queue::ReadyQueue;
use crate::request::Completion;
use crate::scheduler::{AdmitOutcome, Instance, SchedContext};

/// How a cluster's instances are grouped: `replicas` single-instance
/// whole-model units plus `gangs` sharded units of `strategy.degree()`
/// members each, all pulling from one shared queue.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Placement {
    /// Whole-model single-instance units.
    pub replicas: usize,
    /// Sharded gangs.
    pub gangs: usize,
    /// How each gang cuts its models.
    pub strategy: PartitionStrategy,
    /// The link between gang members.
    pub interconnect: Interconnect,
}

impl Placement {
    /// `n` whole-model replicas (the classic cluster).
    pub fn replicated(n: usize) -> Self {
        Self {
            replicas: n.max(1),
            gangs: 0,
            strategy: PartitionStrategy::Replicated,
            interconnect: Interconnect::default(),
        }
    }

    /// `gangs` sharded gangs under `strategy`, no replicas.
    pub fn sharded(gangs: usize, strategy: PartitionStrategy) -> Self {
        Self {
            replicas: 0,
            gangs: gangs.max(1),
            strategy,
            interconnect: Interconnect::default(),
        }
    }

    /// A mixed cluster: replicas and sharded gangs side by side (the
    /// scheduler routes requests to whichever unit frees up first, with
    /// residency-aware seeding per unit). A placement needs at least one
    /// unit, so zero-everything falls back to one replica.
    pub fn mixed(replicas: usize, gangs: usize, strategy: PartitionStrategy) -> Self {
        Self {
            replicas: if replicas + gangs == 0 { 1 } else { replicas },
            gangs,
            strategy,
            interconnect: Interconnect::default(),
        }
    }

    /// Replaces the gang interconnect.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Scheduling units (replicas + gangs).
    pub fn units(&self) -> usize {
        self.replicas + self.gangs
    }

    /// Hardware instances the placement occupies in total.
    pub fn total_instances(&self) -> usize {
        self.replicas + self.gangs * self.strategy.degree()
    }

    /// Human-readable summary (`replicated x2`, `tp2 gang x1`,
    /// `1 replica + 1 tp2 gang`) — the label planner reports and replan
    /// events carry.
    pub fn summary(&self) -> String {
        if self.gangs == 0 {
            format!("replicated x{}", self.replicas)
        } else if self.replicas == 0 {
            format!("{} gang x{}", self.strategy.label(), self.gangs)
        } else {
            format!(
                "{} replica{} + {} {} gang{}",
                self.replicas,
                if self.replicas == 1 { "" } else { "s" },
                self.gangs,
                self.strategy.label(),
                if self.gangs == 1 { "" } else { "s" },
            )
        }
    }
}

/// What draining a unit produced: requests parked back to the shared
/// queue (with `(id, stamp ms)` queue-depth stamps) and — on a unit with
/// dead members — running requests destroyed because their latents lived
/// on hardware that no longer exists and no DRAM checkpoint covered them.
#[derive(Debug, Clone, Default)]
pub struct DrainOutcome {
    /// `(request id, drain ms)` stamps of the requeued requests.
    pub requeued: Vec<(u64, f64)>,
    /// Running requests destroyed by the fault (lost accounting).
    pub lost: Vec<crate::request::Request>,
}

/// One scheduling unit: a single whole-model replica or an
/// iteration-synchronous sharded gang. `members[0]` is the leader — it owns
/// the clock, the running batch, and the parked latents.
#[derive(Debug, Clone)]
pub struct Gang {
    /// Member instances; length 1 for replicas, `strategy.degree()` for
    /// sharded gangs.
    pub members: Vec<Instance>,
    strategy: PartitionStrategy,
    /// The model whose shard pins the followers currently hold.
    last_model: Option<ModelKind>,
    /// Per-member death mask, set by fault injection. A gang with any
    /// dead member is stalled: TP/PP iterations need every shard, so the
    /// whole unit's capacity is out until repair replaces it.
    dead: Vec<bool>,
    collective_ms: f64,
    collective_bytes: u64,
}

impl Gang {
    /// A whole-model replica unit over instance id `id`.
    pub fn replica(id: usize, hw: &HwConfig, eviction: EvictionPolicy) -> Self {
        Self {
            members: vec![Instance::new(id, hw, eviction)],
            strategy: PartitionStrategy::Replicated,
            last_model: None,
            dead: vec![false],
            collective_ms: 0.0,
            collective_bytes: 0,
        }
    }

    /// A sharded gang whose members take instance ids `first_id..`, shard
    /// `s` to member `s`. A degenerate [`PartitionStrategy::Replicated`]
    /// "gang" is just a replica (whole-model member, replica execution
    /// path).
    pub fn sharded(
        first_id: usize,
        hw: &HwConfig,
        eviction: EvictionPolicy,
        strategy: PartitionStrategy,
    ) -> Self {
        if strategy == PartitionStrategy::Replicated {
            return Self::replica(first_id, hw, eviction);
        }
        let degree = strategy.degree();
        let mut members: Vec<Instance> = (0..degree)
            .map(|s| Instance::new_shard(first_id + s, hw, eviction, s as u8))
            .collect();
        for m in &mut members {
            m.set_unit(first_id, degree);
        }
        Self {
            dead: vec![false; members.len()],
            members,
            strategy,
            last_model: None,
            collective_ms: 0.0,
            collective_bytes: 0,
        }
    }

    /// Whether this unit shards its models.
    pub fn is_sharded(&self) -> bool {
        self.strategy != PartitionStrategy::Replicated
    }

    /// The unit's partition strategy.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The unit's logical clock (the leader's).
    pub fn now_ms(&self) -> f64 {
        self.members[0].now_ms
    }

    /// Jumps an idle unit's clock forward to `at_ms` (never backward).
    pub fn jump_to(&mut self, at_ms: f64) {
        let to = self.members[0].now_ms.max(at_ms);
        for m in &mut self.members {
            m.now_ms = to;
        }
    }

    /// Whether the unit has no running batch.
    pub fn is_idle(&self) -> bool {
        self.members[0].is_idle()
    }

    /// The leader instance (batch owner).
    pub fn leader(&self) -> &Instance {
        &self.members[0]
    }

    /// Admits queued requests at this iteration boundary — the leader's
    /// continuous-batching logic (seeding, preemption, same-model swaps),
    /// with the follower members offered as latent-park sinks — and keeps
    /// member clocks in lockstep past any latent transfers the admission
    /// priced.
    pub fn admit(&mut self, queue: &mut ReadyQueue, ctx: &SchedContext) -> AdmitOutcome {
        let mut out = AdmitOutcome::default();
        self.admit_into(queue, ctx, &mut out);
        out
    }

    /// [`Self::admit`] writing into a caller-owned outcome buffer — the
    /// zero-allocation boundary path.
    pub fn admit_into(
        &mut self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        outcome: &mut AdmitOutcome,
    ) {
        let (leader, peers) = self
            .members
            .split_first_mut()
            .expect("a unit has at least one member");
        leader.admit_into(queue, ctx, peers, outcome);
        self.sync_clocks();
    }

    /// Releases a parked-latent copy after its request resumed on another
    /// unit (the latent may live on any member under sharded parking).
    pub fn discard_latent(&mut self, id: u64, ctx: &SchedContext) {
        for m in &mut self.members {
            m.discard_latent(id, ctx);
        }
        self.sync_clocks();
    }

    /// Lockstep: every member waits for the slowest one (latent shipping
    /// during parking can momentarily advance a follower past the leader).
    fn sync_clocks(&mut self) {
        let now = self
            .members
            .iter()
            .map(|m| m.now_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        for m in &mut self.members {
            m.now_ms = now;
        }
    }

    /// Drains the ids of latents this unit evicted since the last call
    /// (sharded parking can put latents on any member, so every member is
    /// drained).
    pub fn take_evicted_latents(&mut self) -> Vec<u64> {
        self.members
            .iter_mut()
            .flat_map(Instance::take_evicted_latents)
            .collect()
    }

    /// Marks member `slot` (modulo the gang width) dead. On a replica
    /// unit the single member dies, which is a whole-unit crash.
    pub fn mark_member_dead(&mut self, slot: usize) {
        let i = slot % self.dead.len();
        self.dead[i] = true;
    }

    /// Marks every member dead — a whole-unit crash.
    pub fn mark_all_dead(&mut self) {
        self.dead.iter_mut().for_each(|d| *d = true);
    }

    /// Whether any member is dead (a gang missing a member is stalled:
    /// its next iteration can never run).
    pub fn any_dead(&self) -> bool {
        self.dead.iter().any(|&d| d)
    }

    /// Instance ids of the dead members (parked latents there are gone).
    pub fn dead_member_ids(&self) -> Vec<usize> {
        self.members
            .iter()
            .zip(&self.dead)
            .filter(|(_, &d)| d)
            .map(|(m, _)| m.id)
            .collect()
    }

    /// Drains this unit for a placement migration or a fault teardown.
    ///
    /// With every member alive, each running request is parked straight
    /// to DRAM (a priced latent write-back on the leader) and re-enters
    /// `queue` with its DDIM step count intact and no affinity hint —
    /// the unit is about to be torn down, so nothing on it is worth
    /// steering back to.
    ///
    /// With any member dead (fault path), there is no live gang to
    /// execute write-backs: a running request survives only if a DRAM
    /// checkpoint covers it (requeued at `at_ms` with `steps_done`
    /// rolled back to the checkpoint, nothing billed — the spill was
    /// priced when taken); the rest are destroyed and returned in
    /// [`DrainOutcome::lost`]. Billing a transfer off dead hardware
    /// would credit the fault with machine time that never ran.
    pub fn drain_for_migration(
        &mut self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        at_ms: f64,
    ) -> DrainOutcome {
        if self.any_dead() {
            let (requeued, lost) = self.members[0].drain_running_lost(queue, ctx, at_ms);
            self.sync_clocks();
            return DrainOutcome { requeued, lost };
        }
        let requeued = self.members[0].drain_running(queue, ctx);
        self.sync_clocks();
        DrainOutcome {
            requeued,
            lost: Vec::new(),
        }
    }

    /// Opt-in periodic latent checkpointing at this iteration boundary:
    /// the leader spills each due running request's latent to DRAM (a
    /// priced transfer) and the gang re-syncs its lockstep clocks past
    /// the spill time. Returns `(spills, bytes)`.
    pub fn checkpoint_running(&mut self, ctx: &SchedContext, every_steps: usize) -> (usize, u64) {
        let out = self.members[0].checkpoint_running(ctx, every_steps);
        self.sync_clocks();
        out
    }

    /// Releases the parked latent of request `request` from member
    /// `member_id` (if this unit owns that member and it holds the
    /// latent), pricing the DRAM write-back there — the migration path's
    /// analogue of [`Self::discard_latent`].
    pub fn discard_member_latent(&mut self, member_id: usize, request: u64, ctx: &SchedContext) {
        let mut touched = false;
        for m in &mut self.members {
            if m.id == member_id {
                m.discard_latent(request, ctx);
                touched = true;
            }
        }
        if touched {
            self.sync_clocks();
        }
    }

    /// Summed GSC-resident bytes across this unit's members — what a
    /// migration walks away from (and the new placement re-streams).
    pub fn resident_bytes(&self) -> u64 {
        self.members.iter().map(Instance::gsc_occupancy_bytes).sum()
    }

    /// Cumulative interconnect-collective accounting `(ms, bytes)` —
    /// telemetry reads the per-iteration delta to size collective slices
    /// on the timeline (always zero for replicas).
    pub fn collective_totals(&self) -> (f64, u64) {
        (self.collective_ms, self.collective_bytes)
    }

    /// Per-member `(instance id, cumulative DRAM weight-refill bytes)` —
    /// telemetry reads the per-iteration delta to size refill slices on
    /// each member's timeline track.
    pub fn member_refill_bytes(&self) -> Vec<(usize, u64)> {
        self.members
            .iter()
            .map(|m| (m.id, m.refill_bytes_so_far()))
            .collect()
    }

    /// Executes one denoising iteration of the unit's running batch.
    ///
    /// Replicas delegate to [`Instance::execute_iteration`]. A sharded gang
    /// gang-schedules the boundary: every member touches *its shard's*
    /// residency in *its own* GSC, prices its shard's compute at its warm
    /// fraction, and the batch advances only when all members are done —
    /// max-composed for tensor ranks, sum-composed for pipeline stages,
    /// plus the interconnect collective term.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty.
    pub fn execute_iteration(
        &mut self,
        cost: &mut CostModel,
        ctx: &SchedContext,
    ) -> Vec<Completion> {
        let mut done = Vec::new();
        self.execute_iteration_into(cost, ctx, &mut done);
        done
    }

    /// [`Self::execute_iteration`] appending into a caller-owned buffer.
    pub fn execute_iteration_into(
        &mut self,
        cost: &mut CostModel,
        ctx: &SchedContext,
        done: &mut Vec<Completion>,
    ) {
        if !self.is_sharded() {
            return self.members[0].execute_iteration_into(cost, ctx, done);
        }
        let model = self.members[0]
            .active_model
            .expect("a non-empty batch always has an active model");
        let info = ctx.info(model).clone();
        let plan = info
            .partition
            .as_ref()
            .expect("sharded units exist only when the context carries plans");

        // Moving to a new tenant releases the followers' old shard pins
        // (the leader moved its own pin during admission seeding).
        if self.last_model != Some(model) {
            if let Some(old) = self.last_model {
                for m in &mut self.members[1..] {
                    m.unpin_weights(old);
                }
            }
            self.last_model = Some(model);
        }

        let phase = self.members[0].batch_phase(info.period);
        let batch = self.members[0].running.len() as u64;
        let mut shard_costs: Vec<IterationCost> = Vec::with_capacity(self.members.len());
        for member in &mut self.members {
            let obj = member.weight_obj(model);
            let bytes = member.weight_footprint(&info);
            let warm = member.touch_weights(obj, bytes, ctx.transfer_ms(bytes), ctx);
            let c = cost
                .iteration_shard(&info.config, plan, shard_costs.len(), batch, phase, warm)
                .expect("non-empty batch and in-range step");
            shard_costs.push(c);
        }
        let gang_cost = plan.combine(&shard_costs, batch);
        self.collective_ms += plan.collective_ms(batch);
        self.collective_bytes += plan.collective_bytes(batch);

        // The link energy is booked on the leader along with its shard; the
        // whole gang is occupied for the combined latency (lockstep).
        let link_energy =
            gang_cost.energy_mj - shard_costs.iter().map(|c| c.energy_mj).sum::<f64>();
        self.members[0].finish_iteration_into(
            gang_cost.latency_ms,
            shard_costs[0].energy_mj + link_energy,
            phase,
            done,
        );
        let now = self.members[0].now_ms;
        for (member, c) in self.members[1..].iter_mut().zip(&shard_costs[1..]) {
            member.advance_lockstep(now, gang_cost.latency_ms, c.energy_mj);
        }
    }

    /// Per-member accounting over a makespan.
    pub fn member_stats(&self, makespan_ms: f64) -> Vec<InstanceStats> {
        self.members.iter().map(|m| m.stats(makespan_ms)).collect()
    }

    /// Gang-level accounting over a makespan.
    pub fn stats(&self, makespan_ms: f64) -> GangStats {
        let leader = self.members[0].stats(makespan_ms);
        GangStats {
            strategy: self.strategy.label(),
            members: self.members.len(),
            iterations: leader.iterations,
            utilization: leader.utilization,
            collective_ms: self.collective_ms,
            collective_bytes: self.collective_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fcfs;
    use crate::request::Request;
    use exion_model::config::ModelConfig;
    use exion_sim::perf::SimAblation;
    use std::sync::Arc;

    fn tiny(kind: ModelKind) -> ModelConfig {
        ModelConfig::for_kind(kind).shrunk(1, 12)
    }

    #[test]
    fn placement_shapes() {
        let rep = Placement::replicated(3);
        assert_eq!(rep.units(), 3);
        assert_eq!(rep.total_instances(), 3);
        let tp = Placement::sharded(2, PartitionStrategy::Tensor { ways: 2 });
        assert_eq!(tp.units(), 2);
        assert_eq!(tp.total_instances(), 4);
        let mixed = Placement::mixed(1, 1, PartitionStrategy::Pipeline { stages: 3 });
        assert_eq!(mixed.units(), 2);
        assert_eq!(mixed.total_instances(), 4);
    }

    #[test]
    fn sharded_gang_runs_a_batch_with_per_member_residency() {
        let hw = HwConfig::exion4();
        let mut cost = CostModel::new(hw, SimAblation::All);
        let strategy = PartitionStrategy::Tensor { ways: 2 };
        let operand_bytes = hw.operand_bytes();
        let ctx = SchedContext::build(
            Arc::new(Fcfs),
            4,
            &[ModelKind::VideoCrafter2],
            &mut cost,
            Interconnect::default(),
            tiny,
            |k| {
                Some(exion_sim::partition::PartitionPlan::new(
                    &tiny(k),
                    strategy,
                    Interconnect::default(),
                    operand_bytes,
                ))
            },
        );
        let mut gang = Gang::sharded(0, &hw, EvictionPolicy::Lru, strategy);
        assert!(gang.is_sharded());
        let steps = tiny(ModelKind::VideoCrafter2).iterations;
        let mut queue = ReadyQueue::from_requests(
            vec![Request::new(0, ModelKind::VideoCrafter2, 0.0, 1e9, steps)],
            &ctx,
        );
        gang.admit(&mut queue, &ctx);
        let mut done = Vec::new();
        while !gang.is_idle() {
            done.extend(gang.execute_iteration(&mut cost, &ctx));
        }
        assert_eq!(done.len(), 1);
        // Both members carried weight traffic for their own shard, priced
        // in their own GSC.
        let stats = gang.member_stats(gang.now_ms());
        for (i, s) in stats.iter().enumerate() {
            assert!(
                s.weight_hit_bytes + s.weight_refill_bytes > 0,
                "member {i} saw no weight traffic"
            );
        }
        // Lockstep: every member was busy for the same wall-clock span.
        assert!((stats[0].utilization - stats[1].utilization).abs() < 1e-9);
        // The gang accrued interconnect traffic.
        let g = gang.stats(gang.now_ms());
        assert!(g.collective_bytes > 0);
        assert!(g.collective_ms > 0.0);
        assert_eq!(g.members, 2);
        assert_eq!(g.strategy, "tp2");
    }
}
