//! Serving metrics: tail latency, goodput, utilization, energy per request.

use exion_telemetry::LogHistogram;
use serde::{Deserialize, Serialize};

use crate::request::{Completion, LostRecord, ShedRecord};

/// Nearest-rank percentile of an ascending-sorted slice (`q ∈ [0, 1]`) —
/// the exact reference the streaming-histogram error-bound tests compare
/// against.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Distribution summary of a latency-like sample, read off a streaming
/// log-bucketed [`LogHistogram`] — O(1) memory however many samples were
/// recorded.
///
/// Percentiles are nearest-rank estimates within one histogram bucket
/// (≤ [`LogHistogram::growth`] relative, about 4.1% at the default
/// resolution) of the exact sorted-sample value; `mean`, `max`, and
/// `count` are exact. When `count == 0` every field is 0.0 — check
/// [`Self::is_empty`] to tell an empty sample from a real all-zero one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median (ms).
    pub p50: f64,
    /// 95th percentile (ms).
    pub p95: f64,
    /// 99th percentile (ms).
    pub p99: f64,
    /// Mean (ms, exact).
    pub mean: f64,
    /// Maximum (ms, exact).
    pub max: f64,
    /// Samples recorded — 0 marks an empty distribution whose zeros carry
    /// no information.
    pub count: u64,
}

impl LatencyStats {
    /// The empty distribution (all zeros, `count == 0`).
    pub const EMPTY: Self = Self {
        p50: 0.0,
        p95: 0.0,
        p99: 0.0,
        mean: 0.0,
        max: 0.0,
        count: 0,
    };

    /// Reads the summary off a streaming histogram.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        if h.is_empty() {
            return Self::EMPTY;
        }
        Self {
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
            mean: h.mean(),
            max: h.max(),
            count: h.count(),
        }
    }

    /// Streams `samples` through a default-resolution histogram and reads
    /// the summary off it — the one-shot path for derived views (e.g.
    /// per-class latency).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut h = LogHistogram::default();
        for s in samples {
            h.record(s);
        }
        Self::from_histogram(&h)
    }

    /// Whether the distribution recorded no samples (its zeros are
    /// placeholders, not measurements).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One named value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (registry registration order is preserved).
    pub name: String,
    /// Value at the snapshot instant (counters as `f64`).
    pub value: f64,
}

/// The cluster's counter/gauge registry captured at one epoch boundary —
/// the rows of [`ServeReport::series`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Simulated time of the snapshot (ms).
    pub at_ms: f64,
    /// Every registered metric, in registration order.
    pub values: Vec<MetricSample>,
}

/// Counter names in registration (= snapshot) order.
pub const SERIES_COUNTERS: [&str; 9] = [
    "arrivals_released",
    "enqueued",
    "shed",
    "degraded",
    "completed",
    "preemption_parks",
    "resumes",
    "migration_drains",
    "lost",
];

/// Gauge names in registration (= snapshot) order.
pub const SERIES_GAUGES: [&str; 3] = ["queue_depth", "inflight_rows", "clock_ms"];

/// The cluster's counter/gauge registry plus the snapshots taken at
/// calendar stats/epoch events. Counters arrive as running totals (the
/// cluster's existing accumulators) and are diffed against the previous
/// snapshot, so the hot loop never touches the registry.
#[derive(Debug, Clone)]
pub struct SeriesRecorder {
    registry: exion_telemetry::Registry,
    series: Vec<MetricsSnapshot>,
    last: Vec<(&'static str, u64)>,
}

impl Default for SeriesRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SeriesRecorder {
    /// An empty recorder with every [`SERIES_COUNTERS`] /
    /// [`SERIES_GAUGES`] metric pre-registered at zero.
    pub fn new() -> Self {
        let mut registry = exion_telemetry::Registry::new();
        let mut last = Vec::with_capacity(SERIES_COUNTERS.len());
        for name in SERIES_COUNTERS {
            registry.counter_add(name, 0);
            last.push((name, 0u64));
        }
        for name in SERIES_GAUGES {
            registry.gauge_set(name, 0.0);
        }
        Self {
            registry,
            series: Vec::new(),
            last,
        }
    }

    /// Takes one snapshot at `at_ms`: `counters` are running totals in
    /// [`SERIES_COUNTERS`] order, `gauges` current levels in
    /// [`SERIES_GAUGES`] order.
    pub fn snapshot(&mut self, at_ms: f64, counters: [u64; 9], gauges: [f64; 3]) {
        for ((name, prev), total) in self.last.iter_mut().zip(counters) {
            debug_assert!(total >= *prev, "counter {name} went backward");
            self.registry.counter_add(name, total.saturating_sub(*prev));
            *prev = total;
        }
        for (name, value) in SERIES_GAUGES.into_iter().zip(gauges) {
            self.registry.gauge_set(name, value);
        }
        self.series.push(MetricsSnapshot {
            at_ms,
            values: self
                .registry
                .snapshot()
                .into_iter()
                .map(|(name, value)| MetricSample {
                    name: name.to_string(),
                    value,
                })
                .collect(),
        });
    }

    /// The recorded time-series, consumed into a report.
    pub fn into_series(self) -> Vec<MetricsSnapshot> {
        self.series
    }
}

/// Per-instance accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Busy fraction of the instance's live window (the whole makespan for
    /// statically placed clusters; birth-to-retirement for units a
    /// migration created or tore down).
    pub utilization: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Fraction of iterations run in the FFN-Reuse sparse phase.
    pub sparse_iteration_frac: f64,
    /// Mean batch occupancy over executed iterations (rows/iteration).
    pub mean_batch: f64,
    /// Exact request-iterations executed (rows summed over iterations) —
    /// conservation accounting: equals the summed step demand of every
    /// request this instance completed work for.
    pub rows_executed: u64,
    /// Energy consumed (mJ).
    pub energy_mj: f64,
    /// Requests parked at iteration boundaries (preemptions performed).
    pub preemptions: u64,
    /// Parked latents written back to DRAM (no GSC room, or evicted).
    pub latent_spills: u64,
    /// Iterations that streamed any weight bytes from DRAM (partial or
    /// full refills — the residency-aware replacement for "cold switches").
    pub weight_refill_iterations: u64,
    /// Weight bytes served from the GSC.
    pub weight_hit_bytes: u64,
    /// Weight bytes streamed from DRAM.
    pub weight_refill_bytes: u64,
    /// GSC residency hit-rate over weight traffic (1.0 = fully resident).
    pub residency_hit_rate: f64,
}

/// Per-gang accounting: one row per scheduling unit (replica or sharded
/// gang).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangStats {
    /// Partition strategy label (`replicated`, `tp2`, `pp2`, …).
    pub strategy: String,
    /// Member instances in the unit.
    pub members: usize,
    /// Gang-level iterations executed (each occupies every member).
    pub iterations: u64,
    /// Busy fraction of the unit's live window (lockstep across members).
    pub utilization: f64,
    /// Wall-clock spent in interconnect collectives (ms).
    pub collective_ms: f64,
    /// Per-member interconnect bytes moved by collectives.
    pub collective_bytes: u64,
}

/// One epoch of the online re-planner's forecast tracking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStat {
    /// Epoch start (ms of simulated time).
    pub start_ms: f64,
    /// The offered load the planner was operating on entering the epoch
    /// (requests/s).
    pub forecast_rps: f64,
    /// The offered load actually observed over the epoch (requests/s).
    pub realized_rps: f64,
    /// Relative forecast error: `|realized − forecast| / max(forecast, ε)`
    /// — the quantity the hysteresis threshold gates re-planning on.
    pub error: f64,
}

/// One executed re-plan: the placement switch and its priced migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanEvent {
    /// When the migration fired (ms of simulated time).
    pub at_ms: f64,
    /// Placement summary before the switch.
    pub from: String,
    /// Placement summary after the switch.
    pub to: String,
    /// GSC-resident bytes the old placement held at teardown — the weight
    /// (and stale latent) state the new placement must re-stream from
    /// DRAM as refill bytes.
    pub migration_bytes: u64,
    /// In-flight requests drained back into the queue (their latents were
    /// written to DRAM at a priced spill; they resume on the new units
    /// with their DDIM step counts intact).
    pub drained_requests: usize,
}

/// Planner accounting carried by a [`ServeReport`] when the cluster ran
/// under auto-placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerReport {
    /// The initial placement the offline pass chose.
    pub initial_placement: String,
    /// The placement serving when the trace drained.
    pub final_placement: String,
    /// The forecast the initial plan was built against (requests/s).
    pub initial_forecast_rps: f64,
    /// Executed re-plans (placement actually changed), in time order.
    pub replans: Vec<ReplanEvent>,
    /// Per-epoch forecast tracking, in time order.
    pub epochs: Vec<EpochStat>,
}

impl PlannerReport {
    /// Executed re-plans.
    pub fn replan_count(&self) -> usize {
        self.replans.len()
    }

    /// Total GSC-resident bytes torn down across every migration.
    pub fn migration_bytes(&self) -> u64 {
        self.replans.iter().map(|r| r.migration_bytes).sum()
    }

    /// Mean relative forecast error across epochs (0.0 when no epoch
    /// completed).
    pub fn mean_forecast_error(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.error).sum::<f64>() / self.epochs.len() as f64
        }
    }
}

/// One injected fault and what it destroyed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// When the fault fired (ms).
    pub at_ms: f64,
    /// Fault-kind label (`unit-crash`, `member-loss`, `link-degrade`).
    pub kind: String,
    /// The unit slot it hit (`usize::MAX` for fleet-wide link faults).
    pub unit: usize,
    /// Requests destroyed by this fault.
    pub lost: usize,
    /// Requests requeued (checkpoint recoveries plus priced write-backs
    /// off surviving members).
    pub requeued: usize,
}

/// Fault-injection accounting carried by a [`ServeReport`] when the run
/// had a non-empty [`crate::fault::FaultPlan`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Fault-plan events that actually fired and hit live hardware.
    pub faults_injected: usize,
    /// Fault-plan events that fired against nothing (target unit already
    /// retired or the fleet already drained) — no-ops, not failures.
    pub faults_noop: usize,
    /// Requests destroyed across every fault.
    pub lost_requests: usize,
    /// Running requests that survived a crash through a DRAM checkpoint.
    pub checkpointed_recoveries: usize,
    /// Latent checkpoints taken by the periodic checkpoint policy.
    pub checkpoint_spills: usize,
    /// Bytes those checkpoints moved to DRAM (each a priced transfer).
    pub checkpoint_bytes: u64,
    /// Out-of-cadence re-plans faults triggered (auto-placement runs).
    pub replans_triggered: usize,
    /// Crashed units that rejoined within the horizon.
    pub recoveries: usize,
    /// Mean crash-to-rejoin time over completed recoveries (ms).
    pub mean_time_to_recover_ms: f64,
    /// SLO attainment over requests that *arrived inside a degraded
    /// window* (a crash-to-recover or degrade-to-restore interval) —
    /// the report-level answer to "what did the faults cost the users
    /// who hit them". 0.0 when no request arrived in such a window.
    pub attainment_under_failure: f64,
    /// Per-fault records, in fire order.
    pub records: Vec<FaultRecord>,
}

/// The full report of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Hardware instance name (e.g. `EXION4`).
    pub hw_name: String,
    /// Scheduler policy name.
    pub policy: String,
    /// Admission-controller name.
    pub admission: String,
    /// Traffic pattern name.
    pub pattern: String,
    /// Hardware instance count of the (final) placement. After a
    /// migration, `per_instance` additionally carries the retired units'
    /// rows, so its length can exceed this.
    pub instances: usize,
    /// Requests that arrived within the horizon.
    pub arrivals: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Arrivals refused (shed) by admission control: `completed +
    /// shed_requests + lost_requests == arrivals` once the cluster drains.
    pub shed_requests: usize,
    /// Requests destroyed by injected faults (their latents lived on dead
    /// hardware with no DRAM checkpoint to resume from). Counted as SLO
    /// misses; 0 without a fault plan.
    pub lost_requests: usize,
    /// Completions admission degraded to a reduced DDIM step budget.
    pub degraded_requests: usize,
    /// Offered load (requests/s over the horizon).
    pub offered_rps: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Within-SLO completions per second of makespan.
    pub goodput_rps: f64,
    /// Fraction of completed requests that met their SLO.
    pub slo_attainment: f64,
    /// Trace horizon (ms).
    pub horizon_ms: f64,
    /// Time until the last completion (ms).
    pub makespan_ms: f64,
    /// End-to-end latency distribution (ms).
    pub latency: LatencyStats,
    /// Queueing-delay distribution (ms).
    pub queue_delay: LatencyStats,
    /// Total energy over all instances (mJ).
    pub energy_mj: f64,
    /// Energy per completed request (J).
    pub joules_per_request: f64,
    /// Mean busy fraction across instances.
    pub mean_utilization: f64,
    /// Mean batch occupancy across executed iterations.
    pub mean_batch_occupancy: f64,
    /// Fraction of executed iterations in the sparse phase.
    pub sparse_iteration_frac: f64,
    /// Time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Peak queue depth.
    pub peak_queue_depth: usize,
    /// Total preemptions (requests parked at iteration boundaries).
    pub preemptions: u64,
    /// Total parked latents spilled to DRAM.
    pub latent_spills: u64,
    /// Total weight bytes streamed from DRAM (refills).
    pub weight_refill_bytes: u64,
    /// Cluster-wide GSC residency hit-rate over weight traffic.
    pub residency_hit_rate: f64,
    /// Sharded gangs in the placement (0 = replica-only cluster).
    pub gangs: usize,
    /// Total wall-clock spent in gang collectives (ms, summed over gangs).
    pub collective_ms: f64,
    /// Total per-member interconnect bytes moved by gang collectives.
    pub collective_bytes: u64,
    /// Planner accounting: chosen placement, re-plans, migration bytes,
    /// and per-epoch forecast error (`None` for statically placed runs).
    pub planner: Option<PlannerReport>,
    /// Fault-injection accounting (`None` when the fault plan was empty).
    pub fault: Option<FaultReport>,
    /// Latency attribution: per-request conserved phase breakdowns,
    /// per-class phase histograms, bottleneck attribution, and the SLO
    /// miss-forensics digest (`None` when disabled via
    /// `ServeConfigBuilder::attribution(false)`).
    pub attribution: Option<crate::attribution::AttributionReport>,
    /// Counter/gauge time-series: the cluster registry snapshotted at
    /// planner epoch boundaries (and at the configured
    /// `stats_interval_ms`, when set), in time order. Empty for static
    /// runs without a sampling interval.
    pub series: Vec<MetricsSnapshot>,
    /// Per-unit accounting (replicas and gangs alike; retired pre-migration
    /// units included, in retirement-then-active order).
    pub per_gang: Vec<GangStats>,
    /// Per-instance accounting (gang members flattened in unit order).
    pub per_instance: Vec<InstanceStats>,
    /// Every completion record (tests and downstream analysis).
    pub completions: Vec<Completion>,
    /// Every shed record (per-class refusal accounting).
    pub sheds: Vec<ShedRecord>,
    /// Every lost-request record (per-class fault accounting).
    pub losts: Vec<LostRecord>,
}

impl ServeReport {
    /// End-to-end latency distribution of one tenant class (all zeros when
    /// the class completed nothing) — the per-tenant tail view preemption
    /// experiments compare.
    pub fn class_latency(&self, kind: exion_model::config::ModelKind) -> LatencyStats {
        LatencyStats::from_samples(
            self.completions
                .iter()
                .filter(|c| c.model == kind)
                .map(|c| c.latency_ms()),
        )
    }

    /// Fraction of arrivals refused at enqueue (0.0 without admission
    /// control).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed_requests as f64 / self.arrivals as f64
        }
    }

    /// Shed rate of one tenant class: refusals of `kind` over that class's
    /// arrivals (completions + sheds + losts; 0.0 when the class saw no
    /// traffic).
    pub fn class_shed_rate(&self, kind: exion_model::config::ModelKind) -> f64 {
        let shed = self.sheds.iter().filter(|s| s.model == kind).count();
        let served = self.completions.iter().filter(|c| c.model == kind).count();
        let lost = self.losts.iter().filter(|l| l.model == kind).count();
        if shed + served + lost == 0 {
            0.0
        } else {
            shed as f64 / (shed + served + lost) as f64
        }
    }

    /// Fraction of arrivals destroyed by faults (0.0 without a fault
    /// plan).
    pub fn lost_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.lost_requests as f64 / self.arrivals as f64
        }
    }

    /// Lost rate of one tenant class: fault losses of `kind` over that
    /// class's answered arrivals (completions + sheds + losts; 0.0 when
    /// the class saw no traffic).
    pub fn class_lost_rate(&self, kind: exion_model::config::ModelKind) -> f64 {
        let lost = self.losts.iter().filter(|l| l.model == kind).count();
        let shed = self.sheds.iter().filter(|s| s.model == kind).count();
        let served = self.completions.iter().filter(|c| c.model == kind).count();
        if shed + served + lost == 0 {
            0.0
        } else {
            lost as f64 / (shed + served + lost) as f64
        }
    }

    /// One-line summary for sweeps.
    pub fn summary_line(&self) -> String {
        format!(
            "{:>8.1} rps | p50 {:>9.2} ms | p99 {:>10.2} ms | goodput {:>7.1} rps | \
             util {:>5.1}% | batch {:>4.2} | {:>7.3} J/req",
            self.offered_rps,
            self.latency.p50,
            self.latency.p99,
            self.goodput_rps,
            100.0 * self.mean_utilization,
            self.mean_batch_occupancy,
            self.joules_per_request,
        )
    }
}

/// Online queue-depth integrator: the incremental replacement for
/// buffering every `(time, ±1)` stamp of a run and sorting at the end
/// ([`queue_depth_stats`]).
///
/// Stamps may arrive out of time order (an arrival's `+1` is stamped at
/// its *arrival* instant, which can precede park/admit stamps already
/// recorded at later boundary clocks), so folding is gated by a
/// *watermark*: the caller advances it to a time no future stamp can
/// precede (the minimum of the current event time and the next
/// unreleased arrival), and everything strictly before it is folded into
/// the running area/peak in exactly the `(time, delta)` order the batch
/// sort used. The pending heap therefore stays bounded by the in-flight
/// stamp count (≈ queue depth) instead of growing with total arrivals.
#[derive(Debug, Clone, Default)]
pub(crate) struct DepthTracker {
    /// Un-folded stamps as a min-heap on `(time bits, delta rank)` —
    /// times are non-negative finite, so the bit pattern orders like the
    /// float, and rank 0 (`-1`) sorts before rank 1 (`+1`) at equal
    /// times, matching the batch sort's tie-break.
    pending: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u8)>>,
    stamps: u64,
    depth: i64,
    peak: i64,
    area: f64,
    prev_ms: f64,
}

impl DepthTracker {
    /// Records a `±1` depth change at `t_ms`.
    pub(crate) fn stamp(&mut self, t_ms: f64, delta: i64) {
        debug_assert!(
            t_ms >= 0.0 && t_ms.is_finite(),
            "depth stamps are in-run times"
        );
        let rank = if delta < 0 { 0 } else { 1 };
        self.pending.push(std::cmp::Reverse((t_ms.to_bits(), rank)));
        self.stamps += 1;
    }

    /// Folds every pending stamp strictly before `watermark_ms`. The
    /// caller guarantees no later [`Self::stamp`] precedes the watermark.
    pub(crate) fn advance(&mut self, watermark_ms: f64) {
        while let Some(&std::cmp::Reverse((bits, rank))) = self.pending.peek() {
            let t = f64::from_bits(bits);
            if t >= watermark_ms {
                break;
            }
            self.pending.pop();
            self.fold(t, rank);
        }
    }

    fn fold(&mut self, t: f64, rank: u8) {
        self.area += self.depth as f64 * (t - self.prev_ms);
        self.prev_ms = t;
        self.depth += if rank == 0 { -1 } else { 1 };
        self.peak = self.peak.max(self.depth);
    }

    /// Drains the remaining stamps and closes the integral over
    /// `[0, end_ms]`, returning `(time-weighted mean depth, peak depth)`
    /// exactly as [`queue_depth_stats`] would have.
    pub(crate) fn finish(mut self, end_ms: f64) -> (f64, usize) {
        if self.stamps == 0 || end_ms <= 0.0 {
            return (0.0, 0);
        }
        while let Some(std::cmp::Reverse((bits, rank))) = self.pending.pop() {
            let t = f64::from_bits(bits).min(end_ms);
            self.fold(t, rank);
        }
        self.area += self.depth as f64 * (end_ms - self.prev_ms).max(0.0);
        (self.area / end_ms, self.peak.max(0) as usize)
    }
}

/// Integrates a `(time, +1/-1)` event stream into time-weighted mean and
/// peak depth over `[0, end_ms]` — the batch reference [`DepthTracker`]
/// is differentially tested against (the run loop itself now integrates
/// online).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn queue_depth_stats(events: &mut [(f64, i64)], end_ms: f64) -> (f64, usize) {
    if events.is_empty() || end_ms <= 0.0 {
        return (0.0, 0);
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut depth = 0i64;
    let mut peak = 0i64;
    let mut area = 0.0;
    let mut prev = 0.0;
    for &(t, delta) in events.iter() {
        let t = t.min(end_ms);
        area += depth as f64 * (t - prev);
        prev = t;
        depth += delta;
        peak = peak.max(depth);
    }
    area += depth as f64 * (end_ms - prev).max(0.0);
    (area / end_ms, peak.max(0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn stats_of_constant_sample() {
        // Percentile estimates clamp to the observed [min, max], so a
        // constant sample stays exact even through the histogram.
        let s = LatencyStats::from_samples(vec![7.0; 32]);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.count, 32);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_sample_is_distinguishable_from_zero_latencies() {
        let empty = LatencyStats::from_samples(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty, LatencyStats::EMPTY);
        // A real all-zero sample reports the same percentiles but a
        // non-zero count.
        let zeros = LatencyStats::from_samples(vec![0.0; 5]);
        assert!(!zeros.is_empty());
        assert_eq!(zeros.count, 5);
        assert_eq!(zeros.p99, 0.0);
        assert_ne!(zeros, empty);
    }

    #[test]
    fn histogram_percentiles_track_exact_sorted_percentiles() {
        let samples: Vec<f64> = (1..=1000).map(|i| (i * i) as f64 / 37.0).collect();
        let s = LatencyStats::from_samples(samples.iter().copied());
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        let growth = exion_telemetry::LogHistogram::default().growth();
        for (est, q) in [(s.p50, 0.50), (s.p95, 0.95), (s.p99, 0.99)] {
            let exact = percentile(&sorted, q);
            assert!(
                est / exact <= growth && exact / est <= growth,
                "p{q}: {est} vs {exact}"
            );
        }
        assert_eq!(s.max, *sorted.last().unwrap());
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn queue_depth_integration() {
        // Depth 1 over [0,4), 2 over [4,6), 0 after 8 → area 4+4+2 = 10 over 10.
        let mut events = vec![(0.0, 1), (4.0, 1), (6.0, -1), (8.0, -1)];
        let (mean, peak) = queue_depth_stats(&mut events, 10.0);
        assert!((mean - 1.0).abs() < 1e-12, "{mean}");
        assert_eq!(peak, 2);
    }

    #[test]
    fn depth_tracker_matches_the_batch_integrator() {
        // Stamps arrive out of time order (the +1 at t=1.0 lands after the
        // later boundary stamps, like a released arrival's back-dated
        // stamp), interleaved with watermark advances that never outrun a
        // future stamp. The online result must equal the batch sort's
        // bit for bit.
        let stream: [(f64, i64); 7] = [
            (0.0, 1),
            (4.0, 1),
            (4.0, -1),
            (1.0, 1),
            (6.0, -1),
            (7.5, 1),
            (9.0, -1),
        ];
        let mut tracker = DepthTracker::default();
        for (i, &(t, d)) in stream.iter().enumerate() {
            tracker.stamp(t, d);
            if i == 3 {
                // Everything stamped so far lies strictly before 5.0.
                tracker.advance(5.0);
            }
        }
        let online = tracker.finish(10.0);
        let mut events = stream.to_vec();
        let batch = queue_depth_stats(&mut events, 10.0);
        assert_eq!(online.0.to_bits(), batch.0.to_bits());
        assert_eq!(online.1, batch.1);

        assert_eq!(DepthTracker::default().finish(10.0), (0.0, 0));
    }
}
