//! The per-instance continuous batcher, residency-aware and preemptible.
//!
//! DDIM denoising is an iterative loop, so a running batch reaches a
//! scheduling point at every iteration boundary: finished requests leave,
//! queued requests are admitted into the freed slots without waiting for
//! the whole batch to drain (continuous batching at iteration granularity),
//! and — under a preemptive policy — running requests can be *parked*: their
//! denoising latent is stashed in the GSC (or spilled to DRAM at a priced
//! penalty) and they re-enter the queue with their step count intact.
//!
//! Scheduling *decisions* are delegated to a pluggable
//! [`SchedulerPolicy`]: the batcher builds a read-only [`SchedSnapshot`] of
//! its state and asks the policy for admission ordering, batch-join gating,
//! and preemption/swap verdicts; the batcher itself owns the *mechanism* —
//! residency pricing, migration penalties, the deadline-feasibility thrash
//! guard, and latent parking.
//!
//! An instance executes one model at a time; how much of that model's
//! weight working set is GSC-resident is tracked byte-accurately by a
//! [`GscCache`], and each iteration is priced by the resident *fraction*
//! rather than a warm/cold flag. Multi-tenant traffic therefore pays real
//! partial refills instead of fictitious full cold switches.

use std::collections::HashMap;
use std::sync::Arc;

use exion_model::config::{IterationPhase, ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::partition::{Interconnect, PartitionPlan};
use exion_sim::residency::{
    latent_state_bytes, model_weight_bytes, EvictionPolicy, GscCache, GscObject,
};

use crate::cost::CostModel;
use crate::metrics::InstanceStats;
use crate::policy::{SchedSnapshot, SchedulerPolicy};
use crate::queue::{key_from_bits, ReadyQueue};
use crate::request::{Completion, Request};

/// Precomputed per-model scheduling constants.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// The model configuration requests of this kind execute.
    pub config: ModelConfig,
    /// FFN-Reuse scheduling period under the active ablation.
    pub period: usize,
    /// DRAM weight working set of one iteration (bytes) — the GSC
    /// residency footprint.
    pub weight_bytes: u64,
    /// Parked denoising-latent state per request (bytes).
    pub latent_bytes: u64,
    /// Wall-clock cost of a full cold weight refill (ms) — the currency
    /// residency-aware seeding and cost-aware eviction rank tenants by.
    pub full_refill_ms: f64,
    /// Mean warm per-iteration latency at batch 1 (ms): the fastest rate
    /// the instance could possibly serve one request at — the feasibility
    /// currency of the preemption thrash guard (optimistic by design, so
    /// the guard only blocks requests that cannot make their deadline even
    /// with dedicated service).
    pub warm_step_ms: f64,
    /// Mean warm per-iteration latency at the deployment's full batch
    /// size (ms): the steady-state service currency admission control
    /// projects completion times with (SLOs scale the same full-batch
    /// generation time, so the two stay consistent).
    pub batched_step_ms: f64,
    /// How this model is cut across a gang (`None` when the cluster runs
    /// whole-model replicas only).
    pub partition: Option<PartitionPlan>,
}

/// Everything an [`Instance`] needs to make scheduling decisions: the
/// policy, the batch bound, and the per-model constant tables.
#[derive(Debug, Clone)]
pub struct SchedContext {
    /// Admission/preemption policy.
    pub policy: Arc<dyn SchedulerPolicy>,
    /// Maximum batch rows per instance.
    pub max_batch: usize,
    /// Wall-clock per byte over the DRAM interface (latent spill/reload
    /// pricing; from [`CostModel::dram_ms_per_byte`]).
    dram_ms_per_byte: f64,
    /// Transfer energy per byte over the DRAM interface (mJ).
    dram_mj_per_byte: f64,
    /// Wall-clock per byte over the gang interconnect (intra-unit latent
    /// shipping for sharded latent parking).
    link_ms_per_byte: f64,
    /// Per-transfer launch latency of the gang interconnect (ms) — the
    /// same fixed term every collective pays in
    /// [`exion_sim::partition::PartitionPlan::collective_ms`].
    link_latency_ms: f64,
    /// Transfer energy per byte over the gang interconnect (mJ).
    link_mj_per_byte: f64,
    models: HashMap<ModelKind, ModelInfo>,
}

impl SchedContext {
    /// Builds the context for `kinds`, pricing refills against `cost`'s
    /// hardware and intra-gang transfers against `interconnect`.
    /// `config_of` supplies each kind's model configuration (shrunk
    /// configs in tests, the real zoo in production runs); `plan_of`
    /// supplies each kind's gang partition plan (`None` for a replica-only
    /// cluster — the cluster passes its memoized plans so the pipeline op
    /// walks run once per simulator).
    pub fn build(
        policy: Arc<dyn SchedulerPolicy>,
        max_batch: usize,
        kinds: &[ModelKind],
        cost: &mut CostModel,
        interconnect: Interconnect,
        config_of: impl Fn(ModelKind) -> ModelConfig,
        plan_of: impl Fn(ModelKind) -> Option<PartitionPlan>,
    ) -> Self {
        let operand_bytes = cost.hw().operand_bytes();
        let models = kinds
            .iter()
            .map(|&k| {
                let config = config_of(k);
                let weight_bytes = model_weight_bytes(&config, operand_bytes);
                let partition = plan_of(k);
                let iters = config.iterations.max(1) as f64;
                // The fastest rate any unit in this placement could serve
                // one request at: a TP gang's combined step undercuts the
                // replica step, so a mixed cluster takes the minimum.
                let mut warm_step_ms = cost.generation_latency_ms(&config, 1) / iters;
                if let Some(plan) = &partition {
                    warm_step_ms =
                        warm_step_ms.min(cost.gang_generation_latency_ms(&config, plan, 1) / iters);
                }
                let batched_step_ms =
                    cost.generation_latency_ms(&config, max_batch.max(1) as u64) / iters;
                (
                    k,
                    ModelInfo {
                        config,
                        period: cost.period(&config),
                        weight_bytes,
                        latent_bytes: latent_state_bytes(&config, operand_bytes),
                        full_refill_ms: cost.full_refill_ms(weight_bytes),
                        warm_step_ms,
                        batched_step_ms,
                        partition,
                    },
                )
            })
            .collect();
        Self {
            policy,
            max_batch,
            dram_ms_per_byte: cost.dram_ms_per_byte(),
            dram_mj_per_byte: cost.dram_mj_per_byte(),
            link_ms_per_byte: 1.0 / (interconnect.link_gbps.max(1e-9) * 1e6),
            link_latency_ms: interconnect.latency_us * 1e-3,
            link_mj_per_byte: 8.0 * interconnect.pj_per_bit * 1e-9,
            models,
        }
    }

    /// The constants of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was not in the `kinds` the context was built for —
    /// the cluster builds the context from the trace's model mix, so every
    /// kind a request can carry is present by construction.
    pub fn info(&self, kind: ModelKind) -> &ModelInfo {
        self.models
            .get(&kind)
            .expect("scheduling context covers every traced model kind")
    }

    /// Wall-clock cost (ms) of moving `bytes` across the DRAM interface.
    pub(crate) fn transfer_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * self.dram_ms_per_byte
    }

    /// The admission-key penalty a foreign unit pays: a request whose
    /// latent still sits on a member of another unit costs a DRAM
    /// migration read everywhere outside that unit, so foreign schedulers
    /// defer it by exactly that reload time (resume affinity). The parking
    /// unit — identified by its member-id range `unit_first..unit_first +
    /// unit_len` — sees the unshifted key and wins ties.
    pub(crate) fn migration_penalty_ms(
        &self,
        r: &Request,
        unit_first: usize,
        unit_len: usize,
    ) -> f64 {
        match r.parked_on {
            Some(home)
                if r.steps_done > 0 && !(unit_first..unit_first + unit_len).contains(&home) =>
            {
                self.transfer_ms(self.info(r.model).latent_bytes)
            }
            _ => 0.0,
        }
    }

    /// Whether `r` can still meet its deadline if it starts now and runs
    /// uninterrupted at the warm per-step rate — the preemption thrash
    /// guard: parking a running batch for a request that will blow its
    /// deadline anyway only churns the GSC.
    pub(crate) fn deadline_feasible(&self, r: &Request, now_ms: f64) -> bool {
        now_ms + r.steps_left() as f64 * self.info(r.model).warm_step_ms <= r.deadline_ms()
    }
}

/// What one admission pass did: requests admitted into the batch and
/// requests parked (preempted) back into the queue, each stamped with the
/// boundary time. The cluster uses both for queue-depth accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmitOutcome {
    /// `(request id, boundary ms)` per admitted request.
    pub admitted: Vec<(u64, f64)>,
    /// `(request id, boundary ms)` per parked request.
    pub parked: Vec<(u64, f64)>,
    /// `(request id, boundary ms)` per admitted request that resumed from
    /// a previous park (a subset of `admitted`) — telemetry distinguishes
    /// fresh batch-joins from resumes.
    pub resumed: Vec<(u64, f64)>,
}

impl AdmitOutcome {
    /// Empties the outcome for reuse — the cluster loop keeps one
    /// `AdmitOutcome` alive across boundaries so the zero-allocation
    /// admission path never churns these vectors.
    pub fn clear(&mut self) {
        self.admitted.clear();
        self.parked.clear();
        self.resumed.clear();
    }

    /// Net change this boundary made to the unit's in-flight row count:
    /// admissions joined the running batch, parks left it. The cluster
    /// loop folds these deltas into its fleet-wide in-flight gauge so a
    /// metrics snapshot never re-scans every unit.
    pub fn inflight_delta(&self) -> i64 {
        self.admitted.len() as i64 - self.parked.len() as i64
    }
}

/// One accelerator instance's scheduler state.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance index within the cluster.
    pub id: usize,
    /// Local clock (ms). `f64::INFINITY` marks a drained instance.
    pub now_ms: f64,
    /// The model whose batch is currently running (sticky after drain).
    pub active_model: Option<ModelKind>,
    /// The running batch.
    pub running: Vec<Request>,
    /// First member id of the scheduling unit this instance belongs to
    /// (itself for replicas).
    unit_first: usize,
    /// Member count of the unit (1 for replicas).
    unit_len: usize,
    /// The partition shard this instance holds when it is a sharded-gang
    /// member (`None` for whole-model replicas); selects which
    /// [`GscObject`] keys its weight residency.
    shard: Option<u8>,
    /// Byte-accounted GSC residency of weight shards and parked latents.
    gsc: GscCache,
    busy_ms: f64,
    energy_mj: f64,
    iterations: u64,
    sparse_iterations: u64,
    batch_rows: u64,
    preemptions: u64,
    latent_spills: u64,
    weight_refill_iterations: u64,
    weight_hit_bytes: u64,
    weight_refill_bytes: u64,
    /// Latents eviction pushed out since the last drain: the cluster clears
    /// those requests' `parked_on` affinity hints (their latent now lives
    /// in DRAM, so no instance is preferable anymore).
    evicted_latents: Vec<u64>,
}

impl Instance {
    /// A fresh idle instance backed by `hw`'s GSC under `eviction`.
    pub fn new(id: usize, hw: &HwConfig, eviction: EvictionPolicy) -> Self {
        Self {
            id,
            now_ms: 0.0,
            active_model: None,
            running: Vec::new(),
            unit_first: id,
            unit_len: 1,
            shard: None,
            gsc: GscCache::new(hw.gsc_bytes() as u64, eviction),
            busy_ms: 0.0,
            energy_mj: 0.0,
            iterations: 0,
            sparse_iterations: 0,
            batch_rows: 0,
            preemptions: 0,
            latent_spills: 0,
            weight_refill_iterations: 0,
            weight_hit_bytes: 0,
            weight_refill_bytes: 0,
            evicted_latents: Vec::new(),
        }
    }

    /// A fresh gang-member instance holding partition shard `shard` of
    /// every model it serves.
    pub fn new_shard(id: usize, hw: &HwConfig, eviction: EvictionPolicy, shard: u8) -> Self {
        Self {
            shard: Some(shard),
            ..Self::new(id, hw, eviction)
        }
    }

    /// Declares this instance a member of the unit spanning instance ids
    /// `first..first + len` (the gang constructor calls this; replicas
    /// default to the singleton unit of their own id).
    pub(crate) fn set_unit(&mut self, first: usize, len: usize) {
        self.unit_first = first;
        self.unit_len = len.max(1);
    }

    /// Whether the instance has no running batch.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// The read-only view of this instance's state a [`SchedulerPolicy`]
    /// decides against.
    pub fn snapshot<'a>(&'a self, ctx: &SchedContext) -> SchedSnapshot<'a> {
        SchedSnapshot {
            instance: self.id,
            now_ms: self.now_ms,
            active_model: self.active_model,
            running: &self.running,
            max_batch: ctx.max_batch,
            steps_into_period: self
                .active_model
                .map(|m| self.steps_into_period(ctx.info(m).period))
                .unwrap_or(0),
        }
    }

    /// The GSC key of the weights this instance holds for `kind`: the
    /// whole model for replicas, this member's shard for gang members.
    pub fn weight_obj(&self, kind: ModelKind) -> GscObject {
        match self.shard {
            None => GscObject::Weights(kind),
            Some(s) => GscObject::WeightShard {
                model: kind,
                shard: s,
            },
        }
    }

    /// The weight working-set bytes this instance is responsible for.
    pub(crate) fn weight_footprint(&self, info: &ModelInfo) -> u64 {
        match self.shard {
            None => info.weight_bytes,
            Some(s) => info
                .partition
                .as_ref()
                .expect("sharded members exist only when the context carries plans")
                .shard_weight_bytes(s as usize),
        }
    }

    /// Resident fraction of `kind`'s weight working set (whole model or
    /// this member's shard) in this instance's GSC.
    pub fn weight_residency(&self, kind: ModelKind) -> f64 {
        self.gsc.resident_fraction(self.weight_obj(kind))
    }

    /// Moves `bytes` of latent state across the DRAM interface (one way):
    /// the transfer occupies the instance, so it counts toward the busy
    /// time and energy the report compares across policies — not just the
    /// clock.
    fn latent_transfer(&mut self, bytes: u64, ctx: &SchedContext) {
        let ms = bytes as f64 * ctx.dram_ms_per_byte;
        self.now_ms += ms;
        self.busy_ms += ms;
        self.energy_mj += bytes as f64 * ctx.dram_mj_per_byte;
    }

    /// Moves `bytes` of latent state across the gang interconnect (one
    /// way): intra-unit latent shipping for sharded latent parking. Pays
    /// the per-transfer launch latency plus the bandwidth term, like every
    /// other transfer over this link.
    fn link_transfer(&mut self, bytes: u64, ctx: &SchedContext) {
        let ms = ctx.link_latency_ms + bytes as f64 * ctx.link_ms_per_byte;
        self.now_ms += ms;
        self.busy_ms += ms;
        self.energy_mj += bytes as f64 * ctx.link_mj_per_byte;
    }

    /// Steps the running members sit past their last dense boundary.
    /// Members admitted under [`crate::policy::SparsityAware`] stay
    /// mutually aligned, so the first member is representative; under
    /// other policies the value is only used for reporting.
    fn steps_into_period(&self, period: usize) -> usize {
        self.running
            .first()
            .map(|r| r.steps_done % period)
            .unwrap_or(0)
    }

    /// Makes `model` the active one, moving the weight pin.
    fn set_active(&mut self, model: ModelKind) {
        if let Some(old) = self.active_model {
            if old != model {
                self.gsc.set_pinned(self.weight_obj(old), false);
            }
        }
        self.active_model = Some(model);
    }

    /// Releases the weight pin of `kind` (gangs unpin follower shards on a
    /// model switch; the leader unpins itself through [`Self::set_active`]).
    pub(crate) fn unpin_weights(&mut self, kind: ModelKind) {
        self.gsc.set_pinned(self.weight_obj(kind), false);
    }

    /// Prices the eviction fallout of a GSC request: parked latents pushed
    /// out are dirty state and must be written back to DRAM now (and their
    /// requests' resume-affinity hints become stale); weight shards are
    /// clean and simply re-stream on their next use.
    fn price_evictions(&mut self, evicted: &[(GscObject, u64)], ctx: &SchedContext) {
        for &(obj, bytes) in evicted {
            if let GscObject::Latent(id) = obj {
                self.latent_transfer(bytes, ctx);
                self.latent_spills += 1;
                self.evicted_latents.push(id);
            }
        }
    }

    /// Drains the ids of latents evicted since the last call (the cluster
    /// uses them to clear stale `parked_on` hints in the shared queue).
    pub(crate) fn take_evicted_latents(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.evicted_latents)
    }

    /// Summed GSC-resident bytes (weights and parked latents) — migration
    /// accounting.
    pub(crate) fn gsc_occupancy_bytes(&self) -> u64 {
        self.gsc.occupancy_bytes()
    }

    /// Parks every running request straight to DRAM for a placement
    /// migration: each latent pays the write-back transfer on this
    /// instance's clock, the request re-enters `queue` with its step count
    /// intact (a migration is a preemption — the counter travels with the
    /// request), and the active weight pin is released so the teardown
    /// leaves nothing pinned. Returns `(id, drain ms)` stamps.
    pub(crate) fn drain_running(
        &mut self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
    ) -> Vec<(u64, f64)> {
        if let Some(model) = self.active_model {
            self.gsc.set_pinned(self.weight_obj(model), false);
        }
        let mut stamps = Vec::new();
        for mut r in std::mem::take(&mut self.running) {
            let info = ctx.info(r.model);
            self.latent_transfer(info.latent_bytes, ctx);
            self.latent_spills += 1;
            r.preemptions += 1;
            self.preemptions += 1;
            r.parked_on = None;
            r.ready_ms = self.now_ms;
            stamps.push((r.id, self.now_ms));
            queue.push(r, ctx);
        }
        stamps
    }

    /// Fault-path drain: this instance just died. Running requests whose
    /// latents were previously checkpointed to DRAM requeue with
    /// `steps_done` rolled back to the checkpoint — nothing is billed,
    /// the spill was already priced when the checkpoint was taken — and
    /// the rest are destroyed (returned for lost accounting). The active
    /// weight pin is released so teardown leaves nothing pinned.
    pub(crate) fn drain_running_lost(
        &mut self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        at_ms: f64,
    ) -> (Vec<(u64, f64)>, Vec<Request>) {
        if let Some(model) = self.active_model {
            self.gsc.set_pinned(self.weight_obj(model), false);
        }
        let mut requeued = Vec::new();
        let mut lost = Vec::new();
        for mut r in std::mem::take(&mut self.running) {
            match r.checkpointed_steps {
                Some(step) => {
                    r.steps_done = step;
                    r.preemptions += 1;
                    self.preemptions += 1;
                    r.parked_on = None;
                    r.ready_ms = at_ms;
                    requeued.push((r.id, at_ms));
                    queue.push(r, ctx);
                }
                None => lost.push(r),
            }
        }
        (requeued, lost)
    }

    /// Opt-in periodic latent checkpointing: every running request whose
    /// step count just crossed a multiple of `every_steps` spills its
    /// latent to DRAM — a priced one-way transfer on this instance's
    /// clock — and records the checkpointed step, bounding what a later
    /// crash can destroy. Returns `(spills, bytes)` for fault reporting.
    pub(crate) fn checkpoint_running(
        &mut self,
        ctx: &SchedContext,
        every_steps: usize,
    ) -> (usize, u64) {
        let every = every_steps.max(1);
        let mut spills = 0usize;
        let mut bytes = 0u64;
        for i in 0..self.running.len() {
            let r = self.running[i];
            if r.steps_done > 0
                && r.steps_done.is_multiple_of(every)
                && r.checkpointed_steps != Some(r.steps_done)
            {
                let latent_bytes = ctx.info(r.model).latent_bytes;
                self.latent_transfer(latent_bytes, ctx);
                self.latent_spills += 1;
                self.running[i].checkpointed_steps = Some(r.steps_done);
                spills += 1;
                bytes += latent_bytes;
            }
        }
        (spills, bytes)
    }

    /// Parks one running request at this iteration boundary. The latent
    /// goes to the *least-GSC-pressured* member of this unit — among the
    /// members that can actually house it (leader or `peers` follower,
    /// ranked by capacity not already committed to pinned shards or other
    /// parked latents) — cutting leader-GSC thrash under heavy preemption;
    /// ties prefer the leader, so single-member units behave exactly as
    /// before. Only when *no* member could house the latent even by
    /// evicting every unpinned entry does it spill to DRAM at a priced
    /// write-back. Either way the request re-enters `queue` with
    /// `steps_done` intact — preempt/resume conserves DDIM iterations by
    /// construction, since the step counter travels with the request.
    fn park(
        &mut self,
        mut r: Request,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        peers: &mut [Instance],
    ) -> (u64, f64) {
        let info = ctx.info(r.model);
        r.preemptions += 1;
        self.preemptions += 1;
        let latent = GscObject::Latent(r.id);
        // Sharded latent parking: among the unit members that can house
        // the latent (admission pre-check per member — evicting every
        // unpinned entry must suffice, else requesting would uselessly
        // push other tenants out first), rank by headroom not already
        // committed to pins or parked latents. The selection key is the
        // explicit total order `(headroom desc, member id asc)`: equal
        // headroom always resolves to the lowest member id — the leader
        // first, then followers in gang order — so gang runs stay
        // byte-identical across platforms no matter how member headrooms
        // collide (and replicas, whose `peers` slice is empty, always
        // park locally).
        let mut sink: Option<(u64, usize, Option<usize>)> = None; // (headroom, member id, peer idx; None = leader)
        if info.latent_bytes <= self.gsc.evictable_bytes() {
            sink = Some((self.gsc.park_headroom_bytes(), self.id, None));
        }
        for (i, p) in peers.iter().enumerate() {
            if info.latent_bytes <= p.gsc.evictable_bytes() {
                let h = p.gsc.park_headroom_bytes();
                let better = match sink {
                    None => true,
                    Some((best_h, best_id, _)) => {
                        (h, std::cmp::Reverse(p.id)) > (best_h, std::cmp::Reverse(best_id))
                    }
                };
                if better {
                    sink = Some((h, p.id, Some(i)));
                }
            }
        }
        let refill_cost_ms = info.latent_bytes as f64 * ctx.dram_ms_per_byte;
        match sink {
            // No member can house the latent: spill straight to DRAM.
            None => {
                self.latent_transfer(info.latent_bytes, ctx);
                self.latent_spills += 1;
                r.parked_on = None;
            }
            Some((_, _, None)) => {
                let out = self
                    .gsc
                    .request(latent, info.latent_bytes, refill_cost_ms, false);
                self.price_evictions(&out.evicted, ctx);
                debug_assert_eq!(
                    out.resident_bytes, info.latent_bytes,
                    "pre-checked latent must fit after eviction"
                );
                r.parked_on = Some(self.id);
            }
            Some((_, _, Some(i))) => {
                let peer = &mut peers[i];
                // Ship the latent across the gang link to the chosen
                // member; any latents its arrival evicts there are
                // spilled (and billed) by that member.
                self.link_transfer(info.latent_bytes, ctx);
                let out = peer
                    .gsc
                    .request(latent, info.latent_bytes, refill_cost_ms, false);
                peer.price_evictions(&out.evicted, ctx);
                debug_assert_eq!(
                    out.resident_bytes, info.latent_bytes,
                    "pre-checked latent must fit after eviction"
                );
                r.parked_on = Some(peer.id);
                // The park completes only when the slowest participant is
                // done (the gang re-syncs member clocks afterwards).
                self.now_ms = self.now_ms.max(peer.now_ms);
            }
        }
        // The request becomes admissible again only once the park (and any
        // spill it priced) has finished on this instance's clock.
        r.ready_ms = self.now_ms;
        let stamp = (r.id, self.now_ms);
        queue.push(r, ctx);
        stamp
    }

    /// Re-establishes a previously parked request's latent when it re-enters
    /// a batch: a GSC hit on this member is free; a latent parked on a
    /// sibling member of the same unit is pulled across the gang link; a
    /// DRAM-spilled (or evicted, or cross-unit migrated) latent pays the
    /// DRAM read back.
    fn resume(&mut self, r: &mut Request, ctx: &SchedContext, peers: &mut [Instance]) {
        let latent = GscObject::Latent(r.id);
        if self.gsc.resident_fraction(latent) >= 1.0 {
            self.gsc.remove(latent);
        } else if let Some(peer) = r
            .parked_on
            .and_then(|home| peers.iter_mut().find(|p| p.id == home))
        {
            let held = peer.gsc.remove(latent);
            if held > 0 {
                self.link_transfer(ctx.info(r.model).latent_bytes, ctx);
            } else {
                self.latent_transfer(ctx.info(r.model).latent_bytes, ctx);
            }
        } else {
            self.gsc.remove(latent);
            self.latent_transfer(ctx.info(r.model).latent_bytes, ctx);
        }
        r.parked_on = None;
    }

    /// Releases a parked-latent copy after the request resumed on *another*
    /// unit. If this instance still held the latent on chip, the
    /// migration physically required writing it back to DRAM for the
    /// resuming instance to read — bill that write here (the read was
    /// billed by the resumer). Either way the entry is dropped so it
    /// neither depresses this instance's weight residency nor is mispriced
    /// as a dirty spill when eviction eventually finds it.
    pub fn discard_latent(&mut self, id: u64, ctx: &SchedContext) {
        let bytes = self.gsc.remove(GscObject::Latent(id));
        if bytes > 0 {
            self.latent_transfer(bytes, ctx);
            self.latent_spills += 1;
        }
    }

    /// The admission-ordering key of `r` on *this* instance: the policy key
    /// shifted by the latent-migration penalty when the request's parked
    /// latent lives on another unit's GSC (resume affinity — the parking
    /// unit sees the unshifted key and wins ties).
    fn local_key(&self, r: &Request, ctx: &SchedContext, snap: &SchedSnapshot<'_>) -> (f64, u64) {
        let (primary, id) = ctx.policy.admission_key(r, snap);
        (
            primary + ctx.migration_penalty_ms(r, self.unit_first, self.unit_len),
            id,
        )
    }

    /// Scores one model's seed candidacy: its most urgent visible key
    /// shifted by the refill cost of this member's non-resident weight
    /// fraction, folded into the running best by the strict
    /// `(score, key)` order (the id component keeps the argmin unique, so
    /// model iteration order never matters).
    fn fold_seed_candidate(
        &self,
        model: ModelKind,
        key: (f64, u64),
        ctx: &SchedContext,
        best: &mut Option<(f64, (f64, u64), ModelKind)>,
    ) {
        let info = ctx.info(model);
        let refill =
            (1.0 - self.weight_residency(model)) * ctx.transfer_ms(self.weight_footprint(info));
        let score = key.0 + refill;
        let better = match best {
            None => true,
            Some((s, k, _)) => (score, key) < (*s, *k),
        };
        if better {
            *best = Some((score, key, model));
        }
    }

    /// Residency-aware seed choice for an idle instance: among the queued
    /// models, pick the one minimizing the policy key *adjusted by the
    /// refill cost of its non-resident weight fraction* (of this member's
    /// shard, for gang members). A tenant whose shards this instance
    /// already holds wins unless another model's most urgent request beats
    /// it by more than the switch actually costs.
    ///
    /// Indexed: each fresh bucket's first element is its model's minimum
    /// (fresh requests are visible and penalty-free by construction), and
    /// the small deferred list folds its per-unit local keys on top — so
    /// the seed scan is O(models + deferred), not O(queue).
    fn seed_model(
        &self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        snap: &SchedSnapshot<'_>,
    ) -> ModelKind {
        let mut mins = std::mem::take(&mut queue.scratch_seed);
        mins.clear();
        for (model, bucket) in queue.fresh_buckets() {
            if let Some(&(kb, id)) = bucket.iter().next() {
                mins.push((model, (key_from_bits(kb), id)));
            }
        }
        for &id in queue.deferred_ids() {
            let r = &queue.as_slice()[queue.slot(id)];
            if r.ready_ms > self.now_ms {
                continue;
            }
            let key = self.local_key(r, ctx, snap);
            match mins.iter_mut().find(|(m, _)| *m == r.model) {
                Some((_, k)) => {
                    if key < *k {
                        *k = key;
                    }
                }
                None => mins.push((r.model, key)),
            }
        }
        let mut best: Option<(f64, (f64, u64), ModelKind)> = None;
        for &(model, key) in mins.iter() {
            self.fold_seed_candidate(model, key, ctx, &mut best);
        }
        mins.clear();
        queue.scratch_seed = mins;
        best.expect("seed_model called with a visible queue member")
            .2
    }

    /// The reference (pre-index) seed scan over the flat queue slice —
    /// kept verbatim for [`Self::admit_reference`].
    fn seed_model_reference(
        &self,
        queue: &[Request],
        ctx: &SchedContext,
        snap: &SchedSnapshot<'_>,
    ) -> ModelKind {
        let mut best: Option<(f64, (f64, u64), ModelKind)> = None;
        let mut seen: Vec<ModelKind> = Vec::new();
        for r in queue.iter().filter(|r| r.ready_ms <= self.now_ms) {
            if seen.contains(&r.model) {
                continue;
            }
            seen.push(r.model);
            let key = queue
                .iter()
                .filter(|q| q.model == r.model && q.ready_ms <= self.now_ms)
                .map(|q| self.local_key(q, ctx, snap))
                .min_by(|a, b| a.partial_cmp(b).expect("policy keys are finite"))
                .expect("model taken from a visible queue member");
            self.fold_seed_candidate(r.model, key, ctx, &mut best);
        }
        best.expect("seed_model called with a non-empty queue").2
    }

    /// Admits queued requests into free slots at this iteration boundary,
    /// preempting running ones first when the policy demands it.
    ///
    /// An idle instance seeds a batch of the residency-adjusted most urgent
    /// queued model; a busy one tops up with its active model, gated by the
    /// policy's [`SchedulerPolicy::admits_join`] rule. A queued cross-model
    /// request the policy's [`SchedulerPolicy::preempt_for`] approves (and
    /// the thrash guard deems feasible) parks the whole batch; a same-model
    /// request approved by [`SchedulerPolicy::swap_for`] displaces the
    /// worst member of a full batch. `peers` are the other members of this
    /// unit (empty for replicas) — parked latents land on whichever member
    /// is least GSC-pressured.
    pub fn admit(
        &mut self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        peers: &mut [Instance],
    ) -> AdmitOutcome {
        let mut outcome = AdmitOutcome::default();
        self.admit_into(queue, ctx, peers, &mut outcome);
        outcome
    }

    /// [`Self::admit`] writing into a caller-owned outcome buffer — the
    /// zero-allocation boundary path. Together with the queue's scratch
    /// vectors, a steady-state boundary performs no heap allocation at
    /// all.
    ///
    /// Decision structure (each sub-linear in queue depth):
    ///
    /// * *urgency / seed* — every fresh bucket's first element is its
    ///   model's admission minimum (visible and penalty-free by the queue
    ///   contract), merged with the small deferred list's per-unit local
    ///   keys: O(models + deferred);
    /// * *preempt / swap probes* — consulted only for
    ///   [`SchedulerPolicy::preemptive`] policies; ascending bucket scans
    ///   early-exit at the policy's [`SchedulerPolicy::preempt_key_bound`]
    ///   / [`SchedulerPolicy::swap_key_bound`] when it exposes one, and
    ///   stop at the first feasible candidate either way (ascending keys
    ///   make it the minimum). Snapshot-dependent `preempt_for`/`swap_for`
    ///   overrides on *non*-preemptive policies are not consulted — a
    ///   policy that parks must say so through `preemptive()`;
    /// * *batch join* — the first `free` bucket entries merged with the
    ///   visible same-model deferred keys: O(free + deferred +
    ///   log queue) per admitted request.
    ///
    /// Ties are broken everywhere by the explicit `(key, request id)`
    /// total order, so every argmin is unique and bucket/model iteration
    /// order never leaks into decisions.
    pub fn admit_into(
        &mut self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        peers: &mut [Instance],
        outcome: &mut AdmitOutcome,
    ) {
        outcome.clear();
        // Only *ready* requests are admissible: a request parked on another
        // instance at a later clock must not be resumed before its park
        // happened. Fresh (never-preempted) requests are ready by the
        // queue's release contract; the deferred list carries the ones
        // whose visibility genuinely varies.
        let now = self.now_ms;
        #[cfg(debug_assertions)]
        {
            queue.debug_check(ctx);
            for (_, bucket) in queue.fresh_buckets() {
                for &(_, id) in bucket.iter() {
                    debug_assert!(
                        queue.as_slice()[queue.slot(id)].ready_ms <= now,
                        "fresh request {id} enqueued before admissible"
                    );
                }
            }
        }
        // The policy's most urgent visible queued request (keys shifted by
        // the resume-affinity migration penalty on foreign units).
        let urgent_model = {
            let snap = self.snapshot(ctx);
            let mut best: Option<(f64, u64, ModelKind)> = None;
            for (model, bucket) in queue.fresh_buckets() {
                if let Some(&(kb, id)) = bucket.iter().next() {
                    let key = (key_from_bits(kb), id);
                    if best.is_none_or(|(a, b, _)| key < (a, b)) {
                        best = Some((key.0, key.1, model));
                    }
                }
            }
            for &id in queue.deferred_ids() {
                let r = &queue.as_slice()[queue.slot(id)];
                if r.ready_ms <= now {
                    let key = self.local_key(r, ctx, &snap);
                    if best.is_none_or(|(a, b, _)| key < (a, b)) {
                        best = Some((key.0, key.1, r.model));
                    }
                }
            }
            match best {
                Some((_, _, model)) => model,
                None => return,
            }
        };

        if self.running.is_empty() {
            let model = {
                let snap = self.snapshot(ctx);
                self.seed_model(queue, ctx, &snap)
            };
            self.set_active(model);
        } else {
            let model = self
                .active_model
                .expect("a non-empty batch always has an active model");
            if urgent_model != model {
                // The preemption trigger is the most urgent *feasible*
                // cross-model request the policy approves a park for: a
                // doomed request cannot justify a park (thrash guard — past
                // saturation every deadline is blown and parks stop paying
                // for themselves), but neither may it shadow a feasible
                // request queued behind it.
                let trigger = if !ctx.policy.preemptive() {
                    None
                } else {
                    let snap = self.snapshot(ctx);
                    let bound = ctx.policy.preempt_key_bound(&snap);
                    let mut best: Option<(f64, u64, ModelKind)> = None;
                    for (bucket_model, bucket) in queue.fresh_buckets() {
                        if bucket_model == model {
                            continue;
                        }
                        for &(kb, id) in bucket.iter() {
                            let k0 = key_from_bits(kb);
                            if let Some(b) = bound {
                                // Keys ascend: past the bound nothing in
                                // this bucket passes preempt_for anymore.
                                if k0 >= b {
                                    break;
                                }
                            }
                            let r = &queue.as_slice()[queue.slot(id)];
                            if bound.is_none() && !ctx.policy.preempt_for(r, &snap) {
                                continue;
                            }
                            if !ctx.deadline_feasible(r, now) {
                                continue;
                            }
                            // First approved feasible entry in ascending
                            // key order is this bucket's minimum.
                            if best.is_none_or(|(a, b2, _)| (k0, id) < (a, b2)) {
                                best = Some((k0, id, bucket_model));
                            }
                            break;
                        }
                    }
                    for &id in queue.deferred_ids() {
                        let r = &queue.as_slice()[queue.slot(id)];
                        if r.model != model
                            && r.ready_ms <= now
                            && ctx.policy.preempt_for(r, &snap)
                            && ctx.deadline_feasible(r, now)
                        {
                            let key = self.local_key(r, ctx, &snap);
                            if best.is_none_or(|(a, b2, _)| key < (a, b2)) {
                                best = Some((key.0, key.1, r.model));
                            }
                        }
                    }
                    best.map(|(_, _, m)| m)
                };
                if let Some(switch_to) = trigger {
                    // Iteration-boundary preemption: park the whole batch
                    // and switch to the urgent tenant immediately instead
                    // of head-of-line blocking it for a full generation.
                    // Unpin the outgoing shards first — they are clean and
                    // about to lose the instance anyway, so the parked
                    // latents may claim their space instead of being forced
                    // into DRAM spills.
                    self.gsc.set_pinned(self.weight_obj(model), false);
                    for r in std::mem::take(&mut self.running) {
                        outcome.parked.push(self.park(r, queue, ctx, peers));
                    }
                    self.set_active(switch_to);
                } else {
                    // Anti-starvation drain: stop topping up so the batch
                    // can empty and the instance can switch.
                    return;
                }
            } else {
                if self.running.len() >= ctx.max_batch {
                    // Same-model swap: a full batch yields its worst member
                    // to a strictly more urgent feasible request — when the
                    // policy approves the swap.
                    let swap = ctx.policy.preemptive() && {
                        let snap = self.snapshot(ctx);
                        let bound = ctx.policy.swap_key_bound(&snap);
                        let mut found = false;
                        if let Some(bucket) = queue.fresh_bucket(model) {
                            for &(kb, id) in bucket.iter() {
                                let k0 = key_from_bits(kb);
                                if let Some(b) = bound {
                                    if k0 >= b {
                                        break;
                                    }
                                }
                                let r = &queue.as_slice()[queue.slot(id)];
                                if bound.is_none() && !ctx.policy.swap_for(r, &snap) {
                                    continue;
                                }
                                if ctx.deadline_feasible(r, now) {
                                    found = true;
                                    break;
                                }
                            }
                        }
                        if !found {
                            for &id in queue.deferred_ids() {
                                let r = &queue.as_slice()[queue.slot(id)];
                                if r.model == model
                                    && r.ready_ms <= now
                                    && ctx.policy.swap_for(r, &snap)
                                    && ctx.deadline_feasible(r, now)
                                {
                                    found = true;
                                    break;
                                }
                            }
                        }
                        found
                    };
                    if swap {
                        // `running` is id-sorted by construction, matching
                        // the historical post-admit sort order, so this
                        // argmax picks the same victim (`max_by` keeps the
                        // last of equal deadlines — the highest id).
                        let worst = (0..self.running.len())
                            .max_by(|&a, &b| {
                                self.running[a]
                                    .deadline_ms()
                                    .total_cmp(&self.running[b].deadline_ms())
                            })
                            .expect("non-empty running batch");
                        let victim = self.running.remove(worst);
                        outcome.parked.push(self.park(victim, queue, ctx, peers));
                    } else {
                        return;
                    }
                }
                let snap = self.snapshot(ctx);
                if !ctx.policy.admits_join(&snap) {
                    return;
                }
            }
        }

        let model = self
            .active_model
            .expect("seeding or the running batch set the active model above");
        let free = ctx.max_batch.saturating_sub(self.running.len());
        let mut cand = std::mem::take(&mut queue.scratch_keys);
        let mut slots = std::mem::take(&mut queue.scratch_slots);
        cand.clear();
        slots.clear();
        {
            let snap = self.snapshot(ctx);
            // Only the first `free` bucket entries can win slots (the
            // bucket is already in admission order); the deferred list
            // contributes its visible same-model members at their
            // penalty-shifted local keys.
            if let Some(bucket) = queue.fresh_bucket(model) {
                for &(kb, id) in bucket.iter().take(free) {
                    cand.push((key_from_bits(kb), id));
                }
            }
            for &id in queue.deferred_ids() {
                let r = &queue.as_slice()[queue.slot(id)];
                if r.model == model && r.ready_ms <= now {
                    cand.push(self.local_key(r, ctx, &snap));
                }
            }
        }
        cand.sort_by(|a, b| a.partial_cmp(b).expect("policy keys are finite"));
        cand.truncate(free);
        slots.extend(cand.iter().map(|&(_, id)| queue.slot(id)));
        // Remove back-to-front so earlier slots stay valid — the exact
        // historical swap_remove order, which keeps the flat entry slice
        // and the admitted stamps byte-identical.
        slots.sort_unstable_by(|a, b| b.cmp(a));
        for &slot in slots.iter() {
            let mut r = queue.take_slot(slot, ctx);
            if r.steps_done > 0 {
                self.resume(&mut r, ctx, peers);
                outcome.resumed.push((r.id, self.now_ms));
            }
            if r.admitted_ms.is_none() {
                r.admitted_ms = Some(self.now_ms);
            }
            outcome.admitted.push((r.id, self.now_ms));
            // Keep the batch id-sorted by construction (no per-boundary
            // re-sort).
            let pos = self.running.partition_point(|q| q.id < r.id);
            self.running.insert(pos, r);
        }
        cand.clear();
        slots.clear();
        queue.scratch_keys = cand;
        queue.scratch_slots = slots;
        debug_assert!(
            self.running.windows(2).all(|w| w[0].id < w[1].id),
            "running batch stays id-sorted by construction"
        );
    }

    /// The retained pre-index scheduler: the exact historical linear-scan
    /// algorithm over the flat queue slice, decision-for-decision the
    /// specification [`Self::admit_into`] is differentially tested
    /// against (`tests/scheduler_diff.rs`). Not part of the supported API.
    #[doc(hidden)]
    pub fn admit_reference(
        &mut self,
        queue: &mut ReadyQueue,
        ctx: &SchedContext,
        peers: &mut [Instance],
    ) -> AdmitOutcome {
        let mut outcome = AdmitOutcome::default();
        let now = self.now_ms;
        let visible = |r: &Request| r.ready_ms <= now;
        let urgent_model = {
            let snap = self.snapshot(ctx);
            let q = queue.as_slice();
            let Some(urgent_idx) = (0..q.len()).filter(|&i| visible(&q[i])).min_by(|&a, &b| {
                self.local_key(&q[a], ctx, &snap)
                    .partial_cmp(&self.local_key(&q[b], ctx, &snap))
                    .expect("policy keys are finite")
            }) else {
                return outcome;
            };
            q[urgent_idx].model
        };

        if self.running.is_empty() {
            let snap = self.snapshot(ctx);
            let model = self.seed_model_reference(queue.as_slice(), ctx, &snap);
            self.set_active(model);
        } else {
            let model = self
                .active_model
                .expect("a non-empty batch always has an active model");
            if urgent_model != model {
                let trigger = {
                    let snap = self.snapshot(ctx);
                    let q = queue.as_slice();
                    (0..q.len())
                        .filter(|&i| {
                            let r = &q[i];
                            r.model != model
                                && visible(r)
                                && ctx.policy.preempt_for(r, &snap)
                                && ctx.deadline_feasible(r, now)
                        })
                        .min_by(|&a, &b| {
                            self.local_key(&q[a], ctx, &snap)
                                .partial_cmp(&self.local_key(&q[b], ctx, &snap))
                                .expect("policy keys are finite")
                        })
                };
                if let Some(t) = trigger {
                    let switch_to = queue.as_slice()[t].model;
                    self.gsc.set_pinned(self.weight_obj(model), false);
                    for r in std::mem::take(&mut self.running) {
                        outcome.parked.push(self.park(r, queue, ctx, peers));
                    }
                    self.set_active(switch_to);
                } else {
                    return outcome;
                }
            } else {
                if self.running.len() >= ctx.max_batch {
                    let swap = {
                        let snap = self.snapshot(ctx);
                        queue.iter().any(|r| {
                            r.model == model
                                && visible(r)
                                && ctx.policy.swap_for(r, &snap)
                                && ctx.deadline_feasible(r, now)
                        })
                    };
                    if swap {
                        let worst = (0..self.running.len())
                            .max_by(|&a, &b| {
                                self.running[a]
                                    .deadline_ms()
                                    .total_cmp(&self.running[b].deadline_ms())
                            })
                            .expect("non-empty running batch");
                        let victim = self.running.swap_remove(worst);
                        outcome.parked.push(self.park(victim, queue, ctx, peers));
                    } else {
                        return outcome;
                    }
                }
                let snap = self.snapshot(ctx);
                if !ctx.policy.admits_join(&snap) {
                    return outcome;
                }
            }
        }

        let model = self
            .active_model
            .expect("seeding or the running batch set the active model above");
        let free = ctx.max_batch.saturating_sub(self.running.len());
        let mut candidates: Vec<usize> = {
            let snap = self.snapshot(ctx);
            let q = queue.as_slice();
            let mut c: Vec<usize> = (0..q.len())
                .filter(|&i| q[i].model == model && visible(&q[i]))
                .collect();
            c.sort_by(|&a, &b| {
                self.local_key(&q[a], ctx, &snap)
                    .partial_cmp(&self.local_key(&q[b], ctx, &snap))
                    .expect("policy keys are finite")
            });
            c
        };
        candidates.truncate(free);
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for idx in candidates {
            let mut r = queue.take_slot(idx, ctx);
            if r.steps_done > 0 {
                self.resume(&mut r, ctx, peers);
                outcome.resumed.push((r.id, self.now_ms));
            }
            if r.admitted_ms.is_none() {
                r.admitted_ms = Some(self.now_ms);
            }
            outcome.admitted.push((r.id, self.now_ms));
            self.running.push(r);
        }
        self.running.sort_by_key(|r| r.id);
        outcome
    }

    /// The FFN-Reuse phase the running batch executes next: sparse only
    /// when every member is in its sparse phase; one member at a dense
    /// boundary forces a dense (bitmask regenerating) pass for the whole
    /// batch.
    pub(crate) fn batch_phase(&self, period: usize) -> IterationPhase {
        let all_sparse = self.running.iter().all(|r| r.steps_done % period != 0);
        if all_sparse {
            IterationPhase::Sparse
        } else {
            IterationPhase::Dense
        }
    }

    /// Touches (and refills toward full residency) this instance's weight
    /// entry `obj` of footprint `full_bytes`, pricing eviction fallout, and
    /// returns the warm fraction found resident — the residency step every
    /// executed iteration starts with, shared by replicas (whole model) and
    /// gang members (their shard).
    pub(crate) fn touch_weights(
        &mut self,
        obj: GscObject,
        full_bytes: u64,
        refill_cost_ms: f64,
        ctx: &SchedContext,
    ) -> f64 {
        let out = self.gsc.request(obj, full_bytes, refill_cost_ms, true);
        self.price_evictions(&out.evicted, ctx);
        self.weight_hit_bytes += out.prior_bytes;
        self.weight_refill_bytes += out.refilled_bytes;
        if out.refilled_bytes > 0 {
            self.weight_refill_iterations += 1;
        }
        out.prior_fraction(full_bytes)
    }

    /// Advances this instance past one externally priced iteration of the
    /// running batch: clock, busy time, energy, batch accounting, and the
    /// completions the step produced — appended into the caller-owned
    /// buffer (the zero-allocation boundary path reuses one completions
    /// vector across all events).
    pub(crate) fn finish_iteration_into(
        &mut self,
        latency_ms: f64,
        energy_mj: f64,
        phase: IterationPhase,
        done: &mut Vec<Completion>,
    ) {
        let batch = self.running.len() as u64;
        self.now_ms += latency_ms;
        self.busy_ms += latency_ms;
        self.energy_mj += energy_mj;
        self.iterations += 1;
        if phase.is_sparse() {
            self.sparse_iterations += 1;
        }
        self.batch_rows += batch;

        let now = self.now_ms;
        let id = self.id;
        self.running.retain_mut(|r| {
            r.steps_done += 1;
            if r.is_done() {
                done.push(Completion {
                    id: r.id,
                    model: r.model,
                    arrival_ms: r.arrival_ms,
                    admitted_ms: r
                        .admitted_ms
                        .expect("a running request was stamped at first admission"),
                    finished_ms: now,
                    slo_ms: r.slo_ms,
                    instance: id,
                    preemptions: r.preemptions,
                    steps: r.total_steps,
                    degraded: r.degraded,
                });
                false
            } else {
                true
            }
        });
    }

    /// Advances a gang follower in lockstep with its leader: the member is
    /// occupied for the whole gang iteration (it cannot serve anything
    /// else), burns its own shard's energy, and keeps its clock mirrored.
    pub(crate) fn advance_lockstep(&mut self, to_ms: f64, busy_ms: f64, energy_mj: f64) {
        self.now_ms = to_ms;
        self.busy_ms += busy_ms;
        self.energy_mj += energy_mj;
    }

    /// Executes one denoising iteration for the running batch of a
    /// whole-model replica, advancing the local clock and returning the
    /// completions it produced. The active model's weights are touched (and
    /// refilled as far as capacity allows) in the GSC, and the iteration is
    /// priced by the fraction that was already resident. Sharded gang
    /// members are instead driven by
    /// [`crate::placement::Gang::execute_iteration`].
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or the instance is a gang shard member.
    pub fn execute_iteration(
        &mut self,
        cost: &mut CostModel,
        ctx: &SchedContext,
    ) -> Vec<Completion> {
        let mut done = Vec::new();
        self.execute_iteration_into(cost, ctx, &mut done);
        done
    }

    /// [`Self::execute_iteration`] appending into a caller-owned buffer.
    pub fn execute_iteration_into(
        &mut self,
        cost: &mut CostModel,
        ctx: &SchedContext,
        done: &mut Vec<Completion>,
    ) {
        assert!(!self.running.is_empty(), "executing an empty batch");
        assert!(
            self.shard.is_none(),
            "sharded members execute through their gang"
        );
        let model = self
            .active_model
            .expect("a non-empty batch always has an active model");
        let info = ctx.info(model).clone();
        let phase = self.batch_phase(info.period);
        let warm_frac = self.touch_weights(
            GscObject::Weights(model),
            info.weight_bytes,
            info.full_refill_ms,
            ctx,
        );
        let batch = self.running.len() as u64;
        let c = cost
            .iteration(&info.config, batch, phase, warm_frac)
            .expect("non-empty batch and in-range step");
        self.finish_iteration_into(c.latency_ms, c.energy_mj, phase, done);
    }

    /// Cumulative weight bytes streamed from DRAM — telemetry reads the
    /// per-iteration delta to size refill slices on the timeline.
    pub(crate) fn refill_bytes_so_far(&self) -> u64 {
        self.weight_refill_bytes
    }

    /// Final accounting over a makespan.
    pub fn stats(&self, makespan_ms: f64) -> InstanceStats {
        let weight_traffic = self.weight_hit_bytes + self.weight_refill_bytes;
        InstanceStats {
            utilization: if makespan_ms > 0.0 {
                self.busy_ms / makespan_ms
            } else {
                0.0
            },
            iterations: self.iterations,
            sparse_iteration_frac: if self.iterations > 0 {
                self.sparse_iterations as f64 / self.iterations as f64
            } else {
                0.0
            },
            mean_batch: if self.iterations > 0 {
                self.batch_rows as f64 / self.iterations as f64
            } else {
                0.0
            },
            rows_executed: self.batch_rows,
            energy_mj: self.energy_mj,
            preemptions: self.preemptions,
            latent_spills: self.latent_spills,
            weight_refill_iterations: self.weight_refill_iterations,
            weight_hit_bytes: self.weight_hit_bytes,
            weight_refill_bytes: self.weight_refill_bytes,
            residency_hit_rate: if weight_traffic > 0 {
                self.weight_hit_bytes as f64 / weight_traffic as f64
            } else {
                1.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fcfs, PreemptiveEdf, SparsityAware};
    use exion_sim::perf::SimAblation;

    fn tiny(kind: ModelKind) -> ModelConfig {
        ModelConfig::for_kind(kind).shrunk(1, 12)
    }

    fn ctx_for(
        policy: Arc<dyn SchedulerPolicy>,
        max_batch: usize,
        cost: &mut CostModel,
    ) -> SchedContext {
        SchedContext::build(
            policy,
            max_batch,
            &[ModelKind::Mld, ModelKind::Mdm, ModelKind::StableDiffusion],
            cost,
            Interconnect::default(),
            tiny,
            |_| None,
        )
    }

    // Already-released requests (arrival 0, so all visible at clock 0);
    // FCFS ordering falls to the id tie-break, which follows slice order.
    fn queue_of(kinds: &[ModelKind], ctx: &SchedContext) -> ReadyQueue {
        ReadyQueue::from_requests(
            kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| Request::new(i as u64, k, 0.0, 1e9, tiny(k).iterations))
                .collect(),
            ctx,
        )
    }

    fn instance() -> Instance {
        Instance::new(0, &HwConfig::exion4(), EvictionPolicy::Lru)
    }

    #[test]
    fn admission_fills_slots_with_one_model() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(Fcfs), 8, &mut cost);
        let mut inst = instance();
        let mut queue = queue_of(&[ModelKind::Mld, ModelKind::Mdm, ModelKind::Mld], &ctx);
        let out = inst.admit(&mut queue, &ctx, &mut []);
        // Seeded with MLD (first by FCFS tie-break and cheapest refill), so
        // both MLD requests join.
        assert_eq!(out.admitted.len(), 2);
        assert!(out.parked.is_empty());
        assert_eq!(inst.active_model, Some(ModelKind::Mld));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].model, ModelKind::Mdm);
    }

    #[test]
    fn max_batch_bounds_admission() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(Fcfs), 4, &mut cost);
        let mut inst = instance();
        let mut queue = queue_of(&[ModelKind::Mld; 12], &ctx);
        let out = inst.admit(&mut queue, &ctx, &mut []);
        assert_eq!(out.admitted.len(), 4);
        // Earliest arrivals won the slots.
        let ids: Vec<u64> = inst.running.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sparsity_aware_waits_for_boundary() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let sparsity_ctx = ctx_for(Arc::new(SparsityAware), 2, &mut cost);
        let mut inst = instance();
        let mut queue = queue_of(&[ModelKind::Mld; 4], &sparsity_ctx);
        inst.admit(&mut queue, &sparsity_ctx, &mut []);
        assert_eq!(inst.running.len(), 2);
        // One step in: mid-period, so the gate closes.
        inst.execute_iteration(&mut cost, &sparsity_ctx);
        let wider = ctx_for(Arc::new(SparsityAware), 4, &mut cost);
        assert!(inst.admit(&mut queue, &wider, &mut []).admitted.is_empty());
        // FCFS would have admitted immediately.
        let fcfs = ctx_for(Arc::new(Fcfs), 4, &mut cost);
        assert_eq!(inst.admit(&mut queue, &fcfs, &mut []).admitted.len(), 2);
    }

    #[test]
    fn completions_carry_timing() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(Fcfs), 8, &mut cost);
        let mut inst = Instance::new(3, &HwConfig::exion4(), EvictionPolicy::Lru);
        let mut queue = queue_of(&[ModelKind::Mld], &ctx);
        inst.admit(&mut queue, &ctx, &mut []);
        let total = tiny(ModelKind::Mld).iterations;
        let mut done = Vec::new();
        for _ in 0..total {
            done.extend(inst.execute_iteration(&mut cost, &ctx));
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].instance, 3);
        assert_eq!(done[0].preemptions, 0);
        assert_eq!(done[0].steps, total);
        assert!(!done[0].degraded);
        assert!(done[0].finished_ms > 0.0);
        assert!(inst.is_idle());
        let stats = inst.stats(inst.now_ms);
        assert_eq!(stats.iterations, total as u64);
        assert_eq!(stats.rows_executed, total as u64);
        assert!(stats.utilization > 0.99);
        // The first iteration streamed weights; later ones hit the GSC.
        assert!(stats.residency_hit_rate > 0.5);
        assert!(stats.weight_refill_iterations >= 1);
    }

    #[test]
    fn preemptive_edf_parks_for_an_urgent_tenant() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(PreemptiveEdf), 8, &mut cost);
        let mut inst = instance();
        // A relaxed-deadline SD batch is running...
        let mut queue = ReadyQueue::from_requests(
            vec![Request::new(
                0,
                ModelKind::StableDiffusion,
                0.0,
                1e6,
                tiny(ModelKind::StableDiffusion).iterations,
            )],
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []);
        inst.execute_iteration(&mut cost, &ctx);
        assert_eq!(inst.active_model, Some(ModelKind::StableDiffusion));
        // ...when an urgent MLD request arrives.
        queue.push(
            Request::new(
                1,
                ModelKind::Mld,
                1.0,
                10.0,
                tiny(ModelKind::Mld).iterations,
            ),
            &ctx,
        );
        let out = inst.admit(&mut queue, &ctx, &mut []);
        assert_eq!(out.parked.len(), 1, "SD batch must be parked");
        assert_eq!(out.admitted.len(), 1);
        assert_eq!(inst.active_model, Some(ModelKind::Mld));
        assert_eq!(inst.running[0].model, ModelKind::Mld);
        // The parked request kept its progress and counts its preemption.
        let parked = queue
            .iter()
            .find(|r| r.id == 0)
            .expect("parked back into queue");
        assert_eq!(parked.steps_done, 1);
        assert_eq!(parked.preemptions, 1);
        assert_eq!(inst.stats(1.0).preemptions, 1);
    }

    #[test]
    fn non_preemptive_edf_drains_instead() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(crate::policy::Edf), 8, &mut cost);
        let mut inst = instance();
        let mut queue = ReadyQueue::from_requests(
            vec![Request::new(
                0,
                ModelKind::StableDiffusion,
                0.0,
                1e6,
                tiny(ModelKind::StableDiffusion).iterations,
            )],
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []);
        inst.execute_iteration(&mut cost, &ctx);
        queue.push(
            Request::new(
                1,
                ModelKind::Mld,
                1.0,
                10.0,
                tiny(ModelKind::Mld).iterations,
            ),
            &ctx,
        );
        let out = inst.admit(&mut queue, &ctx, &mut []);
        assert!(out.parked.is_empty());
        assert!(out.admitted.is_empty());
        assert_eq!(inst.active_model, Some(ModelKind::StableDiffusion));
    }

    #[test]
    fn same_model_swap_evicts_the_worst_deadline() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(PreemptiveEdf), 2, &mut cost);
        let mut inst = instance();
        let steps = tiny(ModelKind::Mld).iterations;
        let mut queue = ReadyQueue::from_requests(
            vec![
                Request::new(0, ModelKind::Mld, 0.0, 500.0, steps),
                Request::new(1, ModelKind::Mld, 0.0, 900.0, steps),
            ],
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []);
        inst.execute_iteration(&mut cost, &ctx);
        // A tighter-deadline request displaces id 1 (deadline 900).
        queue.push(Request::new(2, ModelKind::Mld, 0.0, 50.0, steps), &ctx);
        let out = inst.admit(&mut queue, &ctx, &mut []);
        assert_eq!(out.parked.len(), 1);
        assert_eq!(out.parked[0].0, 1);
        let ids: Vec<u64> = inst.running.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn resumed_requests_finish_with_all_steps() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(PreemptiveEdf), 8, &mut cost);
        let mut inst = instance();
        let sd_steps = tiny(ModelKind::StableDiffusion).iterations;
        let mut queue = ReadyQueue::from_requests(
            vec![Request::new(
                0,
                ModelKind::StableDiffusion,
                0.0,
                1e6,
                sd_steps,
            )],
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []);
        inst.execute_iteration(&mut cost, &ctx);
        queue.push(
            Request::new(
                1,
                ModelKind::Mld,
                1.0,
                10.0,
                tiny(ModelKind::Mld).iterations,
            ),
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []); // parks SD, runs MLD
        let mut done = Vec::new();
        let mut guard = 0;
        while done.len() < 2 {
            if inst.is_idle() {
                inst.admit(&mut queue, &ctx, &mut []);
            }
            done.extend(inst.execute_iteration(&mut cost, &ctx));
            guard += 1;
            assert!(guard < 10 * (sd_steps as u32 + 12), "scheduler livelock");
        }
        let sd = done.iter().find(|c| c.id == 0).expect("SD completed");
        assert_eq!(sd.preemptions, 1);
        // Total executed rows equal total requested steps: conservation.
        let stats = inst.stats(inst.now_ms);
        let requested = (sd_steps + tiny(ModelKind::Mld).iterations) as u64;
        assert_eq!(stats.rows_executed, requested);
    }

    #[test]
    fn resume_affinity_prefers_the_parking_instance() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        // Batch bound 1: only the best-ranked candidate wins the slot.
        let ctx = ctx_for(Arc::new(Fcfs), 1, &mut cost);
        let mut inst = instance(); // id 0
        let steps = tiny(ModelKind::Mld).iterations;
        // Two parked requests, identical arrivals: FCFS would tie-break by
        // id toward request 0, but its latent lives on instance 1, so the
        // migration penalty defers it behind the locally parked request 1.
        let mut foreign = Request::new(0, ModelKind::Mld, 0.0, 1e9, steps);
        foreign.steps_done = 1;
        foreign.parked_on = Some(1);
        let mut local = Request::new(1, ModelKind::Mld, 0.0, 1e9, steps);
        local.steps_done = 1;
        local.parked_on = Some(0);
        let mut queue = ReadyQueue::from_requests(vec![foreign, local], &ctx);
        let out = inst.admit(&mut queue, &ctx, &mut []);
        assert_eq!(out.admitted.len(), 1);
        assert_eq!(out.admitted[0].0, 1, "locally parked request must win");
        assert_eq!(queue[0].id, 0);
        // The admitted request's affinity hint is consumed.
        assert_eq!(inst.running[0].parked_on, None);
        // A fresh (never-parked) request carries no penalty anywhere.
        let fresh = Request::new(2, ModelKind::Mld, 0.0, 1e9, steps);
        assert_eq!(ctx.migration_penalty_ms(&fresh, 5, 1), 0.0);
        assert!(ctx.migration_penalty_ms(&queue[0], 0, 1) > 0.0);
        assert_eq!(ctx.migration_penalty_ms(&queue[0], 1, 1), 0.0);
        // A unit spanning ids 0..2 contains the latent's home: no penalty.
        assert_eq!(ctx.migration_penalty_ms(&queue[0], 0, 2), 0.0);
    }

    #[test]
    fn doomed_requests_do_not_trigger_preemption() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(PreemptiveEdf), 8, &mut cost);
        let mut inst = instance();
        // A relaxed-deadline SD batch is running...
        let mut queue = ReadyQueue::from_requests(
            vec![Request::new(
                0,
                ModelKind::StableDiffusion,
                0.0,
                1e6,
                tiny(ModelKind::StableDiffusion).iterations,
            )],
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []);
        inst.execute_iteration(&mut cost, &ctx);
        // ...when an MLD request arrives whose deadline has already passed:
        // its EDF key beats every running member, but parking the batch for
        // a request that cannot finish in time only churns the GSC.
        queue.push(
            Request::new(1, ModelKind::Mld, 0.0, 0.0, tiny(ModelKind::Mld).iterations),
            &ctx,
        );
        assert!(!ctx.deadline_feasible(&queue[0], inst.now_ms));
        let out = inst.admit(&mut queue, &ctx, &mut []);
        assert!(out.parked.is_empty(), "thrash guard must block the park");
        assert_eq!(inst.active_model, Some(ModelKind::StableDiffusion));
        assert_eq!(inst.stats(1.0).preemptions, 0);
    }

    #[test]
    fn idle_seeding_prefers_the_resident_tenant() {
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let ctx = ctx_for(Arc::new(Fcfs), 8, &mut cost);
        let mut inst = instance();
        // Run an MDM generation to make its shards resident.
        let mut queue = ReadyQueue::from_requests(
            vec![Request::new(
                0,
                ModelKind::Mdm,
                0.0,
                1e9,
                tiny(ModelKind::Mdm).iterations,
            )],
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []);
        while !inst.is_idle() {
            inst.execute_iteration(&mut cost, &ctx);
        }
        assert_eq!(inst.weight_residency(ModelKind::Mdm), 1.0);
        // Two simultaneous arrivals: FCFS alone would seed SD (lower id
        // wins the tie-break), but its cold refill tips the residency-
        // adjusted score toward the already-resident MDM.
        let now = inst.now_ms;
        queue.push(
            Request::new(
                1,
                ModelKind::StableDiffusion,
                now,
                1e9,
                tiny(ModelKind::StableDiffusion).iterations,
            ),
            &ctx,
        );
        queue.push(
            Request::new(2, ModelKind::Mdm, now, 1e9, tiny(ModelKind::Mdm).iterations),
            &ctx,
        );
        inst.admit(&mut queue, &ctx, &mut []);
        assert_eq!(inst.active_model, Some(ModelKind::Mdm));
    }

    #[test]
    fn park_member_selection_tie_breaks_to_the_lowest_id() {
        // Two peers with byte-identical headroom: the park must land on
        // the lower member id (stable total order on equal headroom), not
        // on whichever the iteration order happened to visit last.
        let hw = HwConfig::exion4();
        let mut cost = CostModel::new(hw, SimAblation::All);
        let ctx = ctx_for(Arc::new(PreemptiveEdf), 8, &mut cost);
        let mut leader = Instance::new(0, &hw, EvictionPolicy::Lru);
        leader.set_unit(0, 3);
        let mut peers: Vec<Instance> = (1..3)
            .map(|id| {
                let mut p = Instance::new(id, &hw, EvictionPolicy::Lru);
                p.set_unit(0, 3);
                p
            })
            .collect();
        // The leader already hosts another parked latent, so both empty
        // peers strictly beat it — and tie with each other exactly.
        let occupied = ctx.info(ModelKind::Mld).latent_bytes;
        leader
            .gsc
            .request(GscObject::Latent(99), occupied, 0.1, false);
        assert_eq!(
            peers[0].gsc.park_headroom_bytes(),
            peers[1].gsc.park_headroom_bytes()
        );
        let steps = tiny(ModelKind::Mld).iterations;
        let mut r = Request::new(5, ModelKind::Mld, 0.0, 1e9, steps);
        r.steps_done = 1;
        let mut queue = ReadyQueue::new();
        leader.park(r, &mut queue, &ctx, &mut peers);
        let parked = queue.iter().find(|q| q.id == 5).expect("parked");
        assert_eq!(
            parked.parked_on,
            Some(1),
            "equal headroom resolves to the lowest id"
        );
    }

    #[test]
    fn parked_latents_spread_across_unit_members() {
        // Sharded latent parking: consecutive parks land on distinct unit
        // members (whoever is least GSC-pressured), not all on the leader.
        // The first park ties toward the leader (the outgoing weights were
        // just unpinned, so both members look equally free); from then on
        // the leader's resident latent tips the choice to the peer.
        let hw = HwConfig::exion4();
        let mut cost = CostModel::new(hw, SimAblation::All);
        let ctx = ctx_for(Arc::new(PreemptiveEdf), 8, &mut cost);
        let mut leader = Instance::new(0, &hw, EvictionPolicy::Lru);
        leader.set_unit(0, 2);
        let mut peer = Instance::new(1, &hw, EvictionPolicy::Lru);
        peer.set_unit(0, 2);
        let mut peers = vec![peer];
        // Round 1: a relaxed SD batch runs, an urgent MLD preempts it.
        let mut queue = ReadyQueue::from_requests(
            vec![Request::new(
                0,
                ModelKind::StableDiffusion,
                0.0,
                1e6,
                tiny(ModelKind::StableDiffusion).iterations,
            )],
            &ctx,
        );
        leader.admit(&mut queue, &ctx, &mut peers);
        leader.execute_iteration(&mut cost, &ctx);
        let now = leader.now_ms;
        queue.push(
            Request::new(
                1,
                ModelKind::Mld,
                now,
                500.0,
                tiny(ModelKind::Mld).iterations,
            ),
            &ctx,
        );
        leader.admit(&mut queue, &ctx, &mut peers);
        leader.execute_iteration(&mut cost, &ctx);
        let sd = queue.iter().find(|r| r.id == 0).expect("SD parked");
        assert_eq!(sd.parked_on, Some(0), "first park ties toward the leader");
        // Round 2: a tighter-deadline MDM preempts the MLD batch; the
        // leader now hosts the SD latent, so the MLD latent spreads to the
        // peer — and the affinity hint follows it.
        let now = leader.now_ms;
        queue.push(
            Request::new(
                2,
                ModelKind::Mdm,
                now,
                50.0,
                tiny(ModelKind::Mdm).iterations,
            ),
            &ctx,
        );
        let out = leader.admit(&mut queue, &ctx, &mut peers);
        assert_eq!(out.parked.len(), 1, "MLD batch must be parked");
        let mld = queue.iter().find(|r| r.id == 1).expect("MLD parked");
        assert_eq!(
            mld.parked_on,
            Some(1),
            "second park must land on the least-pressured member"
        );
        // Intra-unit parking carries no migration penalty for the unit...
        assert_eq!(ctx.migration_penalty_ms(mld, 0, 2), 0.0);
        // ...but a foreign unit pays the DRAM read.
        assert!(ctx.migration_penalty_ms(mld, 5, 1) > 0.0);
        // Resuming on the leader pulls the latent back from the peer.
        let mut resumed = *mld;
        leader.resume(&mut resumed, &ctx, &mut peers);
        assert_eq!(resumed.parked_on, None);
        assert_eq!(
            peers[0].gsc.resident_bytes(GscObject::Latent(resumed.id)),
            0,
            "peer copy consumed by the resume"
        );
    }
}
