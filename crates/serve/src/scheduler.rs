//! The per-instance continuous batcher.
//!
//! DDIM denoising is an iterative loop, so a running batch reaches a
//! scheduling point at every iteration boundary: finished requests leave,
//! and queued requests are admitted into the freed slots without waiting for
//! the whole batch to drain (continuous batching at iteration granularity).
//! An instance executes one model at a time — its weights are the ones
//! GSC-resident — and switching models costs a cold (weight-streaming)
//! iteration.

use exion_model::config::{IterationPhase, ModelConfig, ModelKind};

use crate::cost::CostModel;
use crate::metrics::InstanceStats;
use crate::policy::Policy;
use crate::request::{Completion, Request};

/// One accelerator instance's scheduler state.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance index within the cluster.
    pub id: usize,
    /// Local clock (ms). `f64::INFINITY` marks a drained instance.
    pub now_ms: f64,
    /// The model whose batch is currently running (sticky after drain).
    pub active_model: Option<ModelKind>,
    /// The model whose weights are GSC-resident, if any.
    resident_model: Option<ModelKind>,
    /// The running batch.
    pub running: Vec<Request>,
    busy_ms: f64,
    energy_mj: f64,
    iterations: u64,
    sparse_iterations: u64,
    batch_rows: u64,
    cold_switches: u64,
}

impl Instance {
    /// A fresh idle instance.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            now_ms: 0.0,
            active_model: None,
            resident_model: None,
            running: Vec::new(),
            busy_ms: 0.0,
            energy_mj: 0.0,
            iterations: 0,
            sparse_iterations: 0,
            batch_rows: 0,
            cold_switches: 0,
        }
    }

    /// Whether the instance has no running batch.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// Steps the running members sit past their last dense boundary.
    /// Members admitted under [`Policy::SparsityAware`] stay mutually
    /// aligned, so the first member is representative; under other policies
    /// the value is only used for reporting.
    fn steps_into_period(&self, period: usize) -> usize {
        self.running
            .first()
            .map(|r| r.steps_done % period)
            .unwrap_or(0)
    }

    /// Admits queued requests into free slots at this iteration boundary.
    /// Returns the ids admitted (their `admitted_ms` is stamped).
    ///
    /// An idle instance may seed a batch of any queued model (switching the
    /// active model); a busy one only tops up with its active model, gated
    /// by the policy's phase-boundary rule.
    pub fn admit(
        &mut self,
        queue: &mut Vec<Request>,
        policy: Policy,
        max_batch: usize,
        period: impl Fn(ModelKind) -> usize,
    ) -> Vec<(u64, f64)> {
        let mut admitted = Vec::new();
        if queue.is_empty() {
            return admitted;
        }

        // The policy's most urgent queued request.
        let urgent_idx = (0..queue.len())
            .min_by(|&a, &b| {
                policy
                    .key(&queue[a])
                    .partial_cmp(&policy.key(&queue[b]))
                    .unwrap()
            })
            .unwrap();
        if self.running.is_empty() {
            // Seed: the most urgent request picks the model.
            self.active_model = Some(queue[urgent_idx].model);
        } else {
            let model = self.active_model.expect("running batch has a model");
            // Anti-starvation: when the most urgent request targets another
            // model, stop topping up and let the batch drain so the
            // instance can switch. Without this, continuous top-up under
            // backlog lets the first-seeded model monopolize the instance.
            if queue[urgent_idx].model != model {
                return admitted;
            }
            if !policy.admits_mid_period(self.steps_into_period(period(model))) {
                return admitted;
            }
        }

        let model = self.active_model.unwrap();
        let free = max_batch.saturating_sub(self.running.len());
        let mut candidates: Vec<usize> = (0..queue.len())
            .filter(|&i| queue[i].model == model)
            .collect();
        candidates.sort_by(|&a, &b| {
            policy
                .key(&queue[a])
                .partial_cmp(&policy.key(&queue[b]))
                .unwrap()
        });
        candidates.truncate(free);
        // Remove back-to-front so earlier indices stay valid.
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for idx in candidates {
            let mut r = queue.swap_remove(idx);
            r.admitted_ms = Some(self.now_ms);
            admitted.push((r.id, self.now_ms));
            self.running.push(r);
        }
        // Keep the batch in deterministic id order regardless of removal
        // order above.
        self.running.sort_by_key(|r| r.id);
        admitted
    }

    /// Executes one denoising iteration for the running batch, advancing the
    /// local clock and returning the completions it produced.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty.
    pub fn execute_iteration(
        &mut self,
        cost: &mut CostModel,
        configs: &dyn Fn(ModelKind) -> ModelConfig,
    ) -> Vec<Completion> {
        assert!(!self.running.is_empty(), "executing an empty batch");
        let model = self.active_model.expect("running batch has a model");
        let config = configs(model);
        let period = cost.period(&config);

        // The iteration runs sparse only when every member is in its sparse
        // phase; one member at a dense boundary forces a dense (bitmask
        // regenerating) pass for the whole batch.
        let all_sparse = self.running.iter().all(|r| r.steps_done % period != 0);
        let phase = if all_sparse {
            IterationPhase::Sparse
        } else {
            IterationPhase::Dense
        };

        let warm = self.resident_model == Some(model);
        if !warm {
            self.cold_switches += 1;
        }
        let batch = self.running.len() as u64;
        let c = cost
            .iteration(&config, batch, phase, warm)
            .expect("non-empty batch and in-range step");

        self.now_ms += c.latency_ms;
        self.busy_ms += c.latency_ms;
        self.energy_mj += c.energy_mj;
        self.iterations += 1;
        if phase.is_sparse() {
            self.sparse_iterations += 1;
        }
        self.batch_rows += batch;
        self.resident_model = Some(model);

        let mut done = Vec::new();
        let now = self.now_ms;
        let id = self.id;
        self.running.retain_mut(|r| {
            r.steps_done += 1;
            if r.is_done() {
                done.push(Completion {
                    id: r.id,
                    model: r.model,
                    arrival_ms: r.arrival_ms,
                    admitted_ms: r.admitted_ms.expect("running request was admitted"),
                    finished_ms: now,
                    slo_ms: r.slo_ms,
                    instance: id,
                });
                false
            } else {
                true
            }
        });
        done
    }

    /// Final accounting over a makespan.
    pub fn stats(&self, makespan_ms: f64) -> InstanceStats {
        InstanceStats {
            utilization: if makespan_ms > 0.0 {
                self.busy_ms / makespan_ms
            } else {
                0.0
            },
            iterations: self.iterations,
            sparse_iteration_frac: if self.iterations > 0 {
                self.sparse_iterations as f64 / self.iterations as f64
            } else {
                0.0
            },
            mean_batch: if self.iterations > 0 {
                self.batch_rows as f64 / self.iterations as f64
            } else {
                0.0
            },
            energy_mj: self.energy_mj,
            cold_switches: self.cold_switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_sim::config::HwConfig;
    use exion_sim::perf::SimAblation;

    fn tiny(kind: ModelKind) -> ModelConfig {
        ModelConfig::for_kind(kind).shrunk(1, 12)
    }

    fn queue_of(kinds: &[ModelKind]) -> Vec<Request> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| Request::new(i as u64, k, i as f64, 1e9, tiny(k).iterations))
            .collect()
    }

    #[test]
    fn admission_fills_slots_with_one_model() {
        let mut inst = Instance::new(0);
        let mut queue = queue_of(&[ModelKind::Mld, ModelKind::Mdm, ModelKind::Mld]);
        let admitted = inst.admit(&mut queue, Policy::Fcfs, 8, |_| 5);
        // Seeded with MLD (earliest arrival), so both MLD requests join.
        assert_eq!(admitted.len(), 2);
        assert_eq!(inst.active_model, Some(ModelKind::Mld));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].model, ModelKind::Mdm);
    }

    #[test]
    fn max_batch_bounds_admission() {
        let mut inst = Instance::new(0);
        let mut queue = queue_of(&[ModelKind::Mld; 12]);
        let admitted = inst.admit(&mut queue, Policy::Fcfs, 4, |_| 5);
        assert_eq!(admitted.len(), 4);
        // Earliest arrivals won the slots.
        let ids: Vec<u64> = inst.running.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sparsity_aware_waits_for_boundary() {
        let mut inst = Instance::new(0);
        let mut queue = queue_of(&[ModelKind::Mld; 4]);
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        inst.admit(&mut queue, Policy::SparsityAware, 2, |_| 5);
        assert_eq!(inst.running.len(), 2);
        // One step in: mid-period, so the gate closes.
        inst.execute_iteration(&mut cost, &|k| tiny(k));
        let admitted = inst.admit(&mut queue, Policy::SparsityAware, 4, |_| 5);
        assert!(admitted.is_empty());
        // FCFS would have admitted immediately.
        let admitted = inst.admit(&mut queue, Policy::Fcfs, 4, |_| 5);
        assert_eq!(admitted.len(), 2);
    }

    #[test]
    fn completions_carry_timing() {
        let mut inst = Instance::new(3);
        let mut queue = queue_of(&[ModelKind::Mld]);
        let mut cost = CostModel::new(HwConfig::exion4(), SimAblation::All);
        inst.admit(&mut queue, Policy::Fcfs, 8, |_| 5);
        let total = tiny(ModelKind::Mld).iterations;
        let mut done = Vec::new();
        for _ in 0..total {
            done.extend(inst.execute_iteration(&mut cost, &|k| tiny(k)));
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].instance, 3);
        assert!(done[0].finished_ms > 0.0);
        assert!(inst.is_idle());
        let stats = inst.stats(inst.now_ms);
        assert_eq!(stats.iterations, total as u64);
        assert!(stats.utilization > 0.99);
    }
}
