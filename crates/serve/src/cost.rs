//! Cached per-iteration cost lookups against the cycle-level simulator.
//!
//! The scheduler prices every (model, batch size, FFN-Reuse phase, weight
//! residency) combination it executes through
//! [`exion_sim::simulate_iteration`] and memoizes the result, so a serving
//! run of tens of thousands of iterations costs only a handful of
//! one-iteration cycle simulations. Residency is a *fraction* of the
//! model's weight working set held by the GSC — quantized to 1/32nds for
//! memoization — not a warm/cold flag; partially resident tenants price a
//! partial refill.

use std::collections::HashMap;

use exion_model::config::{IterationPhase, ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::partition::{simulate_iteration_shard, PartitionPlan, PartitionStrategy};
use exion_sim::perf::{simulate_iteration, IterationCost, SimAblation, SimError};
use exion_sim::workload::SparsityProfile;

/// Residency-fraction quantization for memo keys (1/32 ≈ 3% granularity —
/// finer than any latency effect the DRAM model resolves).
const RESIDENCY_QUANTA: f64 = 32.0;

/// Memo key of one shard's iteration cost: `(strategy tag, degree, shard)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ShardKey(u8, u8, u8);

impl ShardKey {
    fn new(strategy: PartitionStrategy, shard: usize) -> Self {
        let (tag, degree) = match strategy {
            PartitionStrategy::Replicated => (0, 1),
            PartitionStrategy::Tensor { ways } => (1, ways),
            PartitionStrategy::Pipeline { stages } => (2, stages),
        };
        Self(tag, degree as u8, shard as u8)
    }
}

/// Memoized iteration-cost oracle for one hardware instance type.
#[derive(Debug, Clone)]
pub struct CostModel {
    hw: HwConfig,
    ablation: SimAblation,
    cache: HashMap<(ModelKind, u64, IterationPhase, u32), IterationCost>,
    shard_cache: HashMap<(ModelKind, ShardKey, u64, IterationPhase, u32), IterationCost>,
    isolated: HashMap<ModelKind, f64>,
    /// Measured per-model profiles (e.g. `exion-bench::profiles`) override
    /// the analytic closed form when present.
    profiles: HashMap<ModelKind, SparsityProfile>,
}

impl CostModel {
    /// A cost model for `hw` running under `ablation`.
    pub fn new(hw: HwConfig, ablation: SimAblation) -> Self {
        Self {
            hw,
            ablation,
            cache: HashMap::new(),
            shard_cache: HashMap::new(),
            isolated: HashMap::new(),
            profiles: HashMap::new(),
        }
    }

    /// The hardware this model prices.
    pub fn hw(&self) -> &HwConfig {
        &self.hw
    }

    /// The ablation under which iterations are priced.
    pub fn ablation(&self) -> SimAblation {
        self.ablation
    }

    /// The analytic sparsity profile of `model` (same closed form the
    /// Fig. 18/19 experiments use when functional measurements are absent).
    pub fn analytic_profile(model: &ModelConfig) -> SparsityProfile {
        SparsityProfile::analytic(
            model.ffn_reuse.target_sparsity,
            model.ep.paper_sparsity_pct / 100.0,
            16,
        )
    }

    /// Installs a measured sparsity profile for `kind` (from
    /// `exion-bench::profiles` functional runs), replacing the analytic
    /// closed form for all subsequent pricing. Cached costs of that model
    /// are invalidated.
    pub fn set_profile(&mut self, kind: ModelKind, profile: SparsityProfile) {
        self.profiles.insert(kind, profile);
        self.cache.retain(|(k, _, _, _), _| *k != kind);
        self.shard_cache.retain(|(k, _, _, _, _), _| *k != kind);
        self.isolated.remove(&kind);
    }

    /// The profile `model` is priced under: the measured override when
    /// installed, else the analytic closed form.
    pub fn profile_for(&self, model: &ModelConfig) -> SparsityProfile {
        self.profiles
            .get(&model.kind)
            .copied()
            .unwrap_or_else(|| Self::analytic_profile(model))
    }

    /// The scheduling period of `model` under this ablation: the FFN-Reuse
    /// period when reuse is active, else 1 (every iteration is a boundary).
    pub fn period(&self, model: &ModelConfig) -> usize {
        if self.ablation.ffn_reuse() {
            model.ffn_reuse.period()
        } else {
            1
        }
    }

    /// Cost of one denoising iteration of `model` at `batch` rows in
    /// `phase`, with `resident_frac` of the weight working set GSC-resident
    /// (1.0 = steady-state warm, 0.0 = fully cold switch).
    pub fn iteration(
        &mut self,
        model: &ModelConfig,
        batch: u64,
        phase: IterationPhase,
        resident_frac: f64,
    ) -> Result<IterationCost, SimError> {
        // Without FFN-Reuse every step prices as a dense boundary step.
        let phase = if self.ablation.ffn_reuse() {
            phase
        } else {
            IterationPhase::Dense
        };
        let frac_q = (resident_frac.clamp(0.0, 1.0) * RESIDENCY_QUANTA).round() as u32;
        let key = (model.kind, batch, phase, frac_q);
        if let Some(&cost) = self.cache.get(&key) {
            return Ok(cost);
        }
        // Step 0 is always dense; step 1 is sparse whenever FFN-Reuse is on
        // (every benchmark has sparse_iters ≥ 1).
        let step = match phase {
            IterationPhase::Dense => 0,
            IterationPhase::Sparse => 1,
        };
        let cost = simulate_iteration(
            &self.hw,
            model,
            &self.profile_for(model),
            self.ablation,
            batch,
            step,
            frac_q as f64 / RESIDENCY_QUANTA,
        )?;
        self.cache.insert(key, cost);
        Ok(cost)
    }

    /// Cost of one *shard's* share of a denoising iteration under `plan`,
    /// with `resident_frac` of the shard's own weight working set
    /// GSC-resident on its member instance. Pure shard compute — the gang
    /// collective term is added by [`PartitionPlan::combine`].
    pub fn iteration_shard(
        &mut self,
        model: &ModelConfig,
        plan: &PartitionPlan,
        shard: usize,
        batch: u64,
        phase: IterationPhase,
        resident_frac: f64,
    ) -> Result<IterationCost, SimError> {
        let phase = if self.ablation.ffn_reuse() {
            phase
        } else {
            IterationPhase::Dense
        };
        let frac_q = (resident_frac.clamp(0.0, 1.0) * RESIDENCY_QUANTA).round() as u32;
        let key = (
            model.kind,
            ShardKey::new(plan.strategy(), shard),
            batch,
            phase,
            frac_q,
        );
        if let Some(&cost) = self.shard_cache.get(&key) {
            return Ok(cost);
        }
        let step = match phase {
            IterationPhase::Dense => 0,
            IterationPhase::Sparse => 1,
        };
        let cost = simulate_iteration_shard(
            &self.hw,
            model,
            plan,
            shard,
            &self.profile_for(model),
            self.ablation,
            batch,
            step,
            frac_q as f64 / RESIDENCY_QUANTA,
        )?;
        self.shard_cache.insert(key, cost);
        Ok(cost)
    }

    /// Warm gang-level iteration cost under `plan` at `batch` rows in
    /// `phase`: every shard priced fully resident, combined with the
    /// collective term.
    pub fn gang_iteration_warm(
        &mut self,
        model: &ModelConfig,
        plan: &PartitionPlan,
        batch: u64,
        phase: IterationPhase,
    ) -> IterationCost {
        let shards: Vec<IterationCost> = (0..plan.num_shards())
            .map(|s| {
                self.iteration_shard(model, plan, s, batch, phase, 1.0)
                    .expect("positive batch and in-range steps cannot fail")
            })
            .collect();
        plan.combine(&shards, batch)
    }

    /// Warm full-generation latency of one gang serving `model` under
    /// `plan` at `batch` rows — the sharded analogue of
    /// [`Self::generation_latency_ms`], anchoring capacity estimates for
    /// sharded placements.
    pub fn gang_generation_latency_ms(
        &mut self,
        model: &ModelConfig,
        plan: &PartitionPlan,
        batch: u64,
    ) -> f64 {
        self.gang_generation_cost_at_residency(model, plan, batch, 1.0, 1)
            .latency_ms
    }

    /// Warm full-generation latency of `model` at `batch` rows: the sum of
    /// per-iteration costs across the denoising schedule with weights
    /// GSC-resident throughout.
    pub fn generation_latency_ms(&mut self, model: &ModelConfig, batch: u64) -> f64 {
        self.generation_cost_at_residency(model, batch, 1.0)
            .latency_ms
    }

    /// Full-generation cost (latency + energy summed over the denoising
    /// schedule) of `model` at `batch` rows with `resident_frac` of the
    /// weight working set GSC-resident every iteration — the steady-state
    /// projection a placement planner prices a *replica* unit with (a
    /// tenant bigger than the GSC never gets warmer than its partial
    /// residency, so its real service time sits well above the warm one).
    pub fn generation_cost_at_residency(
        &mut self,
        model: &ModelConfig,
        batch: u64,
        resident_frac: f64,
    ) -> IterationCost {
        let mut total = IterationCost {
            latency_ms: 0.0,
            energy_mj: 0.0,
            dense_ops: 0.0,
        };
        for step in 0..model.iterations {
            let phase = if self.ablation.ffn_reuse() {
                model.ffn_reuse.phase_of_step(step)
            } else {
                IterationPhase::Dense
            };
            let cost = self
                .iteration(model, batch, phase, resident_frac)
                .expect("positive batch and in-range steps cannot fail");
            total.latency_ms += cost.latency_ms;
            total.energy_mj += cost.energy_mj;
            total.dense_ops += cost.dense_ops;
        }
        total
    }

    /// The sharded analogue of [`Self::generation_cost_at_residency`]: one
    /// gang's full generation under `plan` with every member holding
    /// `resident_frac` of its own shard, and the collective term priced
    /// with `concurrent_gangs` gangs contending for the board fabric
    /// ([`PartitionPlan::collective_ms_contended`]).
    pub fn gang_generation_cost_at_residency(
        &mut self,
        model: &ModelConfig,
        plan: &PartitionPlan,
        batch: u64,
        resident_frac: f64,
        concurrent_gangs: usize,
    ) -> IterationCost {
        let contention_extra =
            plan.collective_ms_contended(batch, concurrent_gangs) - plan.collective_ms(batch);
        let mut total = IterationCost {
            latency_ms: 0.0,
            energy_mj: 0.0,
            dense_ops: 0.0,
        };
        for step in 0..model.iterations {
            let phase = if self.ablation.ffn_reuse() {
                model.ffn_reuse.phase_of_step(step)
            } else {
                IterationPhase::Dense
            };
            let shards: Vec<IterationCost> = (0..plan.num_shards())
                .map(|s| {
                    self.iteration_shard(model, plan, s, batch, phase, resident_frac)
                        .expect("positive batch and in-range steps cannot fail")
                })
                .collect();
            let cost = plan.combine(&shards, batch);
            total.latency_ms += cost.latency_ms + contention_extra;
            total.energy_mj += cost.energy_mj;
            total.dense_ops += cost.dense_ops;
        }
        total
    }

    /// Wall-clock cost (ms) per byte moved across this hardware's DRAM
    /// interface — the single pricing rule every serve-layer transfer
    /// estimate (weight refills, latent spills and reloads) derives from.
    pub fn dram_ms_per_byte(&self) -> f64 {
        1.0 / (self.hw.dram_gbps * 1e6)
    }

    /// Transfer energy (mJ) per byte moved across the DRAM interface, from
    /// the device's read/write energy (`DramTiming::rw_pj_per_bit`).
    pub fn dram_mj_per_byte(&self) -> f64 {
        8.0 * self.hw.dram_timing().rw_pj_per_bit * 1e-9
    }

    /// Estimated wall-clock cost (ms) of streaming the *entire* weight
    /// working set of `model` from DRAM: the upper bound a fully cold
    /// switch adds to the first iteration, and the refill currency
    /// residency-aware routing and cost-aware eviction rank tenants by.
    pub fn full_refill_ms(&self, weight_bytes: u64) -> f64 {
        weight_bytes as f64 * self.dram_ms_per_byte()
    }

    /// Isolated batch-1 generation latency of `model` on this hardware
    /// (cold first step, warm thereafter): the no-contention reference
    /// point for speedup/slowdown analysis. SLOs scale the full-batch
    /// service time instead (see `ServeSimulator::run`).
    pub fn isolated_latency_ms(&mut self, model: &ModelConfig) -> f64 {
        if let Some(&ms) = self.isolated.get(&model.kind) {
            return ms;
        }
        let cold_extra = {
            let cold = self
                .iteration(model, 1, IterationPhase::Dense, 0.0)
                .expect("batch 1 cannot fail");
            let warm = self
                .iteration(model, 1, IterationPhase::Dense, 1.0)
                .expect("batch 1 cannot fail");
            cold.latency_ms - warm.latency_ms
        };
        let total = self.generation_latency_ms(model, 1) + cold_extra;
        self.isolated.insert(model.kind, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_return_identical_costs() {
        let mut cm = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::Mld);
        let a = cm
            .iteration(&model, 4, IterationPhase::Sparse, 1.0)
            .unwrap();
        let b = cm
            .iteration(&model, 4, IterationPhase::Sparse, 1.0)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cm.cache.len(), 1);
        // Nearby fractions share a residency quantum; distant ones do not.
        cm.iteration(&model, 4, IterationPhase::Sparse, 0.999)
            .unwrap();
        assert_eq!(cm.cache.len(), 1);
        cm.iteration(&model, 4, IterationPhase::Sparse, 0.5)
            .unwrap();
        assert_eq!(cm.cache.len(), 2);
    }

    #[test]
    fn batching_amortizes_per_request_cost() {
        let mut cm = CostModel::new(HwConfig::exion24(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::StableDiffusion);
        let b1 = cm.iteration(&model, 1, IterationPhase::Dense, 1.0).unwrap();
        let b8 = cm.iteration(&model, 8, IterationPhase::Dense, 1.0).unwrap();
        assert!(b8.latency_ms < 8.0 * b1.latency_ms);
        assert!(b8.latency_ms > b1.latency_ms);
    }

    #[test]
    fn base_ablation_prices_everything_dense() {
        let mut cm = CostModel::new(HwConfig::exion4(), SimAblation::Base);
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        assert_eq!(cm.period(&model), 1);
        let s = cm
            .iteration(&model, 2, IterationPhase::Sparse, 1.0)
            .unwrap();
        let d = cm.iteration(&model, 2, IterationPhase::Dense, 1.0).unwrap();
        assert_eq!(s, d);
    }

    #[test]
    fn partial_residency_prices_between_cold_and_warm() {
        let mut cm = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let cold = cm.iteration(&model, 1, IterationPhase::Dense, 0.0).unwrap();
        let half = cm.iteration(&model, 1, IterationPhase::Dense, 0.5).unwrap();
        let warm = cm.iteration(&model, 1, IterationPhase::Dense, 1.0).unwrap();
        assert!(cold.latency_ms > half.latency_ms);
        assert!(half.latency_ms >= warm.latency_ms);
    }

    #[test]
    fn measured_profile_override_changes_pricing() {
        let mut cm = CostModel::new(HwConfig::exion24(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let analytic = cm
            .iteration(&model, 4, IterationPhase::Sparse, 1.0)
            .unwrap();
        // A deliberately denser measured profile must re-price the model.
        let mut measured = CostModel::analytic_profile(&model);
        measured.inter_sparsity *= 0.5;
        measured.ffn_block_frac = (measured.ffn_block_frac * 2.0).min(1.0);
        cm.set_profile(ModelKind::Mdm, measured);
        let overridden = cm
            .iteration(&model, 4, IterationPhase::Sparse, 1.0)
            .unwrap();
        assert!(
            overridden.latency_ms > analytic.latency_ms,
            "denser profile must price slower: {} vs {}",
            overridden.latency_ms,
            analytic.latency_ms
        );
        // Other models keep their analytic pricing.
        let mld = ModelConfig::for_kind(ModelKind::Mld);
        assert_eq!(cm.profile_for(&mld), CostModel::analytic_profile(&mld));
    }

    #[test]
    fn isolated_latency_matches_end_to_end_sim() {
        let mut cm = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let isolated = cm.isolated_latency_ms(&model);
        let full = exion_sim::perf::simulate_model(
            &HwConfig::exion4(),
            &model,
            &CostModel::analytic_profile(&model),
            SimAblation::All,
            1,
        );
        let gap = (isolated - full.latency_ms).abs() / full.latency_ms;
        assert!(
            gap < 0.05,
            "isolated {isolated} vs full {}",
            full.latency_ms
        );
    }
}
