//! Cached per-iteration cost lookups against the cycle-level simulator.
//!
//! The scheduler prices every (model, batch size, FFN-Reuse phase, warm/cold)
//! combination it executes through [`exion_sim::simulate_iteration`] and
//! memoizes the result, so a serving run of tens of thousands of iterations
//! costs only a handful of one-iteration cycle simulations.

use std::collections::HashMap;

use exion_model::config::{IterationPhase, ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::perf::{simulate_iteration, IterationCost, SimAblation, SimError};
use exion_sim::workload::SparsityProfile;

/// Memoized iteration-cost oracle for one hardware instance type.
#[derive(Debug, Clone)]
pub struct CostModel {
    hw: HwConfig,
    ablation: SimAblation,
    cache: HashMap<(ModelKind, u64, IterationPhase, bool), IterationCost>,
    isolated: HashMap<ModelKind, f64>,
}

impl CostModel {
    /// A cost model for `hw` running under `ablation`.
    pub fn new(hw: HwConfig, ablation: SimAblation) -> Self {
        Self {
            hw,
            ablation,
            cache: HashMap::new(),
            isolated: HashMap::new(),
        }
    }

    /// The hardware this model prices.
    pub fn hw(&self) -> &HwConfig {
        &self.hw
    }

    /// The ablation under which iterations are priced.
    pub fn ablation(&self) -> SimAblation {
        self.ablation
    }

    /// The analytic sparsity profile of `model` (same closed form the
    /// Fig. 18/19 experiments use when functional measurements are absent).
    pub fn profile(model: &ModelConfig) -> SparsityProfile {
        SparsityProfile::analytic(
            model.ffn_reuse.target_sparsity,
            model.ep.paper_sparsity_pct / 100.0,
            16,
        )
    }

    /// The scheduling period of `model` under this ablation: the FFN-Reuse
    /// period when reuse is active, else 1 (every iteration is a boundary).
    pub fn period(&self, model: &ModelConfig) -> usize {
        if self.ablation.ffn_reuse() {
            model.ffn_reuse.period()
        } else {
            1
        }
    }

    /// Cost of one denoising iteration of `model` at `batch` rows in
    /// `phase`, with weights GSC-resident iff `warm`.
    pub fn iteration(
        &mut self,
        model: &ModelConfig,
        batch: u64,
        phase: IterationPhase,
        warm: bool,
    ) -> Result<IterationCost, SimError> {
        // Without FFN-Reuse every step prices as a dense boundary step.
        let phase = if self.ablation.ffn_reuse() {
            phase
        } else {
            IterationPhase::Dense
        };
        let key = (model.kind, batch, phase, warm);
        if let Some(&cost) = self.cache.get(&key) {
            return Ok(cost);
        }
        // Step 0 is always dense; step 1 is sparse whenever FFN-Reuse is on
        // (every benchmark has sparse_iters ≥ 1).
        let step = match phase {
            IterationPhase::Dense => 0,
            IterationPhase::Sparse => 1,
        };
        let cost = simulate_iteration(
            &self.hw,
            model,
            &Self::profile(model),
            self.ablation,
            batch,
            step,
            warm,
        )?;
        self.cache.insert(key, cost);
        Ok(cost)
    }

    /// Warm full-generation latency of `model` at `batch` rows: the sum of
    /// per-iteration costs across the denoising schedule with weights
    /// GSC-resident throughout.
    pub fn generation_latency_ms(&mut self, model: &ModelConfig, batch: u64) -> f64 {
        let mut total = 0.0;
        for step in 0..model.iterations {
            let phase = if self.ablation.ffn_reuse() {
                model.ffn_reuse.phase_of_step(step)
            } else {
                IterationPhase::Dense
            };
            let cost = self
                .iteration(model, batch, phase, true)
                .expect("positive batch and in-range steps cannot fail");
            total += cost.latency_ms;
        }
        total
    }

    /// Isolated batch-1 generation latency of `model` on this hardware
    /// (cold first step, warm thereafter): the no-contention reference
    /// point for speedup/slowdown analysis. SLOs scale the full-batch
    /// service time instead (see `ServeSimulator::run`).
    pub fn isolated_latency_ms(&mut self, model: &ModelConfig) -> f64 {
        if let Some(&ms) = self.isolated.get(&model.kind) {
            return ms;
        }
        let cold_extra = {
            let cold = self
                .iteration(model, 1, IterationPhase::Dense, false)
                .expect("batch 1 cannot fail");
            let warm = self
                .iteration(model, 1, IterationPhase::Dense, true)
                .expect("batch 1 cannot fail");
            cold.latency_ms - warm.latency_ms
        };
        let total = self.generation_latency_ms(model, 1) + cold_extra;
        self.isolated.insert(model.kind, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_return_identical_costs() {
        let mut cm = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::Mld);
        let a = cm
            .iteration(&model, 4, IterationPhase::Sparse, true)
            .unwrap();
        let b = cm
            .iteration(&model, 4, IterationPhase::Sparse, true)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cm.cache.len(), 1);
    }

    #[test]
    fn batching_amortizes_per_request_cost() {
        let mut cm = CostModel::new(HwConfig::exion24(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::StableDiffusion);
        let b1 = cm
            .iteration(&model, 1, IterationPhase::Dense, true)
            .unwrap();
        let b8 = cm
            .iteration(&model, 8, IterationPhase::Dense, true)
            .unwrap();
        assert!(b8.latency_ms < 8.0 * b1.latency_ms);
        assert!(b8.latency_ms > b1.latency_ms);
    }

    #[test]
    fn base_ablation_prices_everything_dense() {
        let mut cm = CostModel::new(HwConfig::exion4(), SimAblation::Base);
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        assert_eq!(cm.period(&model), 1);
        let s = cm
            .iteration(&model, 2, IterationPhase::Sparse, true)
            .unwrap();
        let d = cm
            .iteration(&model, 2, IterationPhase::Dense, true)
            .unwrap();
        assert_eq!(s, d);
    }

    #[test]
    fn isolated_latency_matches_end_to_end_sim() {
        let mut cm = CostModel::new(HwConfig::exion4(), SimAblation::All);
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let isolated = cm.isolated_latency_ms(&model);
        let full = exion_sim::perf::simulate_model(
            &HwConfig::exion4(),
            &model,
            &CostModel::profile(&model),
            SimAblation::All,
            1,
        );
        let gap = (isolated - full.latency_ms).abs() / full.latency_ms;
        assert!(
            gap < 0.05,
            "isolated {isolated} vs full {}",
            full.latency_ms
        );
    }
}
