//! Latency attribution: where every millisecond of a request's end-to-end
//! latency went, and why the ones that missed their SLO missed it.
//!
//! Every released request accumulates a [`PhaseBreakdown`] — a conserved
//! decomposition of its end-to-end latency into ten phases (admission
//! delay, queue wait, batch-join wait, compute, collective, refill stall,
//! parked/preempted, migration, fault stall, degraded window). *Conserved*
//! means the phases sum to the request's end-to-end latency by
//! construction: the cluster loop feeds the [`AttributionBuilder`] one
//! contiguous segment per lifecycle transition, and the terminal close
//! folds float residue back into the dominant phase, so the property test
//! can assert `Σ phases == end − arrival` for every served, shed, lost,
//! and degraded request.
//!
//! Attribution is a **pure observer**: it only ever reads simulation facts
//! (boundary clocks, cumulative collective/refill stall counters) and
//! never feeds anything back, so a run with attribution enabled is
//! byte-identical to one without — the golden-fingerprint tests pin that.
//!
//! # Phase taxonomy
//!
//! | Phase | Books the time between |
//! |---|---|
//! | `admission` | arrival and the admission decision (the release boundary) |
//! | `queue` | enqueue and the admitting unit's previous boundary |
//! | `batch-join` | the admitting unit's previous boundary and the actual join |
//! | `compute` | iteration time net of collective and refill stalls |
//! | `collective` | gang-interconnect synchronization inside iterations |
//! | `refill` | DRAM weight-refill stalls inside iterations |
//! | `parked` | a preemption park and the re-join |
//! | `migration` | a placement-drain requeue and the re-join |
//! | `fault-stall` | a fault requeue and the re-join (and a lost request's final stretch) |
//! | `degraded-window` | queue wait overlapping a crash/degrade window |
//!
//! Checkpoint spills and foreign latent write-backs advance unit clocks
//! *between* iteration boundaries, so their cost lands in the `compute`
//! residual of the enclosing in-batch segment — deliberately not in
//! `fault-stall`, which books only time a fault demonstrably caused
//! (requeue waits and destroyed final stretches). That keeps "fault-stall
//! is zero outside fault windows" a hard invariant even with periodic
//! checkpointing enabled.
//!
//! # Miss-cause classification
//!
//! A missed request's cause is the argmax over phase groups: **queueing**
//! (admission + queue + batch-join), **capacity** (compute),
//! **contention** (collective + parked + migration), **residency**
//! (refill), **fault** (fault-stall + degraded-window). Shed requests are
//! always `queueing` (admission refused them under load) and lost requests
//! always `fault` (a fault destroyed them); ties break in the listed
//! order.

use exion_model::config::ModelKind;
use exion_telemetry::json::{push_f64, push_str};
use exion_telemetry::LogHistogram;
use serde::{Deserialize, Serialize};

use crate::metrics::LatencyStats;

/// Number of attribution phases.
pub const PHASES: usize = 10;

/// How many missed requests the forensics digest keeps full breakdowns
/// for.
pub const TOP_MISSES: usize = 8;

/// One phase of a request's end-to-end latency (see the module docs for
/// the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Arrival to the admission decision at the release boundary.
    Admission,
    /// Enqueue to the admitting unit's previous iteration boundary.
    Queue,
    /// The admitting unit's previous boundary to the actual batch join.
    BatchJoin,
    /// In-batch iteration time net of collective and refill stalls.
    Compute,
    /// Gang-interconnect collective time inside iterations.
    Collective,
    /// DRAM weight-refill stall inside iterations.
    Refill,
    /// Parked (preempted) between a park and the re-join.
    Parked,
    /// Between a migration-drain requeue and the re-join.
    Migration,
    /// Between a fault requeue and the re-join, plus a lost request's
    /// final stretch.
    FaultStall,
    /// Queue wait overlapping a degraded-service window.
    DegradedWindow,
}

impl Phase {
    /// Every phase, in breakdown index order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Admission,
        Phase::Queue,
        Phase::BatchJoin,
        Phase::Compute,
        Phase::Collective,
        Phase::Refill,
        Phase::Parked,
        Phase::Migration,
        Phase::FaultStall,
        Phase::DegradedWindow,
    ];

    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::Queue => "queue",
            Phase::BatchJoin => "batch-join",
            Phase::Compute => "compute",
            Phase::Collective => "collective",
            Phase::Refill => "refill",
            Phase::Parked => "parked",
            Phase::Migration => "migration",
            Phase::FaultStall => "fault-stall",
            Phase::DegradedWindow => "degraded-window",
        }
    }

    /// The phase's index into a [`PhaseBreakdown::ms`] array.
    pub fn index(&self) -> usize {
        *self as usize
    }
}

/// A conserved decomposition of one request's end-to-end latency: the ten
/// phase values sum to `end − arrival` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Milliseconds per phase, indexed by [`Phase::index`].
    pub ms: [f64; PHASES],
}

impl PhaseBreakdown {
    /// The value of one phase (ms).
    pub fn get(&self, phase: Phase) -> f64 {
        self.ms[phase.index()]
    }

    /// Adds `ms` to `phase`.
    pub fn add(&mut self, phase: Phase, ms: f64) {
        self.ms[phase.index()] += ms;
    }

    /// Sum over all phases (the reconstructed end-to-end latency, ms).
    pub fn total_ms(&self) -> f64 {
        self.ms.iter().sum()
    }

    /// Folds `other` in phase-by-phase.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        for (a, b) in self.ms.iter_mut().zip(&other.ms) {
            *a += b;
        }
    }

    /// The largest phase (`None` when every phase is zero); ties break
    /// toward the earlier [`Phase::ALL`] index.
    pub fn dominant(&self) -> Option<Phase> {
        let mut best: Option<(Phase, f64)> = None;
        for p in Phase::ALL {
            let v = self.get(p);
            if v > 0.0 && best.map(|(_, bv)| v > bv).unwrap_or(true) {
                best = Some((p, v));
            }
        }
        best.map(|(p, _)| p)
    }
}

/// The terminal outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Ran to completion.
    Completed,
    /// Refused by admission control (never queued).
    Shed,
    /// Destroyed by a fault.
    Lost,
}

impl RequestOutcome {
    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::Shed => "shed",
            RequestOutcome::Lost => "lost",
        }
    }
}

/// Why a request missed its SLO (see the module docs for the
/// classification rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissCause {
    /// Admission delay, queue wait, or batch-join wait dominated (or the
    /// request was shed outright).
    Queueing,
    /// Compute dominated: the machine was simply not fast enough for the
    /// offered deadline.
    Capacity,
    /// Collective sync, preemption parking, or migration drains dominated.
    Contention,
    /// DRAM weight-refill stalls dominated (working set exceeds the GSC).
    Residency,
    /// Fault stall or degraded-window time dominated (or the request was
    /// destroyed by a fault).
    Fault,
}

impl MissCause {
    /// Every cause, in classification tie-break order.
    pub const ALL: [MissCause; 5] = [
        MissCause::Queueing,
        MissCause::Capacity,
        MissCause::Contention,
        MissCause::Residency,
        MissCause::Fault,
    ];

    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            MissCause::Queueing => "queueing",
            MissCause::Capacity => "capacity",
            MissCause::Contention => "contention",
            MissCause::Residency => "residency",
            MissCause::Fault => "fault",
        }
    }

    /// The cause's index into a miss-cause count array.
    pub fn index(&self) -> usize {
        *self as usize
    }
}

/// Classifies why a missed request missed: sheds are queueing, losts are
/// fault casualties, and completed misses take the argmax phase group
/// (ties break in [`MissCause::ALL`] order).
pub fn classify_miss(outcome: RequestOutcome, phases: &PhaseBreakdown) -> MissCause {
    match outcome {
        RequestOutcome::Shed => MissCause::Queueing,
        RequestOutcome::Lost => MissCause::Fault,
        RequestOutcome::Completed => {
            let groups = [
                phases.get(Phase::Admission)
                    + phases.get(Phase::Queue)
                    + phases.get(Phase::BatchJoin),
                phases.get(Phase::Compute),
                phases.get(Phase::Collective)
                    + phases.get(Phase::Parked)
                    + phases.get(Phase::Migration),
                phases.get(Phase::Refill),
                phases.get(Phase::FaultStall) + phases.get(Phase::DegradedWindow),
            ];
            let mut best = MissCause::Queueing;
            let mut best_v = groups[0];
            for (cause, &v) in MissCause::ALL.iter().zip(&groups) {
                if v > best_v {
                    best = *cause;
                    best_v = v;
                }
            }
            best
        }
    }
}

/// One request's finished attribution record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestAttribution {
    /// Request identifier (arrival rank).
    pub id: u64,
    /// Benchmark model.
    pub model: ModelKind,
    /// Arrival time (ms).
    pub arrival_ms: f64,
    /// Terminal instant: completion, shed decision, or destruction (ms).
    pub end_ms: f64,
    /// Latency SLO from arrival (ms).
    pub slo_ms: f64,
    /// Terminal outcome.
    pub outcome: RequestOutcome,
    /// Whether the request missed its SLO (sheds and losts always do).
    pub missed: bool,
    /// The conserved phase decomposition of `end_ms − arrival_ms`.
    pub phases: PhaseBreakdown,
}

impl RequestAttribution {
    /// End-to-end latency (ms).
    pub fn latency_ms(&self) -> f64 {
        self.end_ms - self.arrival_ms
    }
}

/// One row of the SLO miss-forensics digest: a missed request with its
/// full breakdown and classified cause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissRecord {
    /// Request identifier.
    pub id: u64,
    /// Benchmark model.
    pub model: ModelKind,
    /// Arrival time (ms).
    pub arrival_ms: f64,
    /// Terminal instant (ms).
    pub end_ms: f64,
    /// End-to-end latency (ms).
    pub latency_ms: f64,
    /// The SLO it missed (ms).
    pub slo_ms: f64,
    /// How far past the deadline it finished (ms).
    pub overshoot_ms: f64,
    /// Classified miss cause.
    pub cause: MissCause,
    /// The dominant phase of its breakdown.
    pub dominant: Option<Phase>,
    /// The full breakdown.
    pub phases: PhaseBreakdown,
}

/// Per-model phase aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelAttribution {
    /// The model class.
    pub model: ModelKind,
    /// Requests of this class (all outcomes).
    pub requests: u64,
    /// Summed phase milliseconds across the class.
    pub totals: PhaseBreakdown,
    /// Per-phase distribution across the class's requests, indexed by
    /// [`Phase::index`].
    pub phase_stats: [LatencyStats; PHASES],
}

/// The cluster-wide latency-attribution report carried by
/// [`crate::ServeReport::attribution`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Every request's finished record, in id (arrival) order.
    pub requests: Vec<RequestAttribution>,
    /// Summed phase milliseconds across every request.
    pub totals: PhaseBreakdown,
    /// Per-phase distribution across every request, indexed by
    /// [`Phase::index`]. The overall histograms are merged up from the
    /// per-model ones ([`LogHistogram::merge`]), not re-streamed.
    pub phase_stats: [LatencyStats; PHASES],
    /// Per-phase distribution restricted to SLO-missed requests.
    pub missed_phase_stats: [LatencyStats; PHASES],
    /// Per-model aggregation, sorted by model name.
    pub per_model: Vec<ModelAttribution>,
    /// The phase with the largest p50 across requests (`None` when no
    /// request recorded any time).
    pub dominant_p50: Option<Phase>,
    /// The phase with the largest p95 across requests.
    pub dominant_p95: Option<Phase>,
    /// The phase with the largest p50 across SLO-missed requests.
    pub missed_dominant_p50: Option<Phase>,
    /// The phase with the largest p95 across SLO-missed requests.
    pub missed_dominant_p95: Option<Phase>,
    /// Missed-request counts per cause, indexed by [`MissCause::index`]
    /// (sheds and losts included).
    pub miss_causes: [u64; 5],
    /// The worst completed misses (largest deadline overshoot first, at
    /// most [`TOP_MISSES`]), each with its full breakdown.
    pub top_misses: Vec<MissRecord>,
    /// Degraded-service windows the run saw (crash-to-recover and
    /// degrade-to-restore intervals, ms).
    pub degraded_windows: Vec<(f64, f64)>,
}

impl AttributionReport {
    /// Each phase's share of the total attributed milliseconds (all zeros
    /// when nothing was attributed) — the bench regression fingerprint.
    pub fn phase_mix(&self) -> [f64; PHASES] {
        let total = self.totals.total_ms();
        let mut mix = [0.0; PHASES];
        if total > 0.0 {
            for (m, v) in mix.iter_mut().zip(&self.totals.ms) {
                *m = v / total;
            }
        }
        mix
    }

    /// Missed requests across all causes.
    pub fn missed_requests(&self) -> u64 {
        self.miss_causes.iter().sum()
    }
}

/// The segment a live request is currently in. Segments chain
/// contiguously — each close instant is the next segment's open instant —
/// which is what makes the breakdown conserved.
#[derive(Debug, Clone, Copy)]
enum Seg {
    /// Waiting in the ready queue since the admission decision.
    Queue { since: f64 },
    /// Running in a batch; `coll0`/`refill0` snapshot the unit's
    /// cumulative collective/refill stall at the join.
    InBatch {
        since: f64,
        coll0: f64,
        refill0: f64,
    },
    /// Parked (preempted) since the park boundary.
    Parked { since: f64 },
    /// Requeued by a migration drain, waiting to re-join.
    Migration { since: f64 },
    /// Requeued by a fault, waiting to re-join.
    FaultWait { since: f64 },
    /// Terminal (completed, shed, or lost).
    Closed,
}

/// One live request's accumulating state.
#[derive(Debug, Clone)]
struct LiveEntry {
    model: ModelKind,
    arrival_ms: f64,
    slo_ms: f64,
    phases: PhaseBreakdown,
    seg: Seg,
    outcome: Option<RequestOutcome>,
    end_ms: f64,
    missed: bool,
}

/// Accumulates per-request phase breakdowns as the cluster loop feeds it
/// lifecycle transitions, then aggregates into an [`AttributionReport`].
/// Request ids are dense arrival ranks, so live state is a flat vector.
#[derive(Debug, Clone, Default)]
pub struct AttributionBuilder {
    live: Vec<LiveEntry>,
    degraded: Vec<(f64, f64)>,
}

impl AttributionBuilder {
    /// A builder with no requests seen.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_entry(&mut self, id: u64, model: ModelKind, arrival_ms: f64, slo_ms: f64) {
        debug_assert_eq!(
            id as usize,
            self.live.len(),
            "request ids arrive dense, in release order"
        );
        self.live.push(LiveEntry {
            model,
            arrival_ms,
            slo_ms,
            phases: PhaseBreakdown::default(),
            seg: Seg::Closed,
            outcome: None,
            end_ms: arrival_ms,
            missed: false,
        });
    }

    /// Overlap (ms) of `[a, b]` with the degraded windows seen so far.
    /// Windows are pushed at their opening instant, so any window
    /// overlapping a past interval is already registered.
    fn degraded_overlap(&self, a: f64, b: f64) -> f64 {
        let mut overlap: f64 = 0.0;
        for &(s, e) in &self.degraded {
            overlap += (b.min(e) - a.max(s)).max(0.0);
        }
        overlap.min((b - a).max(0.0))
    }

    /// The request was admitted (possibly degraded) at `decided_at` and
    /// entered the queue.
    pub fn admit(
        &mut self,
        id: u64,
        model: ModelKind,
        arrival_ms: f64,
        slo_ms: f64,
        decided_at: f64,
    ) {
        self.push_entry(id, model, arrival_ms, slo_ms);
        let e = &mut self.live[id as usize];
        e.phases
            .add(Phase::Admission, (decided_at - arrival_ms).max(0.0));
        e.seg = Seg::Queue { since: decided_at };
    }

    /// The request was refused (shed) at `decided_at` — terminal, always
    /// an SLO miss.
    pub fn shed(
        &mut self,
        id: u64,
        model: ModelKind,
        arrival_ms: f64,
        slo_ms: f64,
        decided_at: f64,
    ) {
        self.push_entry(id, model, arrival_ms, slo_ms);
        let e = &mut self.live[id as usize];
        e.phases
            .add(Phase::Admission, (decided_at - arrival_ms).max(0.0));
        e.end_ms = decided_at;
        e.outcome = Some(RequestOutcome::Shed);
        e.missed = true;
        Self::fold_conservation(e, Phase::Admission);
    }

    /// Closes an in-batch segment at `at_ms`, splitting the elapsed time
    /// into collective, refill, and the compute residual.
    fn close_batch(
        e: &mut LiveEntry,
        at_ms: f64,
        since: f64,
        coll0: f64,
        refill0: f64,
        coll: f64,
        refill: f64,
    ) {
        let elapsed = (at_ms - since).max(0.0);
        let coll_ms = (coll - coll0).clamp(0.0, elapsed);
        let refill_ms = (refill - refill0).clamp(0.0, elapsed - coll_ms);
        e.phases.add(Phase::Collective, coll_ms);
        e.phases.add(Phase::Refill, refill_ms);
        e.phases.add(Phase::Compute, elapsed - coll_ms - refill_ms);
    }

    /// Closes whatever waiting segment is open at `at_ms` into its own
    /// phase (in-batch segments split via [`Self::close_batch`]).
    fn close_seg(&mut self, id: u64, at_ms: f64, coll: f64, refill: f64) {
        let e = &mut self.live[id as usize];
        match e.seg {
            Seg::Queue { since } => {
                // The whole wait books as queue here (no door split — this
                // close comes from a drain/fault, not a join); degraded
                // overlap is still carved out.
                let span = (at_ms - since).max(0.0);
                let overlap = {
                    let mut o: f64 = 0.0;
                    for &(s, e2) in &self.degraded {
                        o += (at_ms.min(e2) - since.max(s)).max(0.0);
                    }
                    o.min(span)
                };
                let e = &mut self.live[id as usize];
                e.phases.add(Phase::Queue, span - overlap);
                e.phases.add(Phase::DegradedWindow, overlap);
            }
            Seg::InBatch {
                since,
                coll0,
                refill0,
            } => {
                Self::close_batch(e, at_ms, since, coll0, refill0, coll, refill);
            }
            Seg::Parked { since } => e.phases.add(Phase::Parked, (at_ms - since).max(0.0)),
            Seg::Migration { since } => e.phases.add(Phase::Migration, (at_ms - since).max(0.0)),
            Seg::FaultWait { since } => e.phases.add(Phase::FaultStall, (at_ms - since).max(0.0)),
            Seg::Closed => debug_assert!(false, "closing a terminal request {id}"),
        }
        self.live[id as usize].seg = Seg::Closed;
    }

    /// The request joined a batch at `at_ms`. `door_floor_ms` is the
    /// admitting unit's previous boundary (the earliest instant it could
    /// have opened its door); `coll`/`refill` are that unit's cumulative
    /// stall counters, snapshotted for the in-batch close.
    pub fn join(&mut self, id: u64, at_ms: f64, door_floor_ms: f64, coll: f64, refill: f64) {
        let e = &self.live[id as usize];
        match e.seg {
            Seg::Queue { since } => {
                // Queue wait runs until the unit's door could have opened;
                // the rest of the wait is batch-join delay. Queue time
                // overlapping a degraded window books to the window.
                let door = door_floor_ms.max(since).min(at_ms);
                let overlap = self.degraded_overlap(since, door);
                let e = &mut self.live[id as usize];
                e.phases.add(Phase::Queue, (door - since) - overlap);
                e.phases.add(Phase::DegradedWindow, overlap);
                e.phases.add(Phase::BatchJoin, at_ms - door);
            }
            Seg::Parked { since } => {
                self.live[id as usize]
                    .phases
                    .add(Phase::Parked, (at_ms - since).max(0.0));
            }
            Seg::Migration { since } => {
                self.live[id as usize]
                    .phases
                    .add(Phase::Migration, (at_ms - since).max(0.0));
            }
            Seg::FaultWait { since } => {
                self.live[id as usize]
                    .phases
                    .add(Phase::FaultStall, (at_ms - since).max(0.0));
            }
            Seg::InBatch { .. } | Seg::Closed => {
                debug_assert!(false, "request {id} joined from a non-waiting segment");
            }
        }
        self.live[id as usize].seg = Seg::InBatch {
            since: at_ms,
            coll0: coll,
            refill0: refill,
        };
    }

    /// The request was preempted (parked) at `at_ms`.
    pub fn park(&mut self, id: u64, at_ms: f64, coll: f64, refill: f64) {
        self.close_seg(id, at_ms, coll, refill);
        self.live[id as usize].seg = Seg::Parked { since: at_ms };
    }

    /// The request was drained back into the queue by a placement
    /// migration at `at_ms`.
    pub fn drain_to_migration(&mut self, id: u64, at_ms: f64, coll: f64, refill: f64) {
        self.close_seg(id, at_ms, coll, refill);
        self.live[id as usize].seg = Seg::Migration { since: at_ms };
    }

    /// The request was requeued by a fault (checkpoint recovery or
    /// surviving-member write-back) at `at_ms`.
    pub fn fault_requeue(&mut self, id: u64, at_ms: f64, coll: f64, refill: f64) {
        self.close_seg(id, at_ms, coll, refill);
        self.live[id as usize].seg = Seg::FaultWait { since: at_ms };
    }

    /// The request completed at `finished_ms` — terminal.
    pub fn complete(&mut self, id: u64, finished_ms: f64, coll: f64, refill: f64, missed: bool) {
        self.close_seg(id, finished_ms, coll, refill);
        let e = &mut self.live[id as usize];
        e.end_ms = finished_ms;
        e.outcome = Some(RequestOutcome::Completed);
        e.missed = missed;
        Self::fold_conservation(e, Phase::Compute);
    }

    /// A fault destroyed the request at `at_ms` — terminal, always an SLO
    /// miss. Whatever segment was open books entirely to fault stall: the
    /// fault caused the request's final stretch to be wasted, whatever it
    /// was spent on.
    pub fn lost(&mut self, id: u64, at_ms: f64) {
        let e = &mut self.live[id as usize];
        let since = match e.seg {
            Seg::Queue { since }
            | Seg::InBatch { since, .. }
            | Seg::Parked { since }
            | Seg::Migration { since }
            | Seg::FaultWait { since } => since,
            Seg::Closed => {
                debug_assert!(false, "losing a terminal request {id}");
                at_ms
            }
        };
        e.phases.add(Phase::FaultStall, (at_ms - since).max(0.0));
        e.seg = Seg::Closed;
        e.end_ms = at_ms;
        e.outcome = Some(RequestOutcome::Lost);
        e.missed = true;
        Self::fold_conservation(e, Phase::FaultStall);
    }

    /// Registers a degraded-service window `[start_ms, end_ms]` (pushed at
    /// its opening instant, so past queue intervals always see every
    /// window that could overlap them).
    pub fn push_degraded_window(&mut self, start_ms: f64, end_ms: f64) {
        self.degraded.push((start_ms, end_ms));
    }

    /// Folds float residue (`e2e − Σ phases`, a few ulps of segment
    /// arithmetic) back into `fold`, so the conservation property holds by
    /// construction at the terminal close.
    fn fold_conservation(e: &mut LiveEntry, fold: Phase) {
        let e2e = (e.end_ms - e.arrival_ms).max(0.0);
        for _ in 0..4 {
            let diff = e2e - e.phases.total_ms();
            if diff == 0.0 {
                break;
            }
            e.phases.ms[fold.index()] += diff;
        }
    }

    /// Aggregates every finished request into the report.
    pub fn finish(self) -> AttributionReport {
        let mut requests: Vec<RequestAttribution> = Vec::with_capacity(self.live.len());
        // Per-model phase histograms, merged up into the overall stats so
        // the rollup exercises the same path the sweep harness uses.
        let mut models: Vec<(ModelKind, u64, PhaseBreakdown, Box<[LogHistogram; PHASES]>)> =
            Vec::new();
        let mut missed_hists: [LogHistogram; PHASES] =
            std::array::from_fn(|_| LogHistogram::default());
        let mut totals = PhaseBreakdown::default();
        let mut miss_causes = [0u64; 5];
        let mut misses: Vec<MissRecord> = Vec::new();

        for (id, e) in self.live.iter().enumerate() {
            let Some(outcome) = e.outcome else {
                debug_assert!(false, "request {id} never reached a terminal outcome");
                continue;
            };
            let r = RequestAttribution {
                id: id as u64,
                model: e.model,
                arrival_ms: e.arrival_ms,
                end_ms: e.end_ms,
                slo_ms: e.slo_ms,
                outcome,
                missed: e.missed,
                phases: e.phases,
            };
            totals.accumulate(&r.phases);
            let slot = match models.iter().position(|(m, ..)| *m == r.model) {
                Some(s) => s,
                None => {
                    models.push((
                        r.model,
                        0,
                        PhaseBreakdown::default(),
                        Box::new(std::array::from_fn(|_| LogHistogram::default())),
                    ));
                    models.len() - 1
                }
            };
            let (_, count, m_totals, hists) = &mut models[slot];
            *count += 1;
            m_totals.accumulate(&r.phases);
            for (h, &v) in hists.iter_mut().zip(&r.phases.ms) {
                h.record(v.max(0.0));
            }
            if r.missed {
                miss_causes[classify_miss(outcome, &r.phases).index()] += 1;
                for (h, &v) in missed_hists.iter_mut().zip(&r.phases.ms) {
                    h.record(v.max(0.0));
                }
                if outcome == RequestOutcome::Completed {
                    misses.push(MissRecord {
                        id: r.id,
                        model: r.model,
                        arrival_ms: r.arrival_ms,
                        end_ms: r.end_ms,
                        latency_ms: r.latency_ms(),
                        slo_ms: r.slo_ms,
                        overshoot_ms: r.latency_ms() - r.slo_ms,
                        cause: classify_miss(outcome, &r.phases),
                        dominant: r.phases.dominant(),
                        phases: r.phases,
                    });
                }
            }
            requests.push(r);
        }

        // The overall per-phase histograms are the merge of the per-model
        // shards — no re-streaming.
        let mut overall: [LogHistogram; PHASES] = std::array::from_fn(|_| LogHistogram::default());
        for (_, _, _, hists) in &models {
            for (o, h) in overall.iter_mut().zip(hists.iter()) {
                o.merge(h);
            }
        }
        let phase_stats: [LatencyStats; PHASES] =
            std::array::from_fn(|i| LatencyStats::from_histogram(&overall[i]));
        let missed_phase_stats: [LatencyStats; PHASES] =
            std::array::from_fn(|i| LatencyStats::from_histogram(&missed_hists[i]));

        let mut per_model: Vec<ModelAttribution> = models
            .into_iter()
            .map(|(model, requests, totals, hists)| ModelAttribution {
                model,
                requests,
                totals,
                phase_stats: std::array::from_fn(|i| LatencyStats::from_histogram(&hists[i])),
            })
            .collect();
        per_model.sort_by_key(|m| m.model.name());

        misses.sort_by(|a, b| {
            b.overshoot_ms
                .total_cmp(&a.overshoot_ms)
                .then(a.id.cmp(&b.id))
        });
        misses.truncate(TOP_MISSES);

        let dominant_at = |stats: &[LatencyStats; PHASES], pick: fn(&LatencyStats) -> f64| {
            let mut best: Option<(Phase, f64)> = None;
            for p in Phase::ALL {
                let v = pick(&stats[p.index()]);
                if v > 0.0 && best.map(|(_, bv)| v > bv).unwrap_or(true) {
                    best = Some((p, v));
                }
            }
            best.map(|(p, _)| p)
        };

        AttributionReport {
            dominant_p50: dominant_at(&phase_stats, |s| s.p50),
            dominant_p95: dominant_at(&phase_stats, |s| s.p95),
            missed_dominant_p50: dominant_at(&missed_phase_stats, |s| s.p50),
            missed_dominant_p95: dominant_at(&missed_phase_stats, |s| s.p95),
            requests,
            totals,
            phase_stats,
            missed_phase_stats,
            per_model,
            miss_causes,
            top_misses: misses,
            degraded_windows: self.degraded,
        }
    }
}

/// Renders `report` as a standalone JSON document (schema 1): aggregate
/// phase stats, miss forensics, degraded windows, and one record per
/// request — enough for external tooling (and the CI chaos smoke) to
/// re-derive any slice of the attribution without the binary report.
pub fn attribution_json(report: &AttributionReport) -> String {
    let mut out = String::with_capacity(256 + 220 * report.requests.len());
    out.push_str("{\"schema\":1,\"phases\":[");
    for (i, p) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(&mut out, p.label());
    }
    out.push_str("],\"totals_ms\":[");
    for (i, v) in report.totals.ms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(&mut out, *v);
    }
    out.push_str("],\"phase_stats\":[");
    for (i, (p, s)) in Phase::ALL.iter().zip(&report.phase_stats).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"phase\":");
        push_str(&mut out, p.label());
        out.push_str(",\"p50\":");
        push_f64(&mut out, s.p50);
        out.push_str(",\"p95\":");
        push_f64(&mut out, s.p95);
        out.push_str(",\"p99\":");
        push_f64(&mut out, s.p99);
        out.push_str(",\"mean\":");
        push_f64(&mut out, s.mean);
        out.push_str(",\"max\":");
        push_f64(&mut out, s.max);
        out.push_str(",\"count\":");
        out.push_str(&s.count.to_string());
        out.push('}');
    }
    out.push_str("],\"miss_causes\":{");
    for (i, c) in MissCause::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(&mut out, c.label());
        out.push(':');
        out.push_str(&report.miss_causes[c.index()].to_string());
    }
    out.push_str("},\"dominant_p50\":");
    match report.dominant_p50 {
        Some(p) => push_str(&mut out, p.label()),
        None => out.push_str("null"),
    }
    out.push_str(",\"dominant_p95\":");
    match report.dominant_p95 {
        Some(p) => push_str(&mut out, p.label()),
        None => out.push_str("null"),
    }
    out.push_str(",\"degraded_windows\":[");
    for (i, &(s, e)) in report.degraded_windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_f64(&mut out, s);
        out.push(',');
        push_f64(&mut out, e);
        out.push(']');
    }
    out.push_str("],\"top_misses\":[");
    for (i, m) in report.top_misses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        out.push_str(&m.id.to_string());
        out.push_str(",\"model\":");
        push_str(&mut out, m.model.name());
        out.push_str(",\"latency_ms\":");
        push_f64(&mut out, m.latency_ms);
        out.push_str(",\"slo_ms\":");
        push_f64(&mut out, m.slo_ms);
        out.push_str(",\"overshoot_ms\":");
        push_f64(&mut out, m.overshoot_ms);
        out.push_str(",\"cause\":");
        push_str(&mut out, m.cause.label());
        out.push_str(",\"phases_ms\":[");
        for (j, v) in m.phases.ms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(&mut out, *v);
        }
        out.push_str("]}");
    }
    out.push_str("],\"requests\":[");
    for (i, r) in report.requests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        out.push_str(&r.id.to_string());
        out.push_str(",\"model\":");
        push_str(&mut out, r.model.name());
        out.push_str(",\"arrival_ms\":");
        push_f64(&mut out, r.arrival_ms);
        out.push_str(",\"end_ms\":");
        push_f64(&mut out, r.end_ms);
        out.push_str(",\"slo_ms\":");
        push_f64(&mut out, r.slo_ms);
        out.push_str(",\"outcome\":");
        push_str(&mut out, r.outcome.label());
        out.push_str(",\"missed\":");
        out.push_str(if r.missed { "true" } else { "false" });
        out.push_str(",\"phases_ms\":[");
        for (j, v) in r.phases.ms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(&mut out, *v);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_telemetry::json::is_well_formed;

    fn conserved(e2e: f64, phases: &PhaseBreakdown) {
        let sum = phases.total_ms();
        assert!(
            (sum - e2e).abs() <= 1e-9 * (1.0 + e2e.abs()),
            "Σ phases {sum} != e2e {e2e}"
        );
    }

    #[test]
    fn straight_through_request_splits_into_queue_join_and_compute() {
        let mut b = AttributionBuilder::new();
        // Arrives at 0, decided at 2 (admission 2), unit door at 5, joins
        // at 8, completes at 20 with 3 ms collective and 1 ms refill.
        b.admit(0, ModelKind::Mld, 0.0, 100.0, 2.0);
        b.join(0, 8.0, 5.0, 0.0, 0.0);
        b.complete(0, 20.0, 3.0, 1.0, false);
        let r = b.finish();
        let p = &r.requests[0].phases;
        assert_eq!(p.get(Phase::Admission), 2.0);
        assert_eq!(p.get(Phase::Queue), 3.0); // 2 → door 5
        assert_eq!(p.get(Phase::BatchJoin), 3.0); // door 5 → join 8
        assert_eq!(p.get(Phase::Collective), 3.0);
        assert_eq!(p.get(Phase::Refill), 1.0);
        assert_eq!(p.get(Phase::Compute), 8.0); // 12 in batch − 3 − 1
        conserved(20.0, p);
        assert_eq!(r.requests[0].outcome, RequestOutcome::Completed);
        assert!(!r.requests[0].missed);
        assert_eq!(r.missed_requests(), 0);
    }

    #[test]
    fn park_resume_and_migration_book_their_own_phases() {
        let mut b = AttributionBuilder::new();
        b.admit(0, ModelKind::Dit, 0.0, 50.0, 0.0);
        b.join(0, 0.0, 0.0, 0.0, 0.0);
        b.park(0, 10.0, 2.0, 0.0); // 10 in batch: 2 collective, 8 compute
        b.join(0, 16.0, 12.0, 5.0, 0.0); // 6 parked
        b.drain_to_migration(0, 22.0, 9.0, 0.0); // 6 in batch: 4 coll, 2 compute
        b.join(0, 30.0, 25.0, 0.0, 0.0); // 8 migration
        b.complete(0, 40.0, 1.0, 0.5, true); // 10 in batch: 1 coll, 0.5 refill
        let r = b.finish();
        let p = &r.requests[0].phases;
        assert_eq!(p.get(Phase::Parked), 6.0);
        assert_eq!(p.get(Phase::Migration), 8.0);
        assert_eq!(p.get(Phase::Collective), 2.0 + 4.0 + 1.0);
        assert_eq!(p.get(Phase::Refill), 0.5);
        conserved(40.0, p);
        assert!(r.requests[0].missed);
        // Contention (collective + parked + migration = 21) dominates.
        assert_eq!(r.miss_causes[MissCause::Contention.index()], 1);
        assert_eq!(r.top_misses.len(), 1);
        assert_eq!(r.top_misses[0].cause, MissCause::Contention);
    }

    #[test]
    fn shed_and_lost_are_terminal_misses_with_conserved_phases() {
        let mut b = AttributionBuilder::new();
        b.shed(0, ModelKind::Mld, 1.0, 10.0, 4.0);
        b.admit(1, ModelKind::Mld, 2.0, 10.0, 3.0);
        b.join(1, 5.0, 3.0, 0.0, 0.0);
        b.fault_requeue(1, 9.0, 1.0, 0.0);
        b.lost(1, 15.0);
        let r = b.finish();
        let shed = &r.requests[0];
        assert_eq!(shed.outcome, RequestOutcome::Shed);
        assert_eq!(shed.phases.get(Phase::Admission), 3.0);
        conserved(3.0, &shed.phases);
        let lost = &r.requests[1];
        assert_eq!(lost.outcome, RequestOutcome::Lost);
        // Requeued at 9 then destroyed at 15: the fault-wait books 6 ms of
        // fault stall on top of the in-batch split.
        assert_eq!(lost.phases.get(Phase::FaultStall), 6.0);
        conserved(13.0, &lost.phases);
        assert_eq!(r.miss_causes[MissCause::Queueing.index()], 1);
        assert_eq!(r.miss_causes[MissCause::Fault.index()], 1);
        // Sheds and losts never enter the completed-miss digest.
        assert!(r.top_misses.is_empty());
    }

    #[test]
    fn queue_wait_overlapping_a_degraded_window_books_to_the_window() {
        let mut b = AttributionBuilder::new();
        b.push_degraded_window(5.0, 9.0);
        b.admit(0, ModelKind::Mld, 0.0, 100.0, 0.0);
        // Queue 0 → door 10: 4 ms overlap the window.
        b.join(0, 12.0, 10.0, 0.0, 0.0);
        b.complete(0, 20.0, 0.0, 0.0, false);
        let r = b.finish();
        let p = &r.requests[0].phases;
        assert_eq!(p.get(Phase::DegradedWindow), 4.0);
        assert_eq!(p.get(Phase::Queue), 6.0);
        assert_eq!(p.get(Phase::BatchJoin), 2.0);
        conserved(20.0, p);
        assert_eq!(r.degraded_windows, vec![(5.0, 9.0)]);
    }

    #[test]
    fn per_model_rollup_merges_into_the_overall_stats() {
        let mut b = AttributionBuilder::new();
        for id in 0..6u64 {
            let model = if id % 2 == 0 {
                ModelKind::Mld
            } else {
                ModelKind::Dit
            };
            let t0 = id as f64 * 10.0;
            b.admit(id, model, t0, 1000.0, t0 + 1.0);
            b.join(id, t0 + 3.0, t0 + 1.0, 0.0, 0.0);
            b.complete(id, t0 + 9.0, 0.0, 0.0, false);
        }
        let r = b.finish();
        assert_eq!(r.per_model.len(), 2);
        // Models are sorted by name, and the merged overall count equals
        // the per-model sum phase by phase.
        let names: Vec<&str> = r.per_model.iter().map(|m| m.model.name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        for p in Phase::ALL {
            let merged = r.phase_stats[p.index()].count;
            let summed: u64 = r
                .per_model
                .iter()
                .map(|m| m.phase_stats[p.index()].count)
                .sum();
            assert_eq!(merged, summed, "{}", p.label());
        }
        assert_eq!(r.requests.len(), 6);
        // Compute dominates every request (6 ms in batch vs 2+2 waits).
        assert_eq!(r.dominant_p50, Some(Phase::Compute));
        assert_eq!(r.dominant_p95, Some(Phase::Compute));
    }

    #[test]
    fn attribution_json_is_well_formed_and_carries_the_records() {
        let mut b = AttributionBuilder::new();
        b.push_degraded_window(1.0, 2.0);
        b.admit(0, ModelKind::Mld, 0.0, 5.0, 1.0);
        b.join(0, 2.0, 1.0, 0.0, 0.0);
        b.complete(0, 30.0, 0.0, 0.0, true);
        b.shed(1, ModelKind::Dit, 3.0, 5.0, 4.0);
        let json = attribution_json(&b.finish());
        assert!(is_well_formed(&json), "{json}");
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains("\"fault-stall\""));
        assert!(json.contains("\"outcome\":\"shed\""));
        assert!(json.contains("\"degraded_windows\":[[1,2]]"));
        assert!(json.contains("\"top_misses\":[{\"id\":0"));
    }

    #[test]
    fn classification_tie_breaks_in_declared_order() {
        // All-zero phases: queueing wins the tie.
        let z = PhaseBreakdown::default();
        assert_eq!(
            classify_miss(RequestOutcome::Completed, &z),
            MissCause::Queueing
        );
        let mut residency = PhaseBreakdown::default();
        residency.add(Phase::Refill, 5.0);
        residency.add(Phase::Compute, 4.0);
        assert_eq!(
            classify_miss(RequestOutcome::Completed, &residency),
            MissCause::Residency
        );
        assert_eq!(classify_miss(RequestOutcome::Shed, &z), MissCause::Queueing);
        assert_eq!(classify_miss(RequestOutcome::Lost, &z), MissCause::Fault);
    }
}
