//! Deterministic event calendar for the cluster loop.
//!
//! The serving simulator is a discrete-event simulation: nothing happens
//! between a unit's iteration boundaries, an idle unit's wake, a metric
//! cadence tick, or a planner epoch end, so the cluster loop only ever
//! needs the *next* of those instants. [`EventCalendar`] keeps them in a
//! binary heap ordered by `(time, kind rank, unit index)` — pop cost is
//! `O(log events)` regardless of fleet size, where the legacy loop paid an
//! `O(units)` minimum-clock scan per iteration boundary.
//!
//! Determinism is load-bearing: fixed-seed report fingerprints pin every
//! policy and core refactor, so the pop order must be a *total* order that
//! reproduces the legacy scan exactly. Ties at one timestamp break by
//! [`EventKind`] rank — observation ([`EventKind::StatsSample`]) before
//! control plane ([`EventKind::EpochBoundary`]) before unit work — and
//! unit events at one timestamp break by unit index, which is precisely
//! the order the legacy `min_by(clock).then(index)` scan stepped units in.
//!
//! Unit entries are invalidated wholesale when a migration replaces the
//! fleet: the calendar bumps an era counter and stale entries are skipped
//! lazily at pop time, so a re-plan never pays a heap rebuild.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a scheduled calendar entry does when popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Snapshot the counter/gauge registry (recurring `stats_interval_ms`
    /// cadence).
    StatsSample,
    /// A planner epoch end: record realized load and possibly re-plan.
    EpochBoundary,
    /// A fault-plan event fires: a crash, member loss, link degradation,
    /// or a scheduled recovery/restore. The `unit` field carries an index
    /// into the cluster loop's runtime fault table, not a unit slot.
    Fault,
    /// A busy unit's next iteration boundary.
    UnitBoundary,
    /// An idle unit's wake: the next arrival, or a parked request's ready
    /// time.
    IdleWake,
}

impl EventKind {
    /// Tie-break rank at equal timestamps. [`UnitBoundary`] and
    /// [`IdleWake`] deliberately share a rank: the legacy scan ordered
    /// same-clock units purely by index, blind to why each was scheduled,
    /// and fingerprint identity requires reproducing that.
    ///
    /// [`UnitBoundary`]: EventKind::UnitBoundary
    /// [`IdleWake`]: EventKind::IdleWake
    fn rank(self) -> u8 {
        match self {
            EventKind::StatsSample => 0,
            EventKind::EpochBoundary => 1,
            EventKind::Fault => 2,
            EventKind::UnitBoundary | EventKind::IdleWake => 3,
        }
    }

    fn is_unit(self) -> bool {
        self.rank() == 3
    }
}

/// One scheduled instant. Constructed only by [`EventCalendar`]; the era
/// and generation stamps that invalidate superseded unit entries stay
/// private.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// When the event fires (simulated ms).
    pub at_ms: f64,
    /// What it does.
    pub kind: EventKind,
    /// The unit it steps ([`usize::MAX`] for non-unit events).
    pub unit: usize,
    era: u64,
    gen: u64,
}

impl Event {
    /// The total pop order: time, then kind rank, then unit index.
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.at_ms
            .total_cmp(&other.at_ms)
            .then_with(|| self.kind.rank().cmp(&other.kind.rank()))
            .then_with(|| self.unit.cmp(&other.unit))
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap; the smallest key pops
        // first.
        other.key_cmp(self)
    }
}

/// The min-heap of pending events plus the unit bookkeeping the cluster
/// loop needs: how many units still have a scheduled event (the loop's
/// termination condition) and the earliest scheduled unit time (the epoch
/// handler's effective "now").
#[derive(Debug, Clone, Default)]
pub struct EventCalendar {
    heap: BinaryHeap<Event>,
    /// Bumped when a migration replaces the fleet; unit entries from
    /// older eras are skipped at pop time.
    era: u64,
    /// Scheduled fire time per unit slot (`INFINITY` = unscheduled).
    unit_times: Vec<f64>,
    /// Per-unit generation: bumped when a reschedule supersedes a live
    /// entry (a billed transfer moved the unit's clock), so the old entry
    /// dies lazily in the heap.
    unit_gens: Vec<u64>,
    scheduled_units: usize,
    peak_len: usize,
}

impl EventCalendar {
    /// An empty calendar over `units` unit slots.
    pub fn new(units: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            era: 0,
            unit_times: vec![f64::INFINITY; units],
            unit_gens: vec![0; units],
            scheduled_units: 0,
            peak_len: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        self.heap.push(ev);
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Schedules `unit`'s next event at `at_ms`. Each unit holds at most
    /// one live entry: the caller schedules only at the unit's own pop
    /// (or after a fleet reset), so nothing is ever superseded in place.
    pub fn schedule_unit(&mut self, unit: usize, at_ms: f64, kind: EventKind) {
        debug_assert!(kind.is_unit(), "unit slots only take unit events");
        debug_assert!(
            self.unit_times[unit].is_infinite(),
            "unit {unit} already has a scheduled event"
        );
        debug_assert!(at_ms.is_finite(), "unit events fire at finite times");
        self.unit_times[unit] = at_ms;
        self.scheduled_units += 1;
        self.push(Event {
            at_ms,
            kind,
            unit,
            era: self.era,
            gen: self.unit_gens[unit],
        });
    }

    /// Moves `unit`'s live entry to `at_ms`: a billed transfer (e.g. a
    /// latent write-back charged to a peer) advanced the unit's clock
    /// past its scheduled time. The legacy min-clock scan re-read every
    /// clock per pop and followed such moves implicitly; the calendar
    /// supersedes the stale entry explicitly, leaving it to die in the
    /// heap.
    pub fn reschedule_unit(&mut self, unit: usize, at_ms: f64, kind: EventKind) {
        debug_assert!(kind.is_unit(), "unit slots only take unit events");
        debug_assert!(
            self.unit_times[unit].is_finite(),
            "unit {unit} has no live entry to reschedule"
        );
        debug_assert!(at_ms.is_finite(), "unit events fire at finite times");
        self.unit_gens[unit] += 1;
        self.unit_times[unit] = at_ms;
        self.push(Event {
            at_ms,
            kind,
            unit,
            era: self.era,
            gen: self.unit_gens[unit],
        });
    }

    /// Whether `unit` currently holds a live scheduled entry.
    pub fn is_unit_scheduled(&self, unit: usize) -> bool {
        self.unit_times[unit].is_finite()
    }

    /// Schedules the next metric-registry snapshot.
    pub fn schedule_stats(&mut self, at_ms: f64) {
        let era = self.era;
        self.push(Event {
            at_ms,
            kind: EventKind::StatsSample,
            unit: usize::MAX,
            era,
            gen: 0,
        });
    }

    /// Schedules the next planner epoch boundary.
    pub fn schedule_epoch(&mut self, at_ms: f64) {
        let era = self.era;
        self.push(Event {
            at_ms,
            kind: EventKind::EpochBoundary,
            unit: usize::MAX,
            era,
            gen: 0,
        });
    }

    /// Schedules a fault-plan event. `fault` indexes the cluster loop's
    /// runtime fault table (it rides in the entry's `unit` field). Like
    /// stats and epoch entries, fault entries are era-less — they survive
    /// fleet resets — and do not keep the loop alive on their own: a
    /// fault scheduled after every unit has retired is simply dropped.
    pub fn schedule_fault(&mut self, at_ms: f64, fault: usize) {
        let era = self.era;
        self.push(Event {
            at_ms,
            kind: EventKind::Fault,
            unit: fault,
            era,
            gen: 0,
        });
    }

    /// Drops `unit`'s live entry without replacing it — the unit is dead
    /// and will never fire again. The stale heap entry dies lazily via
    /// the generation bump, exactly as a reschedule would kill it.
    pub fn unschedule_unit(&mut self, unit: usize) {
        debug_assert!(
            self.unit_times[unit].is_finite(),
            "unit {unit} has no live entry to unschedule"
        );
        self.unit_gens[unit] += 1;
        self.unit_times[unit] = f64::INFINITY;
        self.scheduled_units -= 1;
    }

    /// Pops the next live event in deterministic `(time, rank, unit)`
    /// order, skipping unit entries a fleet reset invalidated. A popped
    /// unit's slot becomes unscheduled; the handler reschedules it (or
    /// lets it retire).
    pub fn pop(&mut self) -> Option<Event> {
        while let Some(ev) = self.heap.pop() {
            if ev.kind.is_unit() {
                if ev.era != self.era || ev.gen != self.unit_gens[ev.unit] {
                    continue; // superseded by a migration or a reschedule
                }
                self.unit_times[ev.unit] = f64::INFINITY;
                self.scheduled_units -= 1;
            }
            return Some(ev);
        }
        None
    }

    /// Units that still have a scheduled event — the loop runs while this
    /// is non-zero (leftover stats/epoch entries alone keep nothing
    /// alive, matching the legacy loop's drain condition).
    pub fn scheduled_units(&self) -> usize {
        self.scheduled_units
    }

    /// The earliest scheduled unit event (`INFINITY` when none): the
    /// cluster-wide minimum clock the legacy loop's epoch handler saw,
    /// since every scheduled unit's clock sits exactly at its entry.
    pub fn min_unit_time_ms(&self) -> f64 {
        self.unit_times
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Invalidates every unit entry and re-sizes to `units` slots — the
    /// migration path: old entries die lazily in the heap, and the caller
    /// schedules the replacement fleet's first boundaries.
    pub fn reset_units(&mut self, units: usize) {
        self.era += 1;
        self.unit_times.clear();
        self.unit_times.resize(units, f64::INFINITY);
        self.unit_gens.clear();
        self.unit_gens.resize(units, 0);
        self.scheduled_units = 0;
    }

    /// Pending entries (live and stale).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing at all is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The largest number of pending entries seen — exported through
    /// `RunProfile` so the trajectory tracks event-core health.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_rank_then_unit_order() {
        let mut cal = EventCalendar::new(4);
        cal.schedule_unit(3, 5.0, EventKind::UnitBoundary);
        cal.schedule_unit(1, 5.0, EventKind::IdleWake);
        cal.schedule_unit(0, 7.0, EventKind::UnitBoundary);
        cal.schedule_epoch(5.0);
        cal.schedule_stats(5.0);
        cal.schedule_unit(2, 3.0, EventKind::UnitBoundary);
        let order: Vec<(f64, usize)> = std::iter::from_fn(|| cal.pop())
            .map(|e| (e.at_ms, e.unit))
            .collect();
        // 3.0 first; at 5.0 stats (rank 0) before epoch (rank 1) before
        // units 1 and 3 by index — idle wakes and boundaries tie equally.
        assert_eq!(
            order,
            vec![
                (3.0, 2),
                (5.0, usize::MAX),
                (5.0, usize::MAX),
                (5.0, 1),
                (5.0, 3),
                (7.0, 0)
            ]
        );
    }

    #[test]
    fn unit_bookkeeping_tracks_schedules_and_pops() {
        let mut cal = EventCalendar::new(2);
        assert_eq!(cal.scheduled_units(), 0);
        assert!(cal.min_unit_time_ms().is_infinite());
        cal.schedule_unit(0, 10.0, EventKind::UnitBoundary);
        cal.schedule_unit(1, 4.0, EventKind::IdleWake);
        cal.schedule_stats(1.0);
        assert_eq!(cal.scheduled_units(), 2);
        assert_eq!(cal.min_unit_time_ms(), 4.0);
        let stats = cal.pop().expect("stats first");
        assert_eq!(stats.kind, EventKind::StatsSample);
        assert_eq!(cal.scheduled_units(), 2, "stats pops leave units alone");
        let wake = cal.pop().expect("unit 1");
        assert_eq!(wake.unit, 1);
        assert_eq!(cal.scheduled_units(), 1);
        assert_eq!(cal.min_unit_time_ms(), 10.0);
        cal.schedule_unit(1, 12.0, EventKind::UnitBoundary);
        assert_eq!(cal.min_unit_time_ms(), 10.0);
        assert_eq!(cal.peak_len(), 3);
    }

    #[test]
    fn fault_entries_rank_between_control_plane_and_units() {
        let mut cal = EventCalendar::new(2);
        cal.schedule_unit(0, 5.0, EventKind::UnitBoundary);
        cal.schedule_fault(5.0, 0);
        cal.schedule_epoch(5.0);
        cal.schedule_stats(5.0);
        let kinds: Vec<EventKind> = std::iter::from_fn(|| cal.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::StatsSample,
                EventKind::EpochBoundary,
                EventKind::Fault,
                EventKind::UnitBoundary
            ]
        );
    }

    #[test]
    fn fault_entries_survive_resets_and_do_not_keep_the_loop_alive() {
        let mut cal = EventCalendar::new(2);
        cal.schedule_unit(0, 2.0, EventKind::UnitBoundary);
        cal.schedule_fault(4.0, 7);
        cal.reset_units(1);
        assert_eq!(cal.scheduled_units(), 0, "faults alone keep nothing alive");
        let ev = cal.pop().expect("fault survives the reset");
        assert_eq!((ev.kind, ev.unit), (EventKind::Fault, 7));
    }

    #[test]
    fn unschedule_unit_kills_the_live_entry_lazily() {
        let mut cal = EventCalendar::new(2);
        cal.schedule_unit(0, 3.0, EventKind::UnitBoundary);
        cal.schedule_unit(1, 4.0, EventKind::IdleWake);
        cal.unschedule_unit(0);
        assert_eq!(cal.scheduled_units(), 1);
        assert!(!cal.is_unit_scheduled(0));
        let ev = cal.pop().expect("unit 1 still live");
        assert_eq!(ev.unit, 1);
        assert!(cal.pop().is_none());
    }

    #[test]
    fn reset_units_invalidates_stale_entries_lazily() {
        let mut cal = EventCalendar::new(3);
        for u in 0..3 {
            cal.schedule_unit(u, 2.0 + u as f64, EventKind::UnitBoundary);
        }
        cal.schedule_stats(2.5);
        cal.reset_units(2);
        assert_eq!(cal.scheduled_units(), 0);
        cal.schedule_unit(0, 9.0, EventKind::UnitBoundary);
        cal.schedule_unit(1, 9.0, EventKind::UnitBoundary);
        // The stale 2.0/3.0/4.0 entries are skipped; the stats entry
        // survives the reset.
        let stats = cal.pop().expect("stats survives");
        assert_eq!(stats.kind, EventKind::StatsSample);
        assert_eq!(stats.at_ms, 2.5);
        let first = cal.pop().expect("fresh unit 0");
        assert_eq!((first.at_ms, first.unit), (9.0, 0));
        let second = cal.pop().expect("fresh unit 1");
        assert_eq!((second.at_ms, second.unit), (9.0, 1));
        assert!(cal.pop().is_none());
        assert_eq!(cal.scheduled_units(), 0);
    }
}
