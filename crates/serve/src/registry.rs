//! The shared name-keyed registry backing [`crate::policy::PolicyRegistry`]
//! and [`crate::admission::AdmissionRegistry`]: one implementation of the
//! replace-or-push and deterministic-ordering semantics, two thin typed
//! fronts.

use std::sync::Arc;

/// Insertion-ordered `name → Arc<T>` map (`T` is a trait object). Ordering
/// is registration order, so iteration (sweeps, help text) is
/// deterministic; re-registering a name replaces the entry in place.
#[derive(Debug)]
pub(crate) struct NamedRegistry<T: ?Sized> {
    entries: Vec<(String, Arc<T>)>,
}

// Manual impls: the derives would needlessly require `T: Clone`/
// `T: Default`, which trait objects cannot satisfy (`Arc<T>` clones and an
// empty Vec defaults regardless of `T`).
impl<T: ?Sized> Clone for NamedRegistry<T> {
    fn clone(&self) -> Self {
        Self {
            entries: self.entries.clone(),
        }
    }
}

impl<T: ?Sized> Default for NamedRegistry<T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
        }
    }
}

impl<T: ?Sized> NamedRegistry<T> {
    /// Registers `item` under `name`, replacing any previous entry of that
    /// name (order kept).
    pub fn register(&mut self, name: String, item: Arc<T>) {
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = item,
            None => self.entries.push((name, item)),
        }
    }

    /// Resolves `name` to its item.
    pub fn get(&self, name: &str) -> Option<Arc<T>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, item)| item.clone())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Every registered item, in registration order.
    pub fn all(&self) -> Vec<Arc<T>> {
        self.entries.iter().map(|(_, item)| item.clone()).collect()
    }
}
