//! Cluster-level serving simulation: arrivals → admission → queue → units
//! → report.
//!
//! Scheduling units (whole-model replicas and sharded TP/PP gangs — see
//! [`crate::placement`]) pull work from one shared queue (central
//! scheduler, unit pull), each advancing its own clock one denoising
//! iteration at a time. The event loop always steps the unit with the
//! smallest local clock, which keeps arrival release causal across units
//! and makes the whole simulation deterministic for a fixed trace.
//!
//! Both halves of the control plane are pluggable trait objects carried by
//! [`ServeConfig`]: a [`SchedulerPolicy`] decides admission ordering,
//! batch-join gating, and preemption at iteration boundaries, and an
//! [`AdmissionController`] is consulted once per arrival — before the
//! request enters the queue — and may accept, shed (a priced refusal), or
//! degrade it to a reduced DDIM step budget. Configs are assembled with
//! [`ServeConfig::builder`].

use std::collections::HashMap;
use std::sync::Arc;

use exion_model::config::{ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::partition::PartitionStrategy;
use exion_sim::perf::SimAblation;
use exion_sim::residency::EvictionPolicy;

use crate::admission::{self, AdmissionController, AdmissionDecision, AdmissionView, AdmitAll};
use crate::cost::CostModel;
use crate::metrics::{queue_depth_stats, LatencyStats, ServeReport};
use crate::placement::{Gang, Placement};
use crate::policy::{self, Fcfs, SchedulerPolicy};
use crate::request::{Completion, Request, ShedRecord};
use crate::scheduler::SchedContext;
use crate::trace::{generate, TraceConfig};

/// Serving-cluster configuration. Assemble with [`ServeConfig::builder`];
/// [`ServeConfig::new`] is the all-defaults shorthand (one replica, batch
/// 8, all optimizations, FCFS, admit-all, LRU eviction).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The accelerator instance type.
    pub hw: HwConfig,
    /// How instances are grouped into replicas and sharded gangs.
    pub placement: Placement,
    /// Maximum batch rows per unit.
    pub max_batch: usize,
    /// Which EXION optimizations are active.
    pub ablation: SimAblation,
    /// Scheduling policy (admission ordering, batch-join gating,
    /// preemption decisions).
    pub policy: Arc<dyn SchedulerPolicy>,
    /// Admission controller consulted once per arrival at enqueue time.
    pub admission: Arc<dyn AdmissionController>,
    /// GSC eviction policy of every instance's residency cache.
    pub eviction: EvictionPolicy,
}

impl ServeConfig {
    /// A builder over the defaults: one replica, batch 8, all
    /// optimizations, FCFS scheduling, admit-all admission, LRU eviction.
    pub fn builder(hw: HwConfig) -> ServeConfigBuilder {
        ServeConfigBuilder {
            inner: Self::new(hw),
        }
    }

    /// The all-defaults configuration for `hw` (see [`Self::builder`]).
    pub fn new(hw: HwConfig) -> Self {
        Self {
            hw,
            placement: Placement::replicated(1),
            max_batch: 8,
            ablation: SimAblation::All,
            policy: Arc::new(Fcfs),
            admission: Arc::new(AdmitAll),
            eviction: EvictionPolicy::Lru,
        }
    }
}

/// Builder for [`ServeConfig`] — the one construction path for every
/// non-default cluster (ad-hoc field mutation is gone; policies and
/// admission controllers plug in as trait objects or registry names).
///
/// ```
/// use exion_serve::{DeadlineFeasibility, Placement, ServeConfig};
/// use exion_sim::config::HwConfig;
///
/// let config = ServeConfig::builder(HwConfig::exion24())
///     .placement(Placement::replicated(2))
///     .policy_name("preemptive-edf")
///     .admission(DeadlineFeasibility::default())
///     .max_batch(16)
///     .build();
/// assert_eq!(config.policy.name(), "preemptive-edf");
/// assert_eq!(config.admission.name(), "deadline");
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    inner: ServeConfig,
}

impl ServeConfigBuilder {
    /// Replaces the placement (replicas, sharded gangs, or a mix).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.inner.placement = placement;
        self
    }

    /// Shorthand for a placement of `n` whole-model replicas.
    pub fn instances(self, n: usize) -> Self {
        self.placement(Placement::replicated(n))
    }

    /// Replaces the scheduling policy with a concrete implementation.
    pub fn policy(self, policy: impl SchedulerPolicy + 'static) -> Self {
        self.policy_arc(Arc::new(policy))
    }

    /// Replaces the scheduling policy with a shared trait object.
    pub fn policy_arc(mut self, policy: Arc<dyn SchedulerPolicy>) -> Self {
        self.inner.policy = policy;
        self
    }

    /// Resolves `name` against the built-in policy registry
    /// ([`policy::by_name`]) — the serde-able configuration path.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the registered ones.
    pub fn policy_name(self, name: &str) -> Self {
        let policy = policy::by_name(name).unwrap_or_else(|| {
            panic!(
                "unknown scheduling policy {name:?}; built-ins: {:?}",
                policy::BUILTIN_POLICY_NAMES
            )
        });
        self.policy_arc(policy)
    }

    /// Replaces the admission controller with a concrete implementation.
    pub fn admission(self, controller: impl AdmissionController + 'static) -> Self {
        self.admission_arc(Arc::new(controller))
    }

    /// Replaces the admission controller with a shared trait object.
    pub fn admission_arc(mut self, controller: Arc<dyn AdmissionController>) -> Self {
        self.inner.admission = controller;
        self
    }

    /// Resolves `name` against the built-in admission registry
    /// ([`admission::by_name`]).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the registered ones.
    pub fn admission_name(self, name: &str) -> Self {
        let controller = admission::by_name(name).unwrap_or_else(|| {
            panic!(
                "unknown admission controller {name:?}; built-ins: {:?}",
                admission::BUILTIN_ADMISSION_NAMES
            )
        });
        self.admission_arc(controller)
    }

    /// Replaces the per-unit batch bound (at least 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.inner.max_batch = max_batch.max(1);
        self
    }

    /// Replaces the ablation.
    pub fn ablation(mut self, ablation: SimAblation) -> Self {
        self.inner.ablation = ablation;
        self
    }

    /// Replaces the GSC eviction policy.
    pub fn eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.inner.eviction = eviction;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> ServeConfig {
        self.inner
    }
}

/// Request-level serving simulator over a cluster of EXION instances.
#[derive(Debug, Clone)]
pub struct ServeSimulator {
    config: ServeConfig,
    cost: CostModel,
    model_configs: HashMap<ModelKind, ModelConfig>,
    partition_plans: HashMap<ModelKind, exion_sim::partition::PartitionPlan>,
}

impl ServeSimulator {
    /// A simulator for `config`. Iteration costs are priced lazily and
    /// cached across runs of the same simulator.
    pub fn new(config: ServeConfig) -> Self {
        let cost = CostModel::new(config.hw, config.ablation);
        Self {
            config,
            cost,
            model_configs: HashMap::new(),
            partition_plans: HashMap::new(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Installs a measured sparsity profile for `kind` (e.g. from
    /// `exion-bench::profiles` functional runs): all subsequent pricing —
    /// iteration costs, SLO scaling, capacity estimates — uses it instead
    /// of the analytic closed form.
    pub fn set_sparsity_profile(
        &mut self,
        kind: ModelKind,
        profile: exion_sim::workload::SparsityProfile,
    ) {
        self.cost.set_profile(kind, profile);
    }

    fn model_config(&mut self, kind: ModelKind) -> ModelConfig {
        *self
            .model_configs
            .entry(kind)
            .or_insert_with(|| ModelConfig::for_kind(kind))
    }

    /// The gang partition plan of `kind` under this cluster's strategy,
    /// built once per simulator (pipeline plans walk per-stage op lists).
    fn partition_plan(&mut self, kind: ModelKind) -> exion_sim::partition::PartitionPlan {
        let config = self.model_config(kind);
        let placement = self.config.placement;
        let operand_bytes = self.config.hw.operand_bytes();
        self.partition_plans
            .entry(kind)
            .or_insert_with(|| {
                exion_sim::partition::PartitionPlan::new(
                    &config,
                    placement.strategy,
                    placement.interconnect,
                    operand_bytes,
                )
            })
            .clone()
    }

    /// Builds the scheduling context for the traced `kinds` under this
    /// cluster's placement, reusing the simulator's memoized partition
    /// plans.
    fn sched_context(&mut self, kinds: &[ModelKind]) -> SchedContext {
        let configs: HashMap<ModelKind, ModelConfig> =
            kinds.iter().map(|&k| (k, self.model_config(k))).collect();
        let sharded = self.config.placement.gangs > 0
            && self.config.placement.strategy != PartitionStrategy::Replicated;
        let plans: HashMap<ModelKind, exion_sim::partition::PartitionPlan> = if sharded {
            kinds.iter().map(|&k| (k, self.partition_plan(k))).collect()
        } else {
            HashMap::new()
        };
        SchedContext::build(
            self.config.policy.clone(),
            self.config.max_batch,
            kinds,
            &mut self.cost,
            self.config.placement.interconnect,
            |k| {
                *configs
                    .get(&k)
                    .expect("every traced model kind is precomputed")
            },
            |k| plans.get(&k).cloned(),
        )
    }

    /// Analytic saturation-throughput estimate (requests/s) for `mix`:
    /// each unit's full-batch steady-state throughput (whole-model service
    /// time for replicas, gang-combined shard time plus collectives for
    /// sharded gangs), weighted by the mix's traffic shares and summed
    /// across units. Arrival-rate sweeps anchor on this to place the
    /// saturation knee without hand-tuning per hardware instance.
    pub fn capacity_estimate_rps(&mut self, mix: &crate::trace::WorkloadMix) -> f64 {
        let batch = self.config.max_batch as u64;
        let placement = self.config.placement;
        let total_w: f64 = mix.entries.iter().map(|&(_, w, _)| w).sum();
        // Weighted harmonic mean per unit type: a fraction w_k of requests
        // each occupying 1/r_k of a unit-second gives 1 / Σ (w_k / r_k)
        // requests/s per unit.
        let mut replica_spr = 0.0;
        let mut gang_spr = 0.0;
        for &(kind, w, _) in &mix.entries {
            let config = self.model_config(kind);
            let share = w / total_w;
            let gen_ms = self.cost.generation_latency_ms(&config, batch);
            replica_spr += share / (batch as f64 / (gen_ms / 1000.0));
            if placement.gangs > 0 {
                let plan = self.partition_plan(kind);
                let gang_ms = self.cost.gang_generation_latency_ms(&config, &plan, batch);
                gang_spr += share / (batch as f64 / (gang_ms / 1000.0));
            }
        }
        let mut capacity = placement.replicas as f64 / replica_spr;
        if placement.gangs > 0 {
            capacity += placement.gangs as f64 / gang_spr;
        }
        capacity
    }

    /// Runs the trace to completion and reports serving metrics.
    ///
    /// Every arrival the admission controller accepts is eventually
    /// admitted and completed; refused (shed) arrivals never enter the
    /// queue, so `completed + shed_requests == arrivals` once the cluster
    /// drains. Under the default [`AdmitAll`] controller saturation shows
    /// up as unbounded queueing delay rather than lost requests. SLOs
    /// scale the *replica* full-batch service time regardless of
    /// placement, so goodput is comparable across replicated and sharded
    /// deployments of the same trace.
    pub fn run(&mut self, trace: &TraceConfig) -> ServeReport {
        let arrivals = generate(trace);
        let max_batch = self.config.max_batch as u64;
        let mut pending: Vec<Request> = Vec::with_capacity(arrivals.len());
        for (id, a) in arrivals.iter().enumerate() {
            let config = self.model_config(a.model);
            // The SLO scales the model's steady-state service time (a full
            // generation at the deployment's batch size), so it is
            // attainable under batching and degrades only through queueing.
            let slo_ms = trace.mix.slo_multiplier(a.model)
                * self.cost.generation_latency_ms(&config, max_batch);
            pending.push(Request::new(
                id as u64,
                a.model,
                a.at_ms,
                slo_ms,
                config.iterations,
            ));
        }

        let placement = self.config.placement;
        let mut units: Vec<Gang> = Vec::with_capacity(placement.units());
        let mut next_id = 0usize;
        for _ in 0..placement.replicas {
            units.push(Gang::replica(
                next_id,
                &self.config.hw,
                self.config.eviction,
            ));
            next_id += 1;
        }
        for _ in 0..placement.gangs {
            units.push(Gang::sharded(
                next_id,
                &self.config.hw,
                self.config.eviction,
                placement.strategy,
            ));
            next_id += placement.strategy.degree();
        }
        let admission = self.config.admission.clone();
        let mut queue: Vec<Request> = Vec::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut sheds: Vec<ShedRecord> = Vec::new();
        let mut degraded_requests = 0usize;
        let mut depth_events: Vec<(f64, i64)> = Vec::new();
        let mut next_arrival = 0usize;

        // Per-model scheduling constants (periods, weight/latent footprints,
        // refill costs, partition plans) are computed once per traced kind.
        let ctx = self.sched_context(&trace.mix.kinds());

        loop {
            // Step the unit with the smallest clock (ties by index).
            let i = (0..units.len())
                .min_by(|&a, &b| {
                    units[a]
                        .now_ms()
                        .total_cmp(&units[b].now_ms())
                        .then(a.cmp(&b))
                })
                .expect("at least one unit");
            if units[i].now_ms().is_infinite() {
                break; // every unit is drained
            }

            // Release arrivals up to this unit's clock, consulting the
            // admission controller once per arrival. The decision fires at
            // the *release* instant (the iteration boundary whose clock
            // passed the arrival) — up to one iteration after arrival — so
            // the view carries that clock and feasibility sees the slack
            // that actually remains, not the full SLO.
            while next_arrival < pending.len()
                && pending[next_arrival].arrival_ms <= units[i].now_ms()
            {
                let mut r = pending[next_arrival];
                next_arrival += 1;
                let decided_at = units[i].now_ms().max(r.arrival_ms);
                let decision = {
                    let view = AdmissionView::new(decided_at, &queue, &units, &ctx);
                    admission.decide(&r, &view)
                };
                match decision {
                    AdmissionDecision::Accept => {}
                    AdmissionDecision::Degrade { steps } => {
                        r.degrade_to(steps);
                        if r.degraded {
                            degraded_requests += 1;
                        }
                    }
                    AdmissionDecision::Shed => {
                        // Priced refusal: recorded (and counted against SLO
                        // attainment), but the request never queues.
                        sheds.push(ShedRecord {
                            id: r.id,
                            model: r.model,
                            at_ms: decided_at,
                        });
                        continue;
                    }
                }
                depth_events.push((r.arrival_ms, 1));
                queue.push(r);
            }

            if units[i].is_idle() && queue.is_empty() {
                if next_arrival < pending.len() {
                    // Jump the idle clock to the next arrival.
                    units[i].jump_to(pending[next_arrival].arrival_ms);
                } else {
                    units[i].jump_to(f64::INFINITY);
                }
                continue;
            }

            // Iteration boundary: admit (possibly preempting), then execute
            // one iteration.
            let outcome = units[i].admit(&mut queue, &ctx);
            for &(_, at_ms) in &outcome.parked {
                depth_events.push((at_ms, 1));
            }
            for &(id, at_ms) in &outcome.admitted {
                depth_events.push((at_ms, -1));
                // A request parked on one unit may resume on another;
                // release any latent copy the parking unit still holds
                // (billing the migration write-back there) so it neither
                // depresses that unit's weight residency nor is later
                // mispriced as a dirty spill.
                for (j, other) in units.iter_mut().enumerate() {
                    if j != i {
                        other.discard_latent(id, &ctx);
                    }
                }
            }
            // Parks can evict other parked latents; their queued requests'
            // resume-affinity hints are now stale (the latent is in DRAM,
            // no instance is preferable) and must not keep deferring them.
            for id in units[i].take_evicted_latents() {
                for r in queue.iter_mut().filter(|r| r.id == id) {
                    r.parked_on = None;
                }
            }
            if units[i].is_idle() {
                // A sparsity gate cannot block an idle unit, so nothing
                // in the queue is admissible yet: every queued request is a
                // parked one whose ready time lies ahead of this clock.
                // Jump to the earliest wake-up (a parked request becoming
                // ready, or the next arrival) so the loop always advances.
                let next_ready = queue
                    .iter()
                    .map(|r| r.ready_ms)
                    .fold(f64::INFINITY, f64::min);
                let next_arr = pending
                    .get(next_arrival)
                    .map(|r| r.arrival_ms)
                    .unwrap_or(f64::INFINITY);
                // The queue is non-empty here (the empty case jumped above),
                // so the wake target is finite and strictly ahead.
                let wake = next_ready.min(next_arr);
                debug_assert!(wake > units[i].now_ms(), "idle wake must advance");
                units[i].jump_to(wake);
                continue;
            }
            completions.extend(units[i].execute_iteration(&mut self.cost, &ctx));
            // Weight refills can evict parked latents too.
            for id in units[i].take_evicted_latents() {
                for r in queue.iter_mut().filter(|r| r.id == id) {
                    r.parked_on = None;
                }
            }
        }

        completions.sort_by_key(|c| c.id);
        self.report(
            trace,
            &arrivals,
            completions,
            sheds,
            degraded_requests,
            &mut depth_events,
            &units,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        trace: &TraceConfig,
        arrivals: &[crate::trace::Arrival],
        completions: Vec<Completion>,
        sheds: Vec<ShedRecord>,
        degraded_requests: usize,
        depth_events: &mut [(f64, i64)],
        units: &[Gang],
    ) -> ServeReport {
        let makespan_ms = completions
            .iter()
            .map(|c| c.finished_ms)
            .fold(0.0, f64::max);
        let makespan_s = (makespan_ms / 1000.0).max(1e-9);
        let within_slo = completions.iter().filter(|c| c.within_slo()).count();
        let latency =
            LatencyStats::from_unsorted(completions.iter().map(|c| c.latency_ms()).collect());
        let queue_delay =
            LatencyStats::from_unsorted(completions.iter().map(|c| c.queue_ms()).collect());
        let (mean_queue_depth, peak_queue_depth) = queue_depth_stats(depth_events, makespan_ms);
        let per_gang: Vec<_> = units.iter().map(|u| u.stats(makespan_ms)).collect();
        let per_instance: Vec<_> = units
            .iter()
            .flat_map(|u| u.member_stats(makespan_ms))
            .collect();
        let energy_mj: f64 = per_instance.iter().map(|s| s.energy_mj).sum();
        // Iterations, batch occupancy, and executed rows are gang-level
        // quantities (a gang iteration occupies every member once), so the
        // leader-recorded per-instance counters sum correctly.
        let total_iters: u64 = per_instance.iter().map(|s| s.iterations).sum();
        let sparse_iters: f64 = per_instance
            .iter()
            .map(|s| s.sparse_iteration_frac * s.iterations as f64)
            .sum();
        let batch_rows: f64 = per_instance
            .iter()
            .map(|s| s.mean_batch * s.iterations as f64)
            .sum();
        // Priced refusals: a shed is a definite SLO miss — it joins the
        // attainment denominator even though it consumed no machine time.
        let answered = completions.len() + sheds.len();
        ServeReport {
            hw_name: self.config.hw.name.to_string(),
            policy: self.config.policy.name().to_string(),
            admission: self.config.admission.name().to_string(),
            pattern: trace.pattern.name().to_string(),
            instances: self.config.placement.total_instances(),
            arrivals: arrivals.len(),
            completed: completions.len(),
            shed_requests: sheds.len(),
            degraded_requests,
            offered_rps: arrivals.len() as f64 / (trace.horizon_ms / 1000.0).max(1e-9),
            throughput_rps: completions.len() as f64 / makespan_s,
            goodput_rps: within_slo as f64 / makespan_s,
            slo_attainment: if answered == 0 {
                0.0
            } else {
                within_slo as f64 / answered as f64
            },
            horizon_ms: trace.horizon_ms,
            makespan_ms,
            latency,
            queue_delay,
            energy_mj,
            joules_per_request: if completions.is_empty() {
                0.0
            } else {
                energy_mj / 1000.0 / completions.len() as f64
            },
            mean_utilization: if per_instance.is_empty() {
                0.0
            } else {
                per_instance.iter().map(|s| s.utilization).sum::<f64>() / per_instance.len() as f64
            },
            mean_batch_occupancy: if total_iters > 0 {
                batch_rows / total_iters as f64
            } else {
                0.0
            },
            sparse_iteration_frac: if total_iters > 0 {
                sparse_iters / total_iters as f64
            } else {
                0.0
            },
            mean_queue_depth,
            peak_queue_depth,
            preemptions: per_instance.iter().map(|s| s.preemptions).sum(),
            latent_spills: per_instance.iter().map(|s| s.latent_spills).sum(),
            weight_refill_bytes: per_instance.iter().map(|s| s.weight_refill_bytes).sum(),
            residency_hit_rate: {
                let hit: u64 = per_instance.iter().map(|s| s.weight_hit_bytes).sum();
                let refill: u64 = per_instance.iter().map(|s| s.weight_refill_bytes).sum();
                if hit + refill > 0 {
                    hit as f64 / (hit + refill) as f64
                } else {
                    1.0
                }
            },
            gangs: self.config.placement.gangs,
            collective_ms: per_gang.iter().map(|g| g.collective_ms).sum(),
            collective_bytes: per_gang.iter().map(|g| g.collective_bytes).sum(),
            per_gang,
            per_instance,
            completions,
            sheds,
        }
    }
}
