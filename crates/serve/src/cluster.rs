//! Cluster-level serving simulation: arrivals → admission → queue → units
//! → report.
//!
//! Scheduling units (whole-model replicas and sharded TP/PP gangs — see
//! [`crate::placement`]) pull work from one shared queue (central
//! scheduler, unit pull), each advancing its own clock one denoising
//! iteration at a time. The loop is driven by an event calendar
//! ([`crate::calendar`]): a binary heap holding each unit's next
//! iteration boundary (or idle wake) plus the recurring stats-snapshot
//! and planner-epoch events, popped in deterministic (time, kind, unit)
//! order — which keeps arrival release causal across units, makes the
//! whole simulation deterministic for a fixed trace, and lets idle units
//! cost nothing during arrival gaps. Arrivals stream lazily from the
//! trace generator, so memory is bounded by in-flight state, not trace
//! length.
//!
//! Both halves of the control plane are pluggable trait objects carried by
//! [`ServeConfig`]: a [`SchedulerPolicy`] decides admission ordering,
//! batch-join gating, and preemption at iteration boundaries, and an
//! [`AdmissionController`] is consulted once per arrival — before the
//! request enters the queue — and may accept, shed (a priced refusal), or
//! degrade it to a reduced DDIM step budget. Configs are assembled with
//! [`ServeConfig::builder`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use exion_model::config::{ModelConfig, ModelKind};
use exion_sim::config::HwConfig;
use exion_sim::partition::PartitionStrategy;
use exion_sim::perf::SimAblation;
use exion_sim::residency::EvictionPolicy;
use exion_telemetry::{
    CounterSample, InstantMarker, LogHistogram, NullSink, RequestEvent, Sink, SliceKind,
    SpanRecord, StopWatch, TimelineSlice,
};

use crate::admission::{self, AdmissionController, AdmissionDecision, AdmissionView, AdmitAll};
use crate::attribution::{AttributionBuilder, AttributionReport};
use crate::calendar::{EventCalendar, EventKind};
use crate::cost::CostModel;
use crate::fault::{CheckpointPolicy, FaultKind, FaultPlan, FaultSpec};
use crate::metrics::{
    DepthTracker, EpochStat, FaultRecord, FaultReport, LatencyStats, MetricsSnapshot,
    PlannerReport, ReplanEvent, SeriesRecorder, ServeReport,
};
use crate::placement::{Gang, Placement};
use crate::planner::PlacementPlanner;
use crate::policy::{self, Fcfs, SchedulerPolicy};
use crate::queue::ReadyQueue;
use crate::request::{Completion, LostRecord, Request, ShedRecord};
use crate::scheduler::{AdmitOutcome, SchedContext};
use crate::trace::{Arrival, ArrivalStream, TraceConfig};

/// The widest gang one placement may declare: partition shard indices are
/// `u8`, and nothing on a board approaches this.
const MAX_GANG_DEGREE: usize = 64;

/// Auto-placement: the planner that chooses (and online re-chooses) the
/// cluster's placement, plus the offered-load forecast the initial offline
/// plan is built against. Installed with
/// [`ServeConfigBuilder::auto_placement`]; when present, the static
/// [`ServeConfig::placement`] is ignored.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AutoPlacement {
    /// The optimizer and its re-planning knobs.
    pub planner: PlacementPlanner,
    /// The offered-load forecast (requests/s) the initial plan targets.
    pub forecast_rps: f64,
}

/// Why a [`ServeConfigBuilder`] refused to produce a configuration —
/// returned by [`ServeConfigBuilder::try_build`] so placement mistakes
/// surface as descriptive errors at build time instead of panics deep in
/// the cluster loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The placement declares no scheduling unit at all.
    EmptyPlacement,
    /// Gangs were declared under a single-member strategy (a world-size-1
    /// "gang" is a replica; the partition plan would have nothing to cut).
    DegenerateGangStrategy {
        /// The offending strategy label.
        strategy: String,
    },
    /// A gang's world size exceeds what instance indexing supports.
    OversizedGang {
        /// The declared gang degree.
        degree: usize,
        /// The maximum supported degree.
        max: usize,
    },
    /// The gang interconnect cannot move bytes.
    InvalidInterconnect {
        /// The declared link bandwidth (GB/s).
        link_gbps: f64,
    },
    /// The auto-placement planner's knobs are unusable.
    InvalidPlanner {
        /// What was wrong.
        reason: String,
    },
    /// The telemetry sampling interval cannot schedule snapshots.
    InvalidStatsInterval {
        /// The declared interval (ms).
        interval_ms: f64,
    },
    /// The fault plan carries an unschedulable event.
    InvalidFaultPlan {
        /// What was wrong.
        reason: String,
    },
    /// The checkpoint policy can never fire.
    InvalidCheckpoint {
        /// The declared period (denoising steps).
        every_steps: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyPlacement => {
                write!(f, "placement declares zero replicas and zero gangs")
            }
            ConfigError::DegenerateGangStrategy { strategy } => write!(
                f,
                "placement declares gangs under single-member strategy {strategy:?}; \
                 use replicas (or a TP/PP strategy with degree >= 2)"
            ),
            ConfigError::OversizedGang { degree, max } => write!(
                f,
                "gang degree {degree} exceeds the supported maximum of {max} members"
            ),
            ConfigError::InvalidInterconnect { link_gbps } => write!(
                f,
                "gang interconnect bandwidth must be positive, got {link_gbps} GB/s"
            ),
            ConfigError::InvalidPlanner { reason } => {
                write!(f, "auto-placement planner misconfigured: {reason}")
            }
            ConfigError::InvalidStatsInterval { interval_ms } => write!(
                f,
                "telemetry stats interval must be positive and finite, got {interval_ms} ms"
            ),
            ConfigError::InvalidFaultPlan { reason } => {
                write!(f, "fault plan is unschedulable: {reason}")
            }
            ConfigError::InvalidCheckpoint { every_steps } => write!(
                f,
                "checkpoint period must be at least one step, got {every_steps}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Serving-cluster configuration. Assemble with [`ServeConfig::builder`];
/// [`ServeConfig::new`] is the all-defaults shorthand (one replica, batch
/// 8, all optimizations, FCFS, admit-all, LRU eviction).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The accelerator instance type.
    pub hw: HwConfig,
    /// How instances are grouped into replicas and sharded gangs.
    pub placement: Placement,
    /// Maximum batch rows per unit.
    pub max_batch: usize,
    /// Which EXION optimizations are active.
    pub ablation: SimAblation,
    /// Scheduling policy (admission ordering, batch-join gating,
    /// preemption decisions).
    pub policy: Arc<dyn SchedulerPolicy>,
    /// Admission controller consulted once per arrival at enqueue time.
    pub admission: Arc<dyn AdmissionController>,
    /// GSC eviction policy of every instance's residency cache.
    pub eviction: EvictionPolicy,
    /// Auto-placement: when set, the planner chooses the initial placement
    /// for the traced mix and re-plans at epoch boundaries; the static
    /// `placement` field is ignored.
    pub auto_placement: Option<AutoPlacement>,
    /// Telemetry sampling interval (ms of simulated time): when set, the
    /// cluster counter/gauge registry is snapshotted into
    /// [`ServeReport::series`] every interval (in addition to planner
    /// epoch boundaries). `None` (the default) samples at epoch
    /// boundaries only.
    pub stats_interval_ms: Option<f64>,
    /// Seeded fault-injection plan: crashes, gang-member losses, and
    /// interconnect degradations scheduled on the event calendar. The
    /// empty plan (the default) schedules nothing — the run is
    /// byte-identical to a fault-free simulation.
    pub fault_plan: FaultPlan,
    /// Opt-in periodic latent checkpointing: every N denoising steps each
    /// running request parks a DRAM copy of its latent (priced as a spill
    /// transfer), so a later fault requeues it from the checkpoint
    /// instead of losing it. `None` (the default) checkpoints nothing.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Whether the run accumulates per-request latency attribution into
    /// [`ServeReport::attribution`] (on by default). Attribution is a
    /// pure observer — disabling it changes memory footprint only, never
    /// simulation outcomes; the golden-fingerprint tests pin that.
    pub attribution: bool,
}

impl ServeConfig {
    /// A builder over the defaults: one replica, batch 8, all
    /// optimizations, FCFS scheduling, admit-all admission, LRU eviction.
    pub fn builder(hw: HwConfig) -> ServeConfigBuilder {
        ServeConfigBuilder {
            inner: Self::new(hw),
        }
    }

    /// The all-defaults configuration for `hw` (see [`Self::builder`]).
    pub fn new(hw: HwConfig) -> Self {
        Self {
            hw,
            placement: Placement::replicated(1),
            max_batch: 8,
            ablation: SimAblation::All,
            policy: Arc::new(Fcfs),
            admission: Arc::new(AdmitAll),
            eviction: EvictionPolicy::Lru,
            auto_placement: None,
            stats_interval_ms: None,
            fault_plan: FaultPlan::empty(),
            checkpoint: None,
            attribution: true,
        }
    }
}

/// Builder for [`ServeConfig`] — the one construction path for every
/// non-default cluster (ad-hoc field mutation is gone; policies and
/// admission controllers plug in as trait objects or registry names).
///
/// ```
/// use exion_serve::{DeadlineFeasibility, Placement, ServeConfig};
/// use exion_sim::config::HwConfig;
///
/// let config = ServeConfig::builder(HwConfig::exion24())
///     .placement(Placement::replicated(2))
///     .policy_name("preemptive-edf")
///     .admission(DeadlineFeasibility::default())
///     .max_batch(16)
///     .build();
/// assert_eq!(config.policy.name(), "preemptive-edf");
/// assert_eq!(config.admission.name(), "deadline");
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    inner: ServeConfig,
}

impl ServeConfigBuilder {
    /// Replaces the placement (replicas, sharded gangs, or a mix).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.inner.placement = placement;
        self
    }

    /// Shorthand for a placement of `n` whole-model replicas.
    pub fn instances(self, n: usize) -> Self {
        self.placement(Placement::replicated(n))
    }

    /// Replaces the scheduling policy with a concrete implementation.
    pub fn policy(self, policy: impl SchedulerPolicy + 'static) -> Self {
        self.policy_arc(Arc::new(policy))
    }

    /// Replaces the scheduling policy with a shared trait object.
    pub fn policy_arc(mut self, policy: Arc<dyn SchedulerPolicy>) -> Self {
        self.inner.policy = policy;
        self
    }

    /// Resolves `name` against the built-in policy registry
    /// ([`policy::by_name`]) — the serde-able configuration path.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the registered ones.
    pub fn policy_name(self, name: &str) -> Self {
        let policy = policy::by_name(name).unwrap_or_else(|| {
            panic!(
                "unknown scheduling policy {name:?}; built-ins: {:?}",
                policy::BUILTIN_POLICY_NAMES
            )
        });
        self.policy_arc(policy)
    }

    /// Replaces the admission controller with a concrete implementation.
    pub fn admission(self, controller: impl AdmissionController + 'static) -> Self {
        self.admission_arc(Arc::new(controller))
    }

    /// Replaces the admission controller with a shared trait object.
    pub fn admission_arc(mut self, controller: Arc<dyn AdmissionController>) -> Self {
        self.inner.admission = controller;
        self
    }

    /// Resolves `name` against the built-in admission registry
    /// ([`admission::by_name`]).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the registered ones.
    pub fn admission_name(self, name: &str) -> Self {
        let controller = admission::by_name(name).unwrap_or_else(|| {
            panic!(
                "unknown admission controller {name:?}; built-ins: {:?}",
                admission::BUILTIN_ADMISSION_NAMES
            )
        });
        self.admission_arc(controller)
    }

    /// Replaces the per-unit batch bound (at least 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.inner.max_batch = max_batch.max(1);
        self
    }

    /// Replaces the ablation.
    pub fn ablation(mut self, ablation: SimAblation) -> Self {
        self.inner.ablation = ablation;
        self
    }

    /// Replaces the GSC eviction policy.
    pub fn eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.inner.eviction = eviction;
        self
    }

    /// Installs auto-placement: `planner` chooses the initial placement
    /// for the traced mix at `forecast_rps` offered load and re-plans at
    /// epoch boundaries when realized load diverges past its hysteresis
    /// threshold. The static placement is ignored while installed.
    pub fn auto_placement(mut self, planner: PlacementPlanner, forecast_rps: f64) -> Self {
        self.inner.auto_placement = Some(AutoPlacement {
            planner,
            forecast_rps,
        });
        self
    }

    /// Samples the cluster counter/gauge registry into the report's
    /// time-series every `interval_ms` of simulated time (planner epoch
    /// boundaries are always sampled; this adds a fixed cadence for
    /// statically placed runs).
    pub fn stats_interval_ms(mut self, interval_ms: f64) -> Self {
        self.inner.stats_interval_ms = Some(interval_ms);
        self
    }

    /// Installs a fault-injection plan: its events are scheduled on the
    /// event calendar and fire in deterministic order alongside the
    /// simulation's own events (see [`crate::fault`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.inner.fault_plan = plan;
        self
    }

    /// Enables periodic latent checkpointing: every `steps` denoising
    /// steps each running request parks a DRAM copy of its latent (a
    /// priced spill transfer) so a fault on its unit requeues it from the
    /// checkpoint instead of losing it.
    pub fn checkpoint_every(mut self, steps: usize) -> Self {
        self.inner.checkpoint = Some(CheckpointPolicy::every(steps));
        self
    }

    /// Toggles per-request latency attribution (on by default). Turning
    /// it off drops [`ServeReport::attribution`] — useful for
    /// memory-constrained fleet-scale sweeps — and changes nothing else:
    /// attribution never feeds back into the simulation.
    pub fn attribution(mut self, enabled: bool) -> Self {
        self.inner.attribution = enabled;
        self
    }

    /// The finished, validated configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid setting —
    /// an empty placement, gangs under a single-member strategy, a gang
    /// wider than instance indexing supports, a zero-bandwidth
    /// interconnect, or unusable planner knobs — instead of letting the
    /// cluster loop panic mid-run.
    pub fn try_build(mut self) -> Result<ServeConfig, ConfigError> {
        let placement = self.inner.placement;
        if placement.units() == 0 {
            return Err(ConfigError::EmptyPlacement);
        }
        validate_gangs(&placement)?;
        if let Some(interval_ms) = self.inner.stats_interval_ms {
            if !interval_ms.is_finite() || interval_ms <= 0.0 {
                return Err(ConfigError::InvalidStatsInterval { interval_ms });
            }
        }
        self.inner
            .fault_plan
            .validate()
            .map_err(|reason| ConfigError::InvalidFaultPlan { reason })?;
        if let Some(policy) = self.inner.checkpoint {
            if policy.every_steps == 0 {
                return Err(ConfigError::InvalidCheckpoint {
                    every_steps: policy.every_steps,
                });
            }
        }
        if let Some(ap) = &mut self.inner.auto_placement {
            // The planner must price candidates at the deployment's real
            // batch bound, whatever order the builder calls came in.
            ap.planner.config.max_batch = self.inner.max_batch;
            let cfg = &ap.planner.config;
            if cfg.budget == 0 {
                return Err(ConfigError::InvalidPlanner {
                    reason: "instance budget is zero".to_string(),
                });
            }
            if !cfg.epoch_ms.is_finite() || cfg.epoch_ms <= 0.0 {
                return Err(ConfigError::InvalidPlanner {
                    reason: format!("epoch_ms must be positive, got {}", cfg.epoch_ms),
                });
            }
            if !cfg.hysteresis.is_finite() || cfg.hysteresis < 0.0 {
                return Err(ConfigError::InvalidPlanner {
                    reason: format!("hysteresis must be non-negative, got {}", cfg.hysteresis),
                });
            }
            if !ap.forecast_rps.is_finite() || ap.forecast_rps <= 0.0 {
                return Err(ConfigError::InvalidPlanner {
                    reason: format!(
                        "forecast must be a positive offered load, got {} rps",
                        ap.forecast_rps
                    ),
                });
            }
            if cfg.interconnect.link_gbps <= 0.0 {
                return Err(ConfigError::InvalidInterconnect {
                    link_gbps: cfg.interconnect.link_gbps,
                });
            }
            for &strategy in &cfg.strategies {
                if strategy.degree() > MAX_GANG_DEGREE {
                    return Err(ConfigError::OversizedGang {
                        degree: strategy.degree(),
                        max: MAX_GANG_DEGREE,
                    });
                }
            }
        }
        Ok(self.inner)
    }

    /// The finished configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message when the configuration is
    /// invalid; use [`Self::try_build`] to handle the error instead.
    pub fn build(self) -> ServeConfig {
        match self.try_build() {
            Ok(config) => config,
            Err(e) => panic!("invalid serving configuration: {e}"),
        }
    }
}

/// Validates the gang half of a placement: real multi-member strategies
/// within indexing bounds, over an interconnect that can move bytes.
fn validate_gangs(placement: &Placement) -> Result<(), ConfigError> {
    if placement.gangs == 0 {
        return Ok(());
    }
    let degree = placement.strategy.degree();
    if degree < 2 {
        return Err(ConfigError::DegenerateGangStrategy {
            strategy: placement.strategy.label(),
        });
    }
    if degree > MAX_GANG_DEGREE {
        return Err(ConfigError::OversizedGang {
            degree,
            max: MAX_GANG_DEGREE,
        });
    }
    if placement.interconnect.link_gbps <= 0.0 {
        return Err(ConfigError::InvalidInterconnect {
            link_gbps: placement.interconnect.link_gbps,
        });
    }
    Ok(())
}

/// The online re-planner's running state: the planner, the forecast it is
/// currently operating on, and the accounting it accumulates.
#[derive(Debug, Clone)]
struct PlannerState {
    planner: PlacementPlanner,
    forecast_rps: f64,
    epoch_start_ms: f64,
    report: PlannerReport,
}

/// Builds the scheduling units of `placement`, assigning member instance
/// ids from `*next_id` on (monotone across migrations, so retired and new
/// instances never collide).
fn build_units(
    placement: &Placement,
    hw: &HwConfig,
    eviction: EvictionPolicy,
    next_id: &mut usize,
) -> Vec<Gang> {
    let mut units: Vec<Gang> = Vec::with_capacity(placement.units());
    for _ in 0..placement.replicas {
        units.push(Gang::replica(*next_id, hw, eviction));
        *next_id += 1;
    }
    for _ in 0..placement.gangs {
        units.push(Gang::sharded(*next_id, hw, eviction, placement.strategy));
        *next_id += placement.strategy.degree();
    }
    units
}

/// Declares one timeline track per member instance of `units` on `sink`
/// (called at cluster build and after every migration, so retired and new
/// instances each keep their own named track in the exported trace).
fn declare_unit_tracks(units: &[Gang], sink: &mut dyn Sink) {
    for unit in units {
        let label = unit.strategy().label();
        for (slot, m) in unit.members.iter().enumerate() {
            let name = if unit.members.len() == 1 {
                format!("inst {} ({label})", m.id)
            } else {
                format!("inst {} ({label} member {slot})", m.id)
            };
            sink.declare_track(m.id as u32, name);
        }
    }
}

/// Emits one [`SliceKind::Idle`] slice per member of `unit` covering the
/// gap the idle clock is about to jump over, so exported timelines show
/// contiguous busy/idle coverage instead of silent holes.
fn emit_idle_slices(unit: &Gang, wake_ms: f64, sink: &mut dyn Sink) {
    let start_ms = unit.now_ms();
    let dur_ms = wake_ms - start_ms;
    if dur_ms <= 0.0 {
        return;
    }
    for m in &unit.members {
        sink.slice(TimelineSlice {
            instance: m.id as u32,
            kind: SliceKind::Idle,
            start_ms,
            dur_ms,
            label: "idle",
            batch: 0,
        });
    }
}

/// One entry of the cluster loop's runtime fault table. The calendar's
/// [`EventKind::Fault`] entries carry indices into this table: the
/// configured plan's events occupy the head, and the recoveries / link
/// restores each fault pairs itself with are appended as it fires.
#[derive(Debug, Clone, Copy)]
enum RuntimeFault {
    /// A planned fault, as configured.
    Inject(FaultSpec),
    /// Crashed capacity rejoins after its repair delay. `instances` is
    /// the planner-budget slice to restore (0 under static placement,
    /// where the slot-sleeping replacement wakes by itself).
    Recover { crashed_at: f64, instances: usize },
    /// An interconnect degradation window closes.
    LinkRestore { slowdown: f64 },
}

/// `placement` with its gang interconnect degraded by `slowdown` (a
/// bandwidth cut by that factor on every link). A slowdown of exactly 1.0
/// returns the placement untouched, so healthy runs price the configured
/// fabric bit-for-bit.
fn degraded_placement(placement: &Placement, slowdown: f64) -> Placement {
    if slowdown == 1.0 {
        return *placement;
    }
    let mut p = *placement;
    p.interconnect.link_gbps /= slowdown;
    p
}

/// Per-unit attribution clock: the facts the [`AttributionBuilder`] needs
/// that the simulation does not hand over directly. Tracks the unit's
/// previous boundary instant (the batch-join "door floor") and running
/// collective / refill-stall milliseconds, derived incrementally from the
/// gang's cumulative counters after each executed iteration. Pure
/// observation — nothing here is read by the scheduler.
#[derive(Debug, Clone)]
struct UnitAttrib {
    /// The unit's previous boundary event instant (ms).
    prev_boundary_ms: f64,
    /// Cumulative collective milliseconds attributed so far.
    coll_ms: f64,
    /// Cumulative refill-stall milliseconds attributed so far.
    refill_ms: f64,
    /// Last observed [`Gang::collective_totals`] milliseconds.
    coll_total_prev: f64,
    /// Last observed per-member refill byte counters.
    refill_prev: Vec<u64>,
}

impl UnitAttrib {
    fn new(unit: &Gang) -> Self {
        Self {
            prev_boundary_ms: unit.now_ms(),
            coll_ms: 0.0,
            refill_ms: 0.0,
            coll_total_prev: unit.collective_totals().0,
            refill_prev: unit
                .members
                .iter()
                .map(|m| m.refill_bytes_so_far())
                .collect(),
        }
    }

    /// Folds one executed iteration (`iter_start` to the unit's clock)
    /// into the running stall counters: the collective delta clamps to
    /// the iteration, and the refill stall is the slowest member's
    /// transfer time for its fresh refill bytes, clamped to what the
    /// iteration has left after collectives.
    fn after_iteration(&mut self, unit: &Gang, ctx: &SchedContext, iter_start: f64) {
        let dur = (unit.now_ms() - iter_start).max(0.0);
        let coll_total = unit.collective_totals().0;
        let coll_delta = (coll_total - self.coll_total_prev).clamp(0.0, dur);
        self.coll_total_prev = coll_total;
        self.coll_ms += coll_delta;
        let mut refill_stall: f64 = 0.0;
        for (slot, m) in unit.members.iter().enumerate() {
            let bytes = m.refill_bytes_so_far();
            let delta = bytes.saturating_sub(self.refill_prev[slot]);
            self.refill_prev[slot] = bytes;
            if delta > 0 {
                refill_stall = refill_stall.max(ctx.transfer_ms(delta));
            }
        }
        self.refill_ms += refill_stall.min((dur - coll_delta).max(0.0));
    }
}

/// Applies a fault's destruction semantics to a unit already marked dead:
/// drains its batch (checkpointed requests requeue with their steps
/// rolled back, the rest are lost) and resolves every queued request
/// whose parked latent lives on this unit — survivors of a member loss
/// write the latent back to DRAM (priced on the holding member), while a
/// latent on a dead member is gone and its request restarts from a DRAM
/// checkpoint or is lost. Returns `(requeued, lost)` counts.
#[allow(clippy::too_many_arguments)]
fn teardown_dead_unit(
    unit: &mut Gang,
    queue: &mut ReadyQueue,
    ctx: &SchedContext,
    at_ms: f64,
    depth: &mut DepthTracker,
    drains_total: &mut u64,
    inflight_rows: &mut i64,
    losts: &mut Vec<LostRecord>,
    unit_stalls: (f64, f64),
    attrib: &mut Option<AttributionBuilder>,
    sink: &mut dyn Sink,
    traced: bool,
) -> (usize, usize) {
    let (ua_coll, ua_refill) = unit_stalls;
    let out = unit.drain_for_migration(queue, ctx, at_ms);
    let mut requeued = out.requeued.len();
    let mut lost = out.lost.len();
    *drains_total += out.requeued.len() as u64;
    *inflight_rows -= (out.requeued.len() + out.lost.len()) as i64;
    for &(id, t) in &out.requeued {
        depth.stamp(t, 1);
        if let Some(ab) = attrib.as_mut() {
            ab.fault_requeue(id, t, ua_coll, ua_refill);
        }
        if traced {
            let model = queue.get(id).map(|r| r.model.name()).unwrap_or("unknown");
            sink.span(SpanRecord {
                at_ms: t,
                request: id,
                model,
                event: RequestEvent::Migrated,
            });
        }
    }
    for r in &out.lost {
        losts.push(LostRecord {
            id: r.id,
            model: r.model,
            at_ms,
            steps_lost: r.steps_done,
        });
        if let Some(ab) = attrib.as_mut() {
            ab.lost(r.id, at_ms);
        }
        if traced {
            sink.span(SpanRecord {
                at_ms,
                request: r.id,
                model: r.model.name(),
                event: RequestEvent::Lost,
            });
        }
    }
    let dead_ids = unit.dead_member_ids();
    let homed: Vec<(u64, usize)> = queue
        .iter()
        .filter_map(|r| {
            r.parked_on
                .filter(|p| unit.members.iter().any(|m| m.id == *p))
                .map(|p| (r.id, p))
        })
        .collect();
    for (id, home) in homed {
        if dead_ids.contains(&home) {
            let mut r = queue
                .remove_by_id(id, ctx)
                .expect("listed from the queue above");
            match r.checkpointed_steps {
                Some(step) => {
                    r.steps_done = step;
                    r.parked_on = None;
                    r.ready_ms = r.ready_ms.max(at_ms);
                    requeued += 1;
                    if let Some(ab) = attrib.as_mut() {
                        ab.fault_requeue(r.id, at_ms, ua_coll, ua_refill);
                    }
                    queue.push(r, ctx);
                }
                None => {
                    lost += 1;
                    depth.stamp(at_ms, -1);
                    losts.push(LostRecord {
                        id: r.id,
                        model: r.model,
                        at_ms,
                        steps_lost: r.steps_done,
                    });
                    if let Some(ab) = attrib.as_mut() {
                        ab.lost(r.id, at_ms);
                    }
                    if traced {
                        sink.span(SpanRecord {
                            at_ms,
                            request: r.id,
                            model: r.model.name(),
                            event: RequestEvent::Lost,
                        });
                    }
                }
            }
        } else {
            unit.discard_member_latent(home, id, ctx);
            queue.clear_parked_hint(id);
        }
    }
    (requeued, lost)
}

/// Self-metering of one simulator run: wall-clock cost beside the
/// simulated time it bought. Deliberately kept *outside* [`ServeReport`]
/// — wall readings are non-deterministic and must never enter the state
/// determinism tests compare. Retrieve with
/// [`ServeSimulator::last_run_profile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunProfile {
    /// Total wall-clock of the run (ms).
    pub wall_ms: f64,
    /// Wall-clock spent scoring placements (offline pick + epoch
    /// re-plans, ms).
    pub planner_wall_ms: f64,
    /// Planner scoring passes (1 offline + executed re-scores).
    pub planner_calls: u64,
    /// Denoising iterations the cluster executed.
    pub iterations: u64,
    /// Calendar events the core executed (unit boundaries, idle wakes,
    /// stats samples, epoch boundaries) — the quantity wall time actually
    /// scales with under the event-driven loop.
    pub events_executed: u64,
    /// Largest number of entries the event calendar held at once.
    pub peak_calendar_events: usize,
    /// Simulated makespan the run produced (ms).
    pub makespan_ms: f64,
    /// Requests completed.
    pub completed: usize,
}

impl RunProfile {
    /// Simulated milliseconds bought per wall-clock millisecond — the
    /// headline `BENCH_serve.json` trajectory metric (0.0 when the run
    /// was too fast to measure).
    pub fn sim_ms_per_wall_ms(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.makespan_ms / self.wall_ms
        } else {
            0.0
        }
    }

    /// Wall-clock spent stepping the cluster (everything outside planner
    /// scoring, ms).
    pub fn cluster_wall_ms(&self) -> f64 {
        (self.wall_ms - self.planner_wall_ms).max(0.0)
    }
}

/// Lazily draws [`Arrival`]s off the seeded [`ArrivalStream`], releasing
/// them in generation order as unit clocks pass their timestamps. The
/// epoch handler's lookahead (counting realized load up to an epoch end)
/// buffers at most the arrivals of one epoch that no unit clock has
/// reached yet, so a million-request trace never materializes: memory
/// stays bounded by the lookahead window, not the horizon.
struct ArrivalReleaser {
    stream: ArrivalStream,
    /// Arrivals pulled off the stream by epoch-count lookahead but not
    /// yet released to the cluster (all at future timestamps).
    buffered: VecDeque<Arrival>,
    exhausted: bool,
    released: usize,
}

impl ArrivalReleaser {
    fn new(trace: &TraceConfig) -> Self {
        Self {
            stream: ArrivalStream::new(trace),
            buffered: VecDeque::new(),
            exhausted: false,
            released: 0,
        }
    }

    /// The next unreleased arrival's timestamp (`None` once the trace is
    /// exhausted) — the idle-wake target.
    fn peek_at_ms(&mut self) -> Option<f64> {
        if self.buffered.is_empty() && !self.exhausted {
            match self.stream.next() {
                Some(a) => self.buffered.push_back(a),
                None => self.exhausted = true,
            }
        }
        self.buffered.front().map(|a| a.at_ms)
    }

    /// Releases the next arrival if it has happened by `now_ms`, assigning
    /// the generation-order request id the materialized trace used to.
    fn release_through(&mut self, now_ms: f64) -> Option<(u64, Arrival)> {
        match self.peek_at_ms() {
            Some(at_ms) if at_ms <= now_ms => {
                let id = self.released as u64;
                self.released += 1;
                Some((id, self.buffered.pop_front().expect("peeked")))
            }
            _ => None,
        }
    }

    /// How many arrivals the trace generates strictly before `t_ms`,
    /// buffering whatever lookahead that takes. Monotone `t_ms` across
    /// calls (epoch ends only grow); released arrivals all lie before any
    /// epoch end being counted, because an epoch event fires only once
    /// every unit clock has passed it.
    fn count_generated_before(&mut self, t_ms: f64) -> usize {
        while !self.exhausted && self.buffered.back().is_none_or(|a| a.at_ms < t_ms) {
            match self.stream.next() {
                Some(a) => self.buffered.push_back(a),
                None => self.exhausted = true,
            }
        }
        // `buffered` is time-sorted (trace order), so the count before
        // `t_ms` is a partition point — no linear re-scan of the lookahead
        // buffer per epoch.
        self.released + self.buffered.partition_point(|a| a.at_ms < t_ms)
    }

    /// Arrivals released so far (= generated, once the run drains).
    fn released(&self) -> usize {
        self.released
    }
}

/// Request-level serving simulator over a cluster of EXION instances.
#[derive(Debug, Clone)]
pub struct ServeSimulator {
    config: ServeConfig,
    cost: CostModel,
    model_configs: HashMap<ModelKind, ModelConfig>,
    partition_plans: HashMap<(ModelKind, PartitionStrategy), exion_sim::partition::PartitionPlan>,
    last_profile: Option<RunProfile>,
}

impl ServeSimulator {
    /// A simulator for `config`. Iteration costs are priced lazily and
    /// cached across runs of the same simulator.
    pub fn new(config: ServeConfig) -> Self {
        let cost = CostModel::new(config.hw, config.ablation);
        Self {
            config,
            cost,
            model_configs: HashMap::new(),
            partition_plans: HashMap::new(),
            last_profile: None,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Self-metering of the most recent [`Self::run`] /
    /// [`Self::run_traced`]: wall-clock beside the simulated time it
    /// bought (`None` before the first run). Kept out of the
    /// [`ServeReport`] because wall readings are non-deterministic.
    pub fn last_run_profile(&self) -> Option<&RunProfile> {
        self.last_profile.as_ref()
    }

    /// Installs a measured sparsity profile for `kind` (e.g. from
    /// `exion-bench::profiles` functional runs): all subsequent pricing —
    /// iteration costs, SLO scaling, capacity estimates — uses it instead
    /// of the analytic closed form.
    pub fn set_sparsity_profile(
        &mut self,
        kind: ModelKind,
        profile: exion_sim::workload::SparsityProfile,
    ) {
        self.cost.set_profile(kind, profile);
    }

    fn model_config(&mut self, kind: ModelKind) -> ModelConfig {
        *self
            .model_configs
            .entry(kind)
            .or_insert_with(|| ModelConfig::for_kind(kind))
    }

    /// The gang partition plan of `kind` under `placement`'s strategy,
    /// built once per (model, strategy) per simulator (pipeline plans walk
    /// per-stage op lists; auto-placement can visit several strategies
    /// over one run). A cached plan is only reused when its interconnect
    /// matches the requesting placement's — a planner-chosen placement may
    /// carry a different fabric than the static config that first priced
    /// the strategy, and collectives must be priced on the right one.
    fn partition_plan(
        &mut self,
        kind: ModelKind,
        placement: &Placement,
    ) -> exion_sim::partition::PartitionPlan {
        let key = (kind, placement.strategy);
        if let Some(plan) = self.partition_plans.get(&key) {
            if plan.interconnect() == placement.interconnect {
                return plan.clone();
            }
        }
        let config = self.model_config(kind);
        let plan = exion_sim::partition::PartitionPlan::new(
            &config,
            placement.strategy,
            placement.interconnect,
            self.config.hw.operand_bytes(),
        );
        self.partition_plans.insert(key, plan.clone());
        plan
    }

    /// Builds the scheduling context for the traced `kinds` under
    /// `placement` (the static config's, or whatever the planner currently
    /// has deployed), reusing the simulator's memoized partition plans.
    fn sched_context(&mut self, kinds: &[ModelKind], placement: &Placement) -> SchedContext {
        let configs: HashMap<ModelKind, ModelConfig> =
            kinds.iter().map(|&k| (k, self.model_config(k))).collect();
        let sharded = placement.gangs > 0 && placement.strategy != PartitionStrategy::Replicated;
        let plans: HashMap<ModelKind, exion_sim::partition::PartitionPlan> = if sharded {
            kinds
                .iter()
                .map(|&k| (k, self.partition_plan(k, placement)))
                .collect()
        } else {
            HashMap::new()
        };
        SchedContext::build(
            self.config.policy.clone(),
            self.config.max_batch,
            kinds,
            &mut self.cost,
            placement.interconnect,
            |k| {
                *configs
                    .get(&k)
                    .expect("every traced model kind is precomputed")
            },
            |k| plans.get(&k).cloned(),
        )
    }

    /// Analytic saturation-throughput estimate (requests/s) for `mix`:
    /// each unit's full-batch steady-state throughput (whole-model service
    /// time for replicas, gang-combined shard time plus collectives for
    /// sharded gangs), weighted by the mix's traffic shares and summed
    /// across units. Arrival-rate sweeps anchor on this to place the
    /// saturation knee without hand-tuning per hardware instance.
    pub fn capacity_estimate_rps(&mut self, mix: &crate::trace::WorkloadMix) -> f64 {
        let batch = self.config.max_batch as u64;
        let placement = self.config.placement;
        let total_w: f64 = mix.entries.iter().map(|&(_, w, _)| w).sum();
        // Weighted harmonic mean per unit type: a fraction w_k of requests
        // each occupying 1/r_k of a unit-second gives 1 / Σ (w_k / r_k)
        // requests/s per unit.
        let mut replica_spr = 0.0;
        let mut gang_spr = 0.0;
        for &(kind, w, _) in &mix.entries {
            let config = self.model_config(kind);
            let share = w / total_w;
            let gen_ms = self.cost.generation_latency_ms(&config, batch);
            replica_spr += share / (batch as f64 / (gen_ms / 1000.0));
            if placement.gangs > 0 {
                let plan = self.partition_plan(kind, &placement);
                let gang_ms = self.cost.gang_generation_latency_ms(&config, &plan, batch);
                gang_spr += share / (batch as f64 / (gang_ms / 1000.0));
            }
        }
        let mut capacity = placement.replicas as f64 / replica_spr;
        if placement.gangs > 0 {
            capacity += placement.gangs as f64 / gang_spr;
        }
        capacity
    }

    /// Runs the trace to completion and reports serving metrics.
    ///
    /// Every arrival the admission controller accepts is eventually
    /// admitted and completed; refused (shed) arrivals never enter the
    /// queue, so `completed + shed_requests == arrivals` once the cluster
    /// drains. Under the default [`AdmitAll`] controller saturation shows
    /// up as unbounded queueing delay rather than lost requests. SLOs
    /// scale the *replica* full-batch service time regardless of
    /// placement, so goodput is comparable across replicated and sharded
    /// deployments of the same trace.
    pub fn run(&mut self, trace: &TraceConfig) -> ServeReport {
        self.run_traced(trace, &mut NullSink)
    }

    /// [`Self::run`] with telemetry emitted to `sink`: request-lifecycle
    /// spans, per-instance timeline slices, and planner markers (see
    /// [`exion_telemetry`]). The sink is a pure observer — it only ever
    /// receives copies of simulation facts — so the produced report (and
    /// every completion in it) is byte-identical to an untraced run; the
    /// telemetry tests pin that property. With the default [`NullSink`]
    /// every emission site reduces to one branch.
    pub fn run_traced(&mut self, trace: &TraceConfig, sink: &mut dyn Sink) -> ServeReport {
        let run_start = std::time::Instant::now();
        let mut planner_watch = StopWatch::new();
        let mut executed_iterations: u64 = 0;
        let traced = sink.enabled();
        let max_batch = self.config.max_batch as u64;
        // Arrivals stream off the seeded generator lazily — a fleet-scale
        // trace is never materialized. Requests are minted at release time
        // from per-kind constants precomputed here: the SLO scales the
        // model's steady-state service time (a full generation at the
        // deployment's batch size), so it is attainable under batching and
        // degrades only through queueing.
        let mut releaser = ArrivalReleaser::new(trace);
        let kinds = trace.mix.kinds();
        let request_proto: HashMap<ModelKind, (f64, usize)> = kinds
            .iter()
            .map(|&kind| {
                let config = self.model_config(kind);
                let slo_ms = trace.mix.slo_multiplier(kind)
                    * self.cost.generation_latency_ms(&config, max_batch);
                (kind, (slo_ms, config.iterations))
            })
            .collect();

        // Auto-placement: the offline pass picks the initial placement for
        // the traced mix at the configured forecast; statically placed
        // clusters keep the config's placement.
        let auto = self.config.auto_placement.clone();
        let (mut placement, mut planner_state) = match &auto {
            Some(ap) => {
                let outcome = ap.planner.plan_timed(
                    &self.config.hw,
                    &trace.mix,
                    ap.forecast_rps,
                    &mut self.cost,
                    &mut planner_watch,
                );
                let chosen = outcome.chosen.placement;
                let state = PlannerState {
                    planner: ap.planner.clone(),
                    forecast_rps: ap.forecast_rps,
                    epoch_start_ms: 0.0,
                    report: PlannerReport {
                        initial_placement: chosen.summary(),
                        final_placement: chosen.summary(),
                        initial_forecast_rps: ap.forecast_rps,
                        replans: Vec::new(),
                        epochs: Vec::new(),
                    },
                };
                (chosen, Some(state))
            }
            None => (self.config.placement, None),
        };

        let mut next_id = 0usize;
        let mut units = build_units(
            &placement,
            &self.config.hw,
            self.config.eviction,
            &mut next_id,
        );
        // Per-unit lifetime accounting: utilization must be taken over the
        // window a unit actually existed (birth to retirement/makespan),
        // not the whole run — a migrated cluster would otherwise look
        // half-idle. `units_birth` parallels `units` (births diverge when
        // a crashed slot's replacement is born at its recovery instant);
        // retired units carry their `(birth, death)` window with them.
        let mut units_birth: Vec<f64> = vec![0.0; units.len()];
        let mut retired: Vec<(Gang, f64, f64)> = Vec::new();
        let admission = self.config.admission.clone();
        let mut queue = ReadyQueue::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut sheds: Vec<ShedRecord> = Vec::new();
        let mut degraded_requests = 0usize;
        let mut depth = DepthTracker::default();
        // Boundary-path scratch: one admit outcome and one completions
        // buffer reused across every event, so a steady-state iteration
        // boundary allocates nothing.
        let mut boundary_outcome = AdmitOutcome::default();
        let mut boundary_done: Vec<Completion> = Vec::new();
        if traced {
            declare_unit_tracks(&units, sink);
        }
        // Latency attribution: every released request accumulates a
        // conserved phase breakdown. The builder and its per-unit clocks
        // are pure observers — they read boundary instants and cumulative
        // stall counters, and nothing in the loop reads them back — so the
        // report is byte-identical with attribution on or off.
        let mut attrib: Option<AttributionBuilder> =
            self.config.attribution.then(AttributionBuilder::new);
        let mut unit_attrib: Vec<UnitAttrib> = if attrib.is_some() {
            units.iter().map(UnitAttrib::new).collect()
        } else {
            Vec::new()
        };

        // Streaming latency/queue-delay histograms: completions are folded
        // in as they happen, so report percentiles never sort the full
        // sample (O(1) memory at any trace scale).
        let mut latency_hist = LogHistogram::default();
        let mut queue_hist = LogHistogram::default();

        // Counter/gauge time-series: snapshots fire at planner epoch
        // boundaries and (when configured) every `stats_interval_ms` of
        // simulated time. Running totals the recorder diffs at snapshot
        // time; the hot loop only bumps plain integers.
        let mut series_rec = SeriesRecorder::new();
        let mut enqueued_total: u64 = 0;
        let mut parks_total: u64 = 0;
        let mut resumes_total: u64 = 0;
        let mut drains_total: u64 = 0;
        let stats_interval = self.config.stats_interval_ms;

        // Fault injection: the plan's events land on the calendar as
        // `EventKind::Fault` entries whose `unit` field indexes the
        // runtime fault table; the recoveries and link restores a firing
        // fault pairs itself with are appended to the table as they are
        // scheduled. An empty plan schedules nothing — the loop below is
        // then byte-identical to a fault-free run.
        let fault_plan = self.config.fault_plan.clone();
        let chaos = !fault_plan.is_empty();
        let checkpoint = self.config.checkpoint;
        let mut fault_table: Vec<RuntimeFault> = Vec::new();
        let mut losts: Vec<LostRecord> = Vec::new();
        let mut fault_records: Vec<FaultRecord> = Vec::new();
        let mut faults_injected = 0usize;
        let mut faults_noop = 0usize;
        let mut checkpointed_recoveries = 0usize;
        let mut checkpoint_spills = 0usize;
        let mut checkpoint_bytes = 0u64;
        let mut replans_on_fault = 0usize;
        let mut recoveries = 0usize;
        let mut recover_ms_sum = 0.0f64;
        // Multiplicative stack of active interconnect degradations (1.0 =
        // healthy fabric); every scheduling-context build prices the
        // currently degraded link bandwidth.
        let mut link_slowdown = 1.0f64;
        // Windows of degraded service — crash-to-recovery and
        // degrade-to-restore intervals — for the attainment-under-failure
        // split in the fault report.
        let mut degraded_windows: Vec<(f64, f64)> = Vec::new();
        // Set when the whole fleet dies un-recoverably: queued work
        // strands at this instant and converts to lost after the loop.
        let mut stranded_at: Option<f64> = None;

        // Per-model scheduling constants (periods, weight/latent footprints,
        // refill costs, partition plans) are computed once per traced kind —
        // and rebuilt whenever a re-plan changes the partition strategy.
        let mut ctx = self.sched_context(&kinds, &degraded_placement(&placement, link_slowdown));

        // The event calendar replaces the per-boundary min-clock scan:
        // each unit keeps exactly one scheduled event (its next iteration
        // boundary, or its idle wake), the stats cadence and planner epochs
        // are recurring events of their own, and the loop pops in
        // deterministic (time, kind rank, unit index) order until no unit
        // has an event left — idle units cost nothing, and wall time scales
        // with events executed rather than horizon × units.
        let mut calendar = EventCalendar::new(units.len());
        for (u, unit) in units.iter().enumerate() {
            calendar.schedule_unit(u, unit.now_ms(), EventKind::UnitBoundary);
        }
        if let Some(interval) = stats_interval {
            calendar.schedule_stats(interval);
        }
        if let Some(state) = &planner_state {
            let first_epoch = state.planner.config.epoch_ms;
            if first_epoch <= trace.horizon_ms {
                calendar.schedule_epoch(first_epoch);
            }
        }
        for (idx, spec) in fault_plan.events.iter().enumerate() {
            fault_table.push(RuntimeFault::Inject(*spec));
            calendar.schedule_fault(spec.at_ms, idx);
        }
        let mut events_executed: u64 = 0;
        // In-flight batch rows across the fleet, tracked incrementally
        // from admit/complete/drain deltas so snapshots never re-scan
        // every unit.
        let mut inflight_rows: i64 = 0;
        // Cumulative arrivals generated before the current epoch start —
        // the subtrahend of the streaming realized-load count.
        let mut epoch_cum_start = 0usize;

        while calendar.scheduled_units() > 0 {
            let Some(ev) = calendar.pop() else { break };
            events_executed += 1;
            // Fold queue-depth stamps that nothing can precede anymore:
            // future stamps land at or past this event's time (calendar
            // pops are time-ordered) or at a still-unreleased arrival.
            depth.advance(ev.at_ms.min(releaser.peek_at_ms().unwrap_or(f64::INFINITY)));
            match ev.kind {
                // Fixed-cadence registry snapshot (when configured). Pure
                // observation — nothing feeds back into the run — so it
                // ranks before same-instant epoch and unit events.
                EventKind::StatsSample => {
                    debug_assert_eq!(
                        inflight_rows,
                        units
                            .iter()
                            .map(|u| u.leader().running.len() as i64)
                            .sum::<i64>(),
                        "incremental in-flight gauge drifted from the fleet"
                    );
                    series_rec.snapshot(
                        ev.at_ms,
                        [
                            releaser.released() as u64,
                            enqueued_total,
                            sheds.len() as u64,
                            degraded_requests as u64,
                            completions.len() as u64,
                            parks_total,
                            resumes_total,
                            drains_total,
                            losts.len() as u64,
                        ],
                        [queue.len() as f64, inflight_rows as f64, ev.at_ms],
                    );
                    let interval = stats_interval.expect("sampling only runs when configured");
                    calendar.schedule_stats(ev.at_ms + interval);
                }

                // Planner epoch end (auto-placement only). The heap cannot
                // surface this before every scheduled unit event lies at or
                // past it, so it fires exactly when the cluster-wide
                // minimum clock passes the boundary — record realized-vs-
                // forecast load; past the hysteresis threshold, adopt the
                // realized load, re-plan, and — when the chosen placement
                // differs — execute a priced migration.
                EventKind::EpochBoundary => {
                    let state = planner_state
                        .as_mut()
                        .expect("epoch events are scheduled only under auto-placement");
                    let epoch_ms = state.planner.config.epoch_ms;
                    let epoch_end = ev.at_ms;
                    let now = calendar.min_unit_time_ms();
                    let cum = releaser.count_generated_before(epoch_end);
                    let count = cum - epoch_cum_start;
                    epoch_cum_start = cum;
                    let realized = count as f64 / (epoch_ms / 1000.0);
                    let error =
                        (realized - state.forecast_rps).abs() / state.forecast_rps.max(1e-9);
                    state.report.epochs.push(EpochStat {
                        start_ms: state.epoch_start_ms,
                        forecast_rps: state.forecast_rps,
                        realized_rps: realized,
                        error,
                    });
                    // Every epoch boundary snapshots the registry into the
                    // report time-series.
                    debug_assert_eq!(
                        inflight_rows,
                        units
                            .iter()
                            .map(|u| u.leader().running.len() as i64)
                            .sum::<i64>(),
                        "incremental in-flight gauge drifted from the fleet"
                    );
                    series_rec.snapshot(
                        epoch_end,
                        [
                            releaser.released() as u64,
                            enqueued_total,
                            sheds.len() as u64,
                            degraded_requests as u64,
                            completions.len() as u64,
                            parks_total,
                            resumes_total,
                            drains_total,
                            losts.len() as u64,
                        ],
                        [queue.len() as f64, inflight_rows as f64, epoch_end],
                    );
                    state.epoch_start_ms = epoch_end;
                    // The chain self-schedules while it stays inside the
                    // arrival horizon.
                    let next_end = epoch_end + epoch_ms;
                    if next_end <= trace.horizon_ms {
                        calendar.schedule_epoch(next_end);
                    }
                    // Hysteresis: small errors keep the placement and the
                    // forecast; an empty epoch carries no load signal.
                    if error <= state.planner.config.hysteresis || realized <= 0.0 {
                        continue;
                    }
                    state.forecast_rps = realized;
                    let outcome = state.planner.plan_timed(
                        &self.config.hw,
                        &trace.mix,
                        realized,
                        &mut self.cost,
                        &mut planner_watch,
                    );
                    let new_placement = outcome.chosen.placement;
                    if new_placement == placement {
                        continue;
                    }
                    // Executed re-plan: drain, price, and swap the fleet
                    // (shared with the fault arm's out-of-cadence re-plan).
                    let replan = self.execute_migration(
                        new_placement,
                        now,
                        &kinds,
                        link_slowdown,
                        &mut placement,
                        &mut units,
                        &mut units_birth,
                        &mut retired,
                        &mut next_id,
                        &mut queue,
                        &mut ctx,
                        &mut calendar,
                        &mut depth,
                        &mut drains_total,
                        &mut inflight_rows,
                        &mut losts,
                        &mut unit_attrib,
                        &mut attrib,
                        sink,
                        traced,
                    );
                    let state = planner_state
                        .as_mut()
                        .expect("epoch events are scheduled only under auto-placement");
                    state.report.replans.push(replan);
                    state.report.final_placement = placement.summary();
                }

                // An injected fault or one of its paired follow-ups
                // (recovery, link restore): the event's `unit` field
                // indexes the runtime fault table.
                EventKind::Fault => {
                    match fault_table[ev.unit] {
                        RuntimeFault::Inject(spec) => match spec.kind {
                            FaultKind::UnitCrash { unit, repair_ms }
                            | FaultKind::MemberLoss {
                                unit, repair_ms, ..
                            } => {
                                if units.is_empty() {
                                    faults_noop += 1;
                                    continue;
                                }
                                let u = unit % units.len();
                                if !calendar.is_unit_scheduled(u) {
                                    // The slot retired (trace exhausted,
                                    // nothing queued): there is nothing
                                    // left to kill.
                                    faults_noop += 1;
                                    continue;
                                }
                                match spec.kind {
                                    FaultKind::MemberLoss { member, .. } => {
                                        units[u].mark_member_dead(member)
                                    }
                                    _ => units[u].mark_all_dead(),
                                }
                                let unit_stalls = unit_attrib
                                    .get(u)
                                    .map(|a| (a.coll_ms, a.refill_ms))
                                    .unwrap_or((0.0, 0.0));
                                let (requeued, lost) = teardown_dead_unit(
                                    &mut units[u],
                                    &mut queue,
                                    &ctx,
                                    ev.at_ms,
                                    &mut depth,
                                    &mut drains_total,
                                    &mut inflight_rows,
                                    &mut losts,
                                    unit_stalls,
                                    &mut attrib,
                                    sink,
                                    traced,
                                );
                                checkpointed_recoveries += requeued;
                                faults_injected += 1;
                                fault_records.push(FaultRecord {
                                    at_ms: ev.at_ms,
                                    kind: spec.kind.label().to_string(),
                                    unit: u,
                                    lost,
                                    requeued,
                                });
                                if traced {
                                    sink.instant(InstantMarker {
                                        at_ms: ev.at_ms,
                                        name: "fault",
                                        detail: format!(
                                            "{} unit {u} ({lost} lost, {requeued} requeued, \
                                             repair {repair_ms} ms)",
                                            spec.kind.label()
                                        ),
                                    });
                                }
                                // A gang missing a member stalls whole: the
                                // unit retires at the fault (its in-flight
                                // iteration never completes) and its
                                // capacity rejoins after the repair delay.
                                let death = units[u].now_ms().max(ev.at_ms);
                                let recover_at = (ev.at_ms + repair_ms).max(death);
                                degraded_windows.push((ev.at_ms, recover_at));
                                if let Some(ab) = attrib.as_mut() {
                                    ab.push_degraded_window(ev.at_ms, recover_at);
                                }
                                let auto_budget =
                                    planner_state.as_ref().map(|s| s.planner.config.budget);
                                if let Some(budget) = auto_budget {
                                    // Auto placement: the dead unit's
                                    // capacity leaves the planner's budget
                                    // and an out-of-cadence re-plan
                                    // re-places the surviving fleet around
                                    // the hole.
                                    let instances = units[u].members.len();
                                    let reduced = budget.saturating_sub(instances);
                                    if reduced == 0 {
                                        // The dead unit *was* the fleet:
                                        // nothing to re-place onto. Retire
                                        // it; the queue strands and
                                        // converts to lost after the loop.
                                        let old = units.remove(u);
                                        retired.push((old, units_birth.remove(u), death));
                                        if !unit_attrib.is_empty() {
                                            unit_attrib.remove(u);
                                        }
                                        calendar.unschedule_unit(u);
                                        stranded_at = Some(death);
                                        continue;
                                    }
                                    let outcome = {
                                        let state = planner_state
                                            .as_mut()
                                            .expect("the static branch handled None");
                                        state.planner.config.budget = reduced;
                                        state.planner.plan_timed(
                                            &self.config.hw,
                                            &trace.mix,
                                            state.forecast_rps,
                                            &mut self.cost,
                                            &mut planner_watch,
                                        )
                                    };
                                    // No same-placement short-circuit here:
                                    // the fleet must be rebuilt regardless,
                                    // to clear the dead unit out of it.
                                    let replan = self.execute_migration(
                                        outcome.chosen.placement,
                                        ev.at_ms,
                                        &kinds,
                                        link_slowdown,
                                        &mut placement,
                                        &mut units,
                                        &mut units_birth,
                                        &mut retired,
                                        &mut next_id,
                                        &mut queue,
                                        &mut ctx,
                                        &mut calendar,
                                        &mut depth,
                                        &mut drains_total,
                                        &mut inflight_rows,
                                        &mut losts,
                                        &mut unit_attrib,
                                        &mut attrib,
                                        sink,
                                        traced,
                                    );
                                    if let Some(state) = planner_state.as_mut() {
                                        state.report.replans.push(replan);
                                        state.report.final_placement = placement.summary();
                                    }
                                    replans_on_fault += 1;
                                    fault_table.push(RuntimeFault::Recover {
                                        crashed_at: ev.at_ms,
                                        instances,
                                    });
                                    calendar.schedule_fault(recover_at, fault_table.len() - 1);
                                } else {
                                    // Static placement: the slot sleeps
                                    // through its repair and a fresh unit
                                    // of the same shape swaps in at the
                                    // wake — the replacement's cold GSC
                                    // books the recovery as refill bytes
                                    // naturally.
                                    let fresh = if units[u].is_sharded() {
                                        let strategy = units[u].strategy();
                                        let g = Gang::sharded(
                                            next_id,
                                            &self.config.hw,
                                            self.config.eviction,
                                            strategy,
                                        );
                                        next_id += strategy.degree();
                                        g
                                    } else {
                                        let g = Gang::replica(
                                            next_id,
                                            &self.config.hw,
                                            self.config.eviction,
                                        );
                                        next_id += 1;
                                        g
                                    };
                                    let old = std::mem::replace(&mut units[u], fresh);
                                    retired.push((old, units_birth[u], death));
                                    units_birth[u] = recover_at;
                                    units[u].jump_to(recover_at);
                                    if let Some(a) = unit_attrib.get_mut(u) {
                                        *a = UnitAttrib::new(&units[u]);
                                    }
                                    calendar.reschedule_unit(u, recover_at, EventKind::IdleWake);
                                    if traced {
                                        declare_unit_tracks(std::slice::from_ref(&units[u]), sink);
                                    }
                                    fault_table.push(RuntimeFault::Recover {
                                        crashed_at: ev.at_ms,
                                        instances: 0,
                                    });
                                    calendar.schedule_fault(recover_at, fault_table.len() - 1);
                                }
                            }
                            FaultKind::LinkDegrade {
                                slowdown,
                                duration_ms,
                            } => {
                                link_slowdown *= slowdown;
                                degraded_windows.push((ev.at_ms, ev.at_ms + duration_ms));
                                if let Some(ab) = attrib.as_mut() {
                                    ab.push_degraded_window(ev.at_ms, ev.at_ms + duration_ms);
                                }
                                ctx = self.sched_context(
                                    &kinds,
                                    &degraded_placement(&placement, link_slowdown),
                                );
                                faults_injected += 1;
                                fault_records.push(FaultRecord {
                                    at_ms: ev.at_ms,
                                    kind: spec.kind.label().to_string(),
                                    unit: usize::MAX,
                                    lost: 0,
                                    requeued: 0,
                                });
                                if traced {
                                    sink.instant(InstantMarker {
                                        at_ms: ev.at_ms,
                                        name: "fault",
                                        detail: format!(
                                            "link degrade x{slowdown} for {duration_ms} ms"
                                        ),
                                    });
                                }
                                fault_table.push(RuntimeFault::LinkRestore { slowdown });
                                calendar
                                    .schedule_fault(ev.at_ms + duration_ms, fault_table.len() - 1);
                            }
                        },
                        RuntimeFault::Recover {
                            crashed_at,
                            instances,
                        } => {
                            recoveries += 1;
                            recover_ms_sum += ev.at_ms - crashed_at;
                            if traced {
                                sink.instant(InstantMarker {
                                    at_ms: ev.at_ms,
                                    name: "recover",
                                    detail: format!(
                                        "capacity restored after {:.1} ms",
                                        ev.at_ms - crashed_at
                                    ),
                                });
                            }
                            if instances > 0 {
                                // The repaired capacity rejoins the
                                // planner's budget; a forced re-plan grows
                                // the fleet back, booked as cold-GSC
                                // refill on the new units.
                                let outcome = match planner_state.as_mut() {
                                    Some(state) => {
                                        state.planner.config.budget += instances;
                                        Some(state.planner.plan_timed(
                                            &self.config.hw,
                                            &trace.mix,
                                            state.forecast_rps,
                                            &mut self.cost,
                                            &mut planner_watch,
                                        ))
                                    }
                                    None => None,
                                };
                                let new_placement = outcome
                                    .map(|o| o.chosen.placement)
                                    .filter(|p| *p != placement);
                                if let Some(new_placement) = new_placement {
                                    let replan = self.execute_migration(
                                        new_placement,
                                        ev.at_ms,
                                        &kinds,
                                        link_slowdown,
                                        &mut placement,
                                        &mut units,
                                        &mut units_birth,
                                        &mut retired,
                                        &mut next_id,
                                        &mut queue,
                                        &mut ctx,
                                        &mut calendar,
                                        &mut depth,
                                        &mut drains_total,
                                        &mut inflight_rows,
                                        &mut losts,
                                        &mut unit_attrib,
                                        &mut attrib,
                                        sink,
                                        traced,
                                    );
                                    let state = planner_state.as_mut().expect("still auto-placed");
                                    state.report.replans.push(replan);
                                    state.report.final_placement = placement.summary();
                                    replans_on_fault += 1;
                                }
                            }
                        }
                        RuntimeFault::LinkRestore { slowdown } => {
                            link_slowdown /= slowdown;
                            ctx = self.sched_context(
                                &kinds,
                                &degraded_placement(&placement, link_slowdown),
                            );
                            if traced {
                                sink.instant(InstantMarker {
                                    at_ms: ev.at_ms,
                                    name: "recover",
                                    detail: format!("link restored (/{slowdown})"),
                                });
                            }
                        }
                    }
                }

                // A unit's iteration boundary or idle wake: both were
                // scheduled at the unit's (jumped) clock, so the clock and
                // the event agree on "now".
                EventKind::UnitBoundary | EventKind::IdleWake => {
                    let i = ev.unit;
                    let now = units[i].now_ms();
                    debug_assert_eq!(
                        now.to_bits(),
                        ev.at_ms.to_bits(),
                        "unit clock drifted from its scheduled event"
                    );
                    // Attribution's batch-join "door floor": a request
                    // admitted at this event could not have joined before
                    // the unit's previous boundary — queue wait up to that
                    // door, batch-join wait from it.
                    let door_floor = match unit_attrib.get_mut(i) {
                        Some(a) => std::mem::replace(&mut a.prev_boundary_ms, now),
                        None => now,
                    };

                    // Release arrivals up to this unit's clock, consulting the
                    // admission controller once per arrival. The decision fires at
                    // the *release* instant (the iteration boundary whose clock
                    // passed the arrival) — up to one iteration after arrival — so
                    // the view carries that clock and feasibility sees the slack
                    // that actually remains, not the full SLO.
                    while let Some((id, a)) = releaser.release_through(now) {
                        let &(slo_ms, steps) = request_proto
                            .get(&a.model)
                            .expect("every traced model kind is precomputed");
                        let mut r = Request::new(id, a.model, a.at_ms, slo_ms, steps);
                        let decided_at = now.max(r.arrival_ms);
                        let decision = {
                            let view =
                                AdmissionView::new(decided_at, queue.as_slice(), &units, &ctx)
                                    .with_index(queue.backlog());
                            admission.decide(&r, &view)
                        };
                        if traced {
                            sink.span(SpanRecord {
                                at_ms: r.arrival_ms,
                                request: r.id,
                                model: r.model.name(),
                                event: RequestEvent::Arrival,
                            });
                        }
                        match decision {
                            AdmissionDecision::Accept => {
                                if traced {
                                    sink.span(SpanRecord {
                                        at_ms: decided_at,
                                        request: r.id,
                                        model: r.model.name(),
                                        event: RequestEvent::Admitted,
                                    });
                                }
                            }
                            AdmissionDecision::Degrade { steps } => {
                                r.degrade_to(steps);
                                if r.degraded {
                                    degraded_requests += 1;
                                }
                                if traced {
                                    let event = if r.degraded {
                                        RequestEvent::Degraded {
                                            steps: r.total_steps as u32,
                                        }
                                    } else {
                                        RequestEvent::Admitted
                                    };
                                    sink.span(SpanRecord {
                                        at_ms: decided_at,
                                        request: r.id,
                                        model: r.model.name(),
                                        event,
                                    });
                                }
                            }
                            AdmissionDecision::Shed => {
                                // Priced refusal: recorded (and counted against SLO
                                // attainment), but the request never queues.
                                sheds.push(ShedRecord {
                                    id: r.id,
                                    model: r.model,
                                    at_ms: decided_at,
                                });
                                if let Some(ab) = attrib.as_mut() {
                                    ab.shed(r.id, r.model, r.arrival_ms, r.slo_ms, decided_at);
                                }
                                if traced {
                                    sink.span(SpanRecord {
                                        at_ms: decided_at,
                                        request: r.id,
                                        model: r.model.name(),
                                        event: RequestEvent::Shed,
                                    });
                                }
                                continue;
                            }
                        }
                        if let Some(ab) = attrib.as_mut() {
                            ab.admit(r.id, r.model, r.arrival_ms, r.slo_ms, decided_at);
                        }
                        depth.stamp(r.arrival_ms, 1);
                        enqueued_total += 1;
                        if traced {
                            sink.span(SpanRecord {
                                at_ms: decided_at,
                                request: r.id,
                                model: r.model.name(),
                                event: RequestEvent::Enqueued,
                            });
                        }
                        queue.push(r, &ctx);
                    }

                    if units[i].is_idle() && queue.is_empty() {
                        match releaser.peek_at_ms() {
                            Some(wake) => {
                                // Sleep until the next arrival: the unit holds no
                                // calendar entry before its wake.
                                if traced && wake > now {
                                    emit_idle_slices(&units[i], wake, sink);
                                }
                                units[i].jump_to(wake);
                                calendar.schedule_unit(i, wake, EventKind::IdleWake);
                            }
                            None => {
                                // Trace exhausted and nothing queued: the unit
                                // retires with no further event, and the run ends
                                // when the last one does.
                                units[i].jump_to(f64::INFINITY);
                            }
                        }
                        continue;
                    }

                    // Iteration boundary: admit (possibly preempting), then execute
                    // one iteration.
                    units[i].admit_into(&mut queue, &ctx, &mut boundary_outcome);
                    let outcome = &boundary_outcome;
                    parks_total += outcome.parked.len() as u64;
                    resumes_total += outcome.resumed.len() as u64;
                    inflight_rows += outcome.inflight_delta();
                    if traced {
                        let inst = units[i].leader().id as u32;
                        for &(id, at_ms) in &outcome.parked {
                            // The park pushed the request back into the queue; read
                            // its model (and the member actually holding the latent)
                            // from there.
                            let (model, holder) = queue
                                .get(id)
                                .map(|r| {
                                    (
                                        r.model.name(),
                                        r.parked_on.map(|p| p as u32).unwrap_or(inst),
                                    )
                                })
                                .unwrap_or(("unknown", inst));
                            sink.span(SpanRecord {
                                at_ms,
                                request: id,
                                model,
                                event: RequestEvent::Parked { instance: holder },
                            });
                        }
                        let model = units[i]
                            .leader()
                            .active_model
                            .map(|m| m.name())
                            .unwrap_or("unknown");
                        for &(id, at_ms) in &outcome.admitted {
                            let resumed = outcome.resumed.iter().any(|&(rid, _)| rid == id);
                            let event = if resumed {
                                RequestEvent::Resumed { instance: inst }
                            } else {
                                RequestEvent::BatchJoin { instance: inst }
                            };
                            sink.span(SpanRecord {
                                at_ms,
                                request: id,
                                model,
                                event,
                            });
                        }
                    }
                    for &(_, at_ms) in &outcome.parked {
                        depth.stamp(at_ms, 1);
                    }
                    for &(_, at_ms) in &outcome.admitted {
                        depth.stamp(at_ms, -1);
                    }
                    if let Some(ab) = attrib.as_mut() {
                        let ua = &unit_attrib[i];
                        for &(id, at_ms) in &outcome.parked {
                            ab.park(id, at_ms, ua.coll_ms, ua.refill_ms);
                        }
                        for &(id, at_ms) in &outcome.admitted {
                            ab.join(id, at_ms, door_floor, ua.coll_ms, ua.refill_ms);
                        }
                    }
                    // A request parked on one unit may resume on another; release
                    // any latent copy the parking unit still holds (billing the
                    // migration write-back there) so it neither depresses that
                    // unit's weight residency nor is later mispriced as a dirty
                    // spill. Only resumes can hold a foreign latent — a fresh
                    // admit never parked anywhere — so the cross-unit sweep skips
                    // the fleet-dominant fresh case.
                    if !outcome.resumed.is_empty() {
                        for (j, other) in units.iter_mut().enumerate() {
                            if j == i {
                                continue;
                            }
                            let before = other.now_ms();
                            for &(id, _) in &outcome.resumed {
                                other.discard_latent(id, &ctx);
                            }
                            // Discarding a latent bills the write-back transfer to
                            // the unit that held it, advancing its clock; its
                            // calendar entry must follow or it fires in the past.
                            let after = other.now_ms();
                            if after > before && calendar.is_unit_scheduled(j) {
                                calendar.reschedule_unit(j, after, EventKind::UnitBoundary);
                            }
                        }
                    }
                    // Parks can evict other parked latents; their queued requests'
                    // resume-affinity hints are now stale (the latent is in DRAM,
                    // no instance is preferable) and must not keep deferring them.
                    for id in units[i].take_evicted_latents() {
                        queue.clear_parked_hint(id);
                    }
                    if units[i].is_idle() {
                        // A sparsity gate cannot block an idle unit, so nothing
                        // in the queue is admissible yet: every queued request is a
                        // parked one whose ready time lies ahead of this clock.
                        // Sleep until the earliest wake-up (a parked request
                        // becoming ready, or the next arrival); the calendar holds
                        // no other entry for this unit, so no busy-wake fallback
                        // is needed.
                        // No fresh request can be queued here (fresh
                        // requests are always admissible, and the admit
                        // above left the unit idle), so the deferred
                        // minimum is the queue minimum.
                        debug_assert!(queue.fresh_buckets().all(|(_, b)| b.is_empty()));
                        let next_ready = queue.min_deferred_ready_ms();
                        let next_arr = releaser.peek_at_ms().unwrap_or(f64::INFINITY);
                        // The queue is non-empty here (the empty case slept
                        // above), so the wake target is finite.
                        let wake = next_ready.min(next_arr);
                        if traced && wake > now {
                            emit_idle_slices(&units[i], wake, sink);
                        }
                        units[i].jump_to(wake);
                        calendar.schedule_unit(i, wake, EventKind::IdleWake);
                        continue;
                    }
                    let iter_start = units[i].now_ms();
                    let (coll_ms_before, _) = if traced {
                        units[i].collective_totals()
                    } else {
                        (0.0, 0)
                    };
                    let refill_before = if traced {
                        units[i].member_refill_bytes()
                    } else {
                        Vec::new()
                    };
                    let batch = units[i].leader().running.len() as u32;
                    boundary_done.clear();
                    units[i].execute_iteration_into(&mut self.cost, &ctx, &mut boundary_done);
                    executed_iterations += 1;
                    if traced {
                        let iter_end = units[i].now_ms();
                        let dur_ms = iter_end - iter_start;
                        let (coll_ms_after, _) = units[i].collective_totals();
                        let coll_ms = (coll_ms_after - coll_ms_before).min(dur_ms);
                        let refill_after = units[i].member_refill_bytes();
                        let label = units[i]
                            .leader()
                            .active_model
                            .map(|m| m.name())
                            .unwrap_or("iteration");
                        for (slot, m) in units[i].members.iter().enumerate() {
                            if dur_ms > 0.0 {
                                sink.slice(TimelineSlice {
                                    instance: m.id as u32,
                                    kind: SliceKind::Busy,
                                    start_ms: iter_start,
                                    dur_ms,
                                    label,
                                    batch,
                                });
                            }
                            // Weight-refill traffic this iteration, priced at DRAM
                            // bandwidth and drawn nested at the head of the slice.
                            let refill_bytes = refill_after[slot].1 - refill_before[slot].1;
                            if refill_bytes > 0 {
                                let refill_ms = ctx.transfer_ms(refill_bytes).min(dur_ms);
                                if refill_ms > 0.0 {
                                    sink.slice(TimelineSlice {
                                        instance: m.id as u32,
                                        kind: SliceKind::Refill,
                                        start_ms: iter_start,
                                        dur_ms: refill_ms,
                                        label: "weight refill",
                                        batch,
                                    });
                                }
                            }
                            // Collective time is charged at the tail of the
                            // iteration (activations sync before the boundary).
                            if coll_ms > 0.0 {
                                sink.slice(TimelineSlice {
                                    instance: m.id as u32,
                                    kind: SliceKind::Collective,
                                    start_ms: iter_end - coll_ms,
                                    dur_ms: coll_ms,
                                    label: "collective",
                                    batch,
                                });
                            }
                        }
                        let inst = units[i].leader().id as u32;
                        for r in &units[i].leader().running {
                            sink.span(SpanRecord {
                                at_ms: iter_end,
                                request: r.id,
                                model: r.model.name(),
                                event: RequestEvent::Iteration {
                                    instance: inst,
                                    step: r.steps_done as u32,
                                },
                            });
                        }
                        for c in &boundary_done {
                            sink.span(SpanRecord {
                                at_ms: c.finished_ms,
                                request: c.id,
                                model: c.model.name(),
                                event: RequestEvent::Completed {
                                    instance: c.instance as u32,
                                },
                            });
                        }
                        // Counter tracks beside the slices: cluster queue
                        // depth, this unit's in-flight rows, and its GSC
                        // occupancy at the iteration end — the "why did
                        // that busy slice stall" context in the export.
                        sink.counter(CounterSample {
                            instance: CounterSample::CLUSTER,
                            at_ms: iter_end,
                            name: "queue depth",
                            value: queue.len() as f64,
                        });
                        sink.counter(CounterSample {
                            instance: inst,
                            at_ms: iter_end,
                            name: "inflight rows",
                            value: units[i].leader().running.len() as f64,
                        });
                        sink.counter(CounterSample {
                            instance: inst,
                            at_ms: iter_end,
                            name: "gsc bytes",
                            value: units[i].resident_bytes() as f64,
                        });
                    }
                    if let Some(ab) = attrib.as_mut() {
                        // Fold the executed iteration into the unit's
                        // stall clocks, then close the finishers' in-batch
                        // segments against the updated cumulatives.
                        unit_attrib[i].after_iteration(&units[i], &ctx, iter_start);
                        let ua = &unit_attrib[i];
                        for c in &boundary_done {
                            ab.complete(
                                c.id,
                                c.finished_ms,
                                ua.coll_ms,
                                ua.refill_ms,
                                !c.within_slo(),
                            );
                        }
                    }
                    for c in &boundary_done {
                        latency_hist.record(c.latency_ms());
                        queue_hist.record(c.queue_ms());
                    }
                    inflight_rows -= boundary_done.len() as i64;
                    completions.append(&mut boundary_done);
                    // Weight refills can evict parked latents too.
                    for id in units[i].take_evicted_latents() {
                        queue.clear_parked_hint(id);
                    }
                    // Opt-in periodic checkpoint: each running request at a
                    // multiple of the policy period parks a DRAM copy of
                    // its latent — a priced spill transfer on this unit's
                    // clock — so a later fault requeues it from the
                    // checkpoint instead of losing it.
                    if let Some(policy) = checkpoint {
                        let (spills, bytes) = units[i].checkpoint_running(&ctx, policy.every_steps);
                        checkpoint_spills += spills;
                        checkpoint_bytes += bytes;
                    }
                    // The executed iteration advanced this unit's clock; its next
                    // boundary is its next event.
                    calendar.schedule_unit(i, units[i].now_ms(), EventKind::UnitBoundary);
                }
            }
        }

        // A fleet that died un-recoverably strands whatever was queued:
        // those requests are lost, which keeps conservation over released
        // arrivals (`served + shed + lost == arrivals`) intact.
        if let Some(at_ms) = stranded_at {
            let stranded: Vec<u64> = queue.iter().map(|r| r.id).collect();
            for id in stranded {
                if let Some(r) = queue.remove_by_id(id, &ctx) {
                    depth.stamp(at_ms, -1);
                    losts.push(LostRecord {
                        id: r.id,
                        model: r.model,
                        at_ms,
                        steps_lost: r.steps_done,
                    });
                    if let Some(ab) = attrib.as_mut() {
                        ab.lost(r.id, at_ms);
                    }
                    if traced {
                        sink.span(SpanRecord {
                            at_ms,
                            request: r.id,
                            model: r.model.name(),
                            event: RequestEvent::Lost,
                        });
                    }
                }
            }
        }

        completions.sort_by_key(|c| c.id);
        // Retired pre-migration units carry real work: their accounting
        // joins the final units' in the report, each over its own live
        // window (birth to death; the final units live to the makespan).
        retired.extend(
            units
                .into_iter()
                .zip(units_birth)
                .map(|(u, birth)| (u, birth, f64::INFINITY)),
        );
        let makespan_ms = completions
            .iter()
            .map(|c| c.finished_ms)
            .fold(0.0, f64::max);
        self.last_profile = Some(RunProfile {
            wall_ms: run_start.elapsed().as_secs_f64() * 1e3,
            planner_wall_ms: planner_watch.wall_ms(),
            planner_calls: planner_watch.laps(),
            iterations: executed_iterations,
            events_executed,
            peak_calendar_events: calendar.peak_len(),
            makespan_ms,
            completed: completions.len(),
        });
        let depth_stats = depth.finish(makespan_ms);
        // Fault report: assembled only when something could have differed
        // from a fault-free run (a non-empty plan, or an active checkpoint
        // policy whose spills should be visible).
        let fault = if chaos || checkpoint.is_some() {
            // Attainment under failure: SLO attainment over the requests
            // that arrived inside a degraded window (crash-to-recovery,
            // degrade-to-restore), plus every lost request — a direct
            // fault casualty regardless of when it arrived.
            let in_window = |t: f64| degraded_windows.iter().any(|&(a, b)| t >= a && t < b);
            let mut win_answered = 0usize;
            let mut win_within = 0usize;
            for c in &completions {
                if in_window(c.arrival_ms) {
                    win_answered += 1;
                    if c.within_slo() {
                        win_within += 1;
                    }
                }
            }
            win_answered += sheds.iter().filter(|s| in_window(s.at_ms)).count();
            win_answered += losts.len();
            Some(FaultReport {
                faults_injected,
                faults_noop,
                lost_requests: losts.len(),
                checkpointed_recoveries,
                checkpoint_spills,
                checkpoint_bytes,
                replans_triggered: replans_on_fault,
                recoveries,
                mean_time_to_recover_ms: if recoveries > 0 {
                    recover_ms_sum / recoveries as f64
                } else {
                    0.0
                },
                attainment_under_failure: if win_answered > 0 {
                    win_within as f64 / win_answered as f64
                } else {
                    0.0
                },
                records: fault_records,
            })
        } else {
            None
        };
        self.report(
            trace,
            releaser.released(),
            completions,
            sheds,
            losts,
            degraded_requests,
            depth_stats,
            &retired,
            &placement,
            planner_state.map(|s| s.report),
            fault,
            attrib.map(AttributionBuilder::finish),
            &latency_hist,
            &queue_hist,
            series_rec.into_series(),
        )
    }

    /// Executes a priced fleet migration to `new_placement`: drains every
    /// unit (in-flight requests park to DRAM and requeue with their steps
    /// intact; requests on a dead member are lost unless checkpointed),
    /// clears stale resume-affinity hints, retires the old fleet, builds
    /// and schedules the replacement at the hand-off instant, and
    /// rebuilds the scheduling context. Returns the priced
    /// [`ReplanEvent`]. Shared by the planner's epoch path and the fault
    /// arm's out-of-cadence re-plans.
    #[allow(clippy::too_many_arguments)]
    fn execute_migration(
        &mut self,
        new_placement: Placement,
        t_floor: f64,
        kinds: &[ModelKind],
        link_slowdown: f64,
        placement: &mut Placement,
        units: &mut Vec<Gang>,
        units_birth: &mut Vec<f64>,
        retired: &mut Vec<(Gang, f64, f64)>,
        next_id: &mut usize,
        queue: &mut ReadyQueue,
        ctx: &mut SchedContext,
        calendar: &mut EventCalendar,
        depth: &mut DepthTracker,
        drains_total: &mut u64,
        inflight_rows: &mut i64,
        losts: &mut Vec<LostRecord>,
        unit_attrib: &mut Vec<UnitAttrib>,
        attrib: &mut Option<AttributionBuilder>,
        sink: &mut dyn Sink,
        traced: bool,
    ) -> ReplanEvent {
        // Drain: every in-flight request is parked to DRAM (a priced
        // latent write-back) and re-enters the queue with its DDIM step
        // count intact. The new units take over once the slowest
        // *draining* unit finishes — idle units' clocks are excluded from
        // that hand-off point, because an idle clock may be an artificial
        // jump (to the next arrival, or to infinity on a locally-drained
        // tail) rather than real work, and maxing it in would stall — or
        // with an infinite jump, strand — the drained requests. Dead
        // units' clocks are excluded too: their in-flight iteration never
        // completed.
        let mut drained = 0usize;
        let mut t_start = t_floor;
        for (u, unit) in units.iter_mut().enumerate() {
            let was_busy = !unit.is_idle() && !unit.any_dead();
            let drain_from = unit.now_ms();
            let out = unit.drain_for_migration(queue, ctx, t_floor);
            drained += out.requeued.len();
            *drains_total += out.requeued.len() as u64;
            *inflight_rows -= (out.requeued.len() + out.lost.len()) as i64;
            if was_busy {
                t_start = t_start.max(unit.now_ms());
            }
            for &(_, at_ms) in &out.requeued {
                depth.stamp(at_ms, 1);
            }
            if let Some(ab) = attrib.as_mut() {
                let (ua_coll, ua_refill) = unit_attrib
                    .get(u)
                    .map(|a| (a.coll_ms, a.refill_ms))
                    .unwrap_or((0.0, 0.0));
                for &(id, at_ms) in &out.requeued {
                    ab.drain_to_migration(id, at_ms, ua_coll, ua_refill);
                }
                for r in &out.lost {
                    ab.lost(r.id, t_floor);
                }
            }
            if traced {
                let drain_ms = unit.now_ms() - drain_from;
                if drain_ms > 0.0 {
                    for m in &unit.members {
                        sink.slice(TimelineSlice {
                            instance: m.id as u32,
                            kind: SliceKind::Drain,
                            start_ms: drain_from,
                            dur_ms: drain_ms,
                            label: "drain",
                            batch: out.requeued.len() as u32,
                        });
                    }
                }
                for &(id, at_ms) in &out.requeued {
                    let model = queue.get(id).map(|r| r.model.name()).unwrap_or("unknown");
                    sink.span(SpanRecord {
                        at_ms,
                        request: id,
                        model,
                        event: RequestEvent::Migrated,
                    });
                }
            }
            // In-flight requests on a dead member with no DRAM checkpoint
            // die with it — the third terminal outcome.
            for r in &out.lost {
                losts.push(LostRecord {
                    id: r.id,
                    model: r.model,
                    at_ms: t_floor,
                    steps_lost: r.steps_done,
                });
                if traced {
                    sink.span(SpanRecord {
                        at_ms: t_floor,
                        request: r.id,
                        model: r.model.name(),
                        event: RequestEvent::Lost,
                    });
                }
            }
        }
        // Queued requests parked on a retiring member: the latent is
        // written back to DRAM (priced on the holder) and the stale
        // affinity hint cleared — no instance of the new placement holds
        // it.
        let mut parked_homes: Vec<(u64, usize)> = Vec::new();
        queue.take_parked_homes(&mut parked_homes);
        for &(id, home) in &parked_homes {
            for unit in units.iter_mut() {
                // A dead member's latent cannot be written back — skipping
                // it keeps a fault teardown from billing a transfer off
                // hardware that no longer exists (the request itself was
                // already resolved by the teardown).
                if unit.any_dead() && unit.dead_member_ids().contains(&home) {
                    continue;
                }
                unit.discard_member_latent(home, id, ctx);
            }
        }
        // What the teardown walks away from: GSC-resident state the new
        // placement must re-stream as refill bytes.
        let migration_bytes: u64 = units.iter().map(Gang::resident_bytes).sum();
        debug_assert!(t_start.is_finite(), "migration hand-off must be finite");
        let replan = ReplanEvent {
            at_ms: t_start,
            from: placement.summary(),
            to: new_placement.summary(),
            migration_bytes,
            drained_requests: drained,
        };
        if traced {
            sink.instant(InstantMarker {
                at_ms: t_start,
                name: "replan",
                detail: format!(
                    "{} -> {} ({} drained, {} bytes)",
                    placement.summary(),
                    new_placement.summary(),
                    drained,
                    migration_bytes
                ),
            });
        }
        for (unit, birth) in units.drain(..).zip(units_birth.drain(..)) {
            // A dead unit died at the fault instant, not the hand-off.
            let death = if unit.any_dead() {
                unit.now_ms().max(t_floor).min(t_start)
            } else {
                t_start
            };
            retired.push((unit, birth, death));
        }
        *placement = new_placement;
        *units = build_units(
            &new_placement,
            &self.config.hw,
            self.config.eviction,
            next_id,
        );
        *units_birth = vec![t_start; units.len()];
        for unit in units.iter_mut() {
            unit.jump_to(t_start);
        }
        if attrib.is_some() {
            *unit_attrib = units.iter().map(UnitAttrib::new).collect();
        }
        if traced {
            declare_unit_tracks(units, sink);
        }
        // Invalidate the retired fleet's calendar entries and schedule the
        // replacements' first boundaries at the hand-off instant.
        calendar.reset_units(units.len());
        for u in 0..units.len() {
            calendar.schedule_unit(u, t_start, EventKind::UnitBoundary);
        }
        // The partition strategy may have changed: rebuild the scheduling
        // constants before the new fleet's first boundary fires.
        *ctx = self.sched_context(kinds, &degraded_placement(&new_placement, link_slowdown));
        replan
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        trace: &TraceConfig,
        arrivals: usize,
        completions: Vec<Completion>,
        sheds: Vec<ShedRecord>,
        losts: Vec<LostRecord>,
        degraded_requests: usize,
        depth_stats: (f64, usize),
        units: &[(Gang, f64, f64)],
        placement: &Placement,
        planner: Option<PlannerReport>,
        fault: Option<FaultReport>,
        attribution: Option<AttributionReport>,
        latency_hist: &LogHistogram,
        queue_hist: &LogHistogram,
        series: Vec<MetricsSnapshot>,
    ) -> ServeReport {
        let makespan_ms = completions
            .iter()
            .map(|c| c.finished_ms)
            .fold(0.0, f64::max);
        let makespan_s = (makespan_ms / 1000.0).max(1e-9);
        let within_slo = completions.iter().filter(|c| c.within_slo()).count();
        // Percentiles come from the streaming histograms the run loop fed —
        // no full-sample sort; error is bounded by one log-bucket width.
        debug_assert_eq!(latency_hist.count(), completions.len() as u64);
        let latency = LatencyStats::from_histogram(latency_hist);
        let queue_delay = LatencyStats::from_histogram(queue_hist);
        let (mean_queue_depth, peak_queue_depth) = depth_stats;
        // Utilization is busy time over each unit's *live* window (birth to
        // retirement, or the makespan for the final units) — a migrated
        // cluster's retired and replacement units each existed for only
        // part of the run.
        let live_ms = |birth: f64, death: f64| (death.min(makespan_ms) - birth).max(0.0);
        let per_gang: Vec<_> = units
            .iter()
            .map(|(u, birth, death)| u.stats(live_ms(*birth, *death)))
            .collect();
        let per_instance: Vec<_> = units
            .iter()
            .flat_map(|(u, birth, death)| u.member_stats(live_ms(*birth, *death)))
            .collect();
        let energy_mj: f64 = per_instance.iter().map(|s| s.energy_mj).sum();
        // Iterations, batch occupancy, and executed rows are gang-level
        // quantities (a gang iteration occupies every member once), so the
        // leader-recorded per-instance counters sum correctly.
        let total_iters: u64 = per_instance.iter().map(|s| s.iterations).sum();
        let sparse_iters: f64 = per_instance
            .iter()
            .map(|s| s.sparse_iteration_frac * s.iterations as f64)
            .sum();
        let batch_rows: f64 = per_instance
            .iter()
            .map(|s| s.mean_batch * s.iterations as f64)
            .sum();
        // Priced refusals and fault losses: a shed or lost request is a
        // definite SLO miss — both join the attainment denominator even
        // though neither consumed further machine time.
        let answered = completions.len() + sheds.len() + losts.len();
        ServeReport {
            hw_name: self.config.hw.name.to_string(),
            policy: self.config.policy.name().to_string(),
            admission: self.config.admission.name().to_string(),
            pattern: trace.pattern.name().to_string(),
            instances: placement.total_instances(),
            arrivals,
            completed: completions.len(),
            shed_requests: sheds.len(),
            lost_requests: losts.len(),
            degraded_requests,
            offered_rps: arrivals as f64 / (trace.horizon_ms / 1000.0).max(1e-9),
            throughput_rps: completions.len() as f64 / makespan_s,
            goodput_rps: within_slo as f64 / makespan_s,
            slo_attainment: if answered == 0 {
                0.0
            } else {
                within_slo as f64 / answered as f64
            },
            horizon_ms: trace.horizon_ms,
            makespan_ms,
            latency,
            queue_delay,
            energy_mj,
            joules_per_request: if completions.is_empty() {
                0.0
            } else {
                energy_mj / 1000.0 / completions.len() as f64
            },
            mean_utilization: if per_instance.is_empty() {
                0.0
            } else {
                per_instance.iter().map(|s| s.utilization).sum::<f64>() / per_instance.len() as f64
            },
            mean_batch_occupancy: if total_iters > 0 {
                batch_rows / total_iters as f64
            } else {
                0.0
            },
            sparse_iteration_frac: if total_iters > 0 {
                sparse_iters / total_iters as f64
            } else {
                0.0
            },
            mean_queue_depth,
            peak_queue_depth,
            preemptions: per_instance.iter().map(|s| s.preemptions).sum(),
            latent_spills: per_instance.iter().map(|s| s.latent_spills).sum(),
            weight_refill_bytes: per_instance.iter().map(|s| s.weight_refill_bytes).sum(),
            residency_hit_rate: {
                let hit: u64 = per_instance.iter().map(|s| s.weight_hit_bytes).sum();
                let refill: u64 = per_instance.iter().map(|s| s.weight_refill_bytes).sum();
                if hit + refill > 0 {
                    hit as f64 / (hit + refill) as f64
                } else {
                    1.0
                }
            },
            gangs: placement.gangs,
            collective_ms: per_gang.iter().map(|g| g.collective_ms).sum(),
            collective_bytes: per_gang.iter().map(|g| g.collective_bytes).sum(),
            planner,
            fault,
            attribution,
            series,
            per_gang,
            per_instance,
            completions,
            sheds,
            losts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerConfig;

    #[test]
    fn try_build_accepts_valid_placements() {
        let hw = HwConfig::exion4();
        for placement in [
            Placement::replicated(3),
            Placement::sharded(2, PartitionStrategy::Tensor { ways: 2 }),
            Placement::mixed(1, 1, PartitionStrategy::Pipeline { stages: 4 }),
        ] {
            let config = ServeConfig::builder(hw)
                .placement(placement)
                .try_build()
                .expect("valid placement");
            assert_eq!(config.placement, placement);
        }
        let planned = ServeConfig::builder(hw)
            .auto_placement(PlacementPlanner::new(PlannerConfig::new(2)), 3.0)
            .max_batch(4)
            .try_build()
            .expect("valid planner");
        // The planner prices candidates at the deployment's batch bound.
        let ap = planned.auto_placement.expect("installed");
        assert_eq!(ap.planner.config.max_batch, 4);
    }

    #[test]
    fn try_build_rejects_bad_placements_descriptively() {
        let hw = HwConfig::exion4();
        // Zero units (only constructible by hand — the Placement
        // constructors all refuse it).
        let empty = Placement {
            replicas: 0,
            gangs: 0,
            strategy: PartitionStrategy::Replicated,
            interconnect: exion_sim::partition::Interconnect::default(),
        };
        assert!(matches!(
            ServeConfig::builder(hw).placement(empty).try_build(),
            Err(ConfigError::EmptyPlacement)
        ));
        // Gangs whose world size is 1: the gang-vs-partition world-size
        // match that used to surface as a degenerate gang deep in the run.
        let degenerate = ServeConfig::builder(hw)
            .placement(Placement::sharded(1, PartitionStrategy::Replicated))
            .try_build();
        assert!(matches!(
            degenerate,
            Err(ConfigError::DegenerateGangStrategy { .. })
        ));
        // A 200-way gang exceeds instance indexing.
        let oversized = ServeConfig::builder(hw)
            .placement(Placement::sharded(
                1,
                PartitionStrategy::Tensor { ways: 200 },
            ))
            .try_build();
        assert!(matches!(oversized, Err(ConfigError::OversizedGang { .. })));
        // A link that cannot move bytes.
        let dead_link = exion_sim::partition::Interconnect {
            link_gbps: 0.0,
            ..Default::default()
        };
        let invalid = ServeConfig::builder(hw)
            .placement(
                Placement::sharded(1, PartitionStrategy::Tensor { ways: 2 })
                    .with_interconnect(dead_link),
            )
            .try_build();
        assert!(matches!(
            invalid,
            Err(ConfigError::InvalidInterconnect { .. })
        ));
        // Planner with an unusable forecast.
        let bad_forecast = ServeConfig::builder(hw)
            .auto_placement(PlacementPlanner::new(PlannerConfig::new(2)), 0.0)
            .try_build();
        assert!(matches!(
            bad_forecast,
            Err(ConfigError::InvalidPlanner { .. })
        ));
        // Every error renders a descriptive message.
        for err in [
            ConfigError::EmptyPlacement,
            ConfigError::DegenerateGangStrategy {
                strategy: "replicated".to_string(),
            },
            ConfigError::OversizedGang {
                degree: 200,
                max: MAX_GANG_DEGREE,
            },
            ConfigError::InvalidInterconnect { link_gbps: 0.0 },
            ConfigError::InvalidPlanner {
                reason: "x".to_string(),
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "invalid serving configuration")]
    fn build_panics_early_with_the_descriptive_error() {
        let _ = ServeConfig::builder(HwConfig::exion4())
            .placement(Placement::sharded(
                1,
                PartitionStrategy::Tensor { ways: 200 },
            ))
            .build();
    }
}
