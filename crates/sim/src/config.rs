//! Hardware configurations (paper Table II and Fig. 11).

use exion_dram::DramTiming;
use serde::{Deserialize, Serialize};

/// Geometry and clocking of one diffusion-sparsity-aware core (DSC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DscGeometry {
    /// DPU array rows (= DPU lanes = IMEM/OMEM banks).
    pub array_rows: usize,
    /// DPU array columns (= WMEM banks).
    pub array_cols: usize,
    /// Multipliers per DPU (elements of the dot product consumed per cycle).
    pub lane_length: usize,
    /// CFSE ALU lanes.
    pub cfse_lanes: usize,
}

impl DscGeometry {
    /// The paper's EXION configuration: 16×16 DPUs, lane length 16, and a
    /// 16-lane configurable SIMD engine.
    pub fn exion() -> Self {
        Self {
            array_rows: 16,
            array_cols: 16,
            lane_length: 16,
            cfse_lanes: 16,
        }
    }

    /// The toy model of Figs. 8–9/11: an 8-row × 3-column array.
    pub fn toy() -> Self {
        Self {
            array_rows: 8,
            array_cols: 3,
            lane_length: 4,
            cfse_lanes: 4,
        }
    }

    /// MACs the SDUE completes per cycle.
    pub fn sdue_macs_per_cycle(&self) -> u64 {
        (self.array_rows * self.array_cols * self.lane_length) as u64
    }

    /// Log-domain MACs the EPRE completes per cycle (same array shape,
    /// LD_DPUs).
    pub fn epre_macs_per_cycle(&self) -> u64 {
        self.sdue_macs_per_cycle()
    }
}

/// On-chip memory sizes of one DSC (Fig. 10/11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySizes {
    /// IMEM per bank, bytes (double-buffered).
    pub imem_bank_bytes: usize,
    /// WMEM per bank, bytes (triple-buffered).
    pub wmem_bank_bytes: usize,
    /// OMEM per bank, bytes.
    pub omem_bank_bytes: usize,
    /// ConMerge vector memory, bytes.
    pub cvmem_bytes: usize,
    /// Global scratchpad, bytes.
    pub gsc_bytes: usize,
    /// Instruction memory, bytes.
    pub instmem_bytes: usize,
}

impl MemorySizes {
    /// The paper's sizes: IMEM/OMEM 1.5 kB × 16 banks, WMEM 12 kB × 16 banks,
    /// CVMEM 50 kB, GSC 512 kB, INSTMEM 3 kB.
    pub fn exion() -> Self {
        Self {
            imem_bank_bytes: 1536,
            wmem_bank_bytes: 12288,
            omem_bank_bytes: 1536,
            cvmem_bytes: 50 * 1024,
            gsc_bytes: 512 * 1024,
            instmem_bytes: 3 * 1024,
        }
    }
}

/// A full accelerator instance: DSC count, clock, memories and DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Human-readable instance name.
    pub name: &'static str,
    /// Number of DSCs.
    pub dsc_count: usize,
    /// Core clock (MHz); the paper synthesizes at 800 MHz / 0.8 V.
    pub clock_mhz: f64,
    /// Per-DSC geometry.
    pub geometry: DscGeometry,
    /// Per-DSC memory sizes.
    pub memory: MemorySizes,
    /// Aggregate DRAM bandwidth (GB/s).
    pub dram_gbps: f64,
    /// Whether DRAM is LPDDR5 (edge) or GDDR6 (server).
    pub lpddr: bool,
    /// MMUL operand width in bits (INT12).
    pub operand_bits: u32,
    /// Shared global scratchpad capacity (MiB). Weights that fit stay
    /// resident across iterations ("data such as weights and intermediate
    /// results are continuously transferred among the DSC, GSC, and external
    /// DRAM"); the paper gives 64 MB for EXION24.
    pub gsc_mib: f64,
}

impl HwConfig {
    /// EXION4: the edge instance (Table II — 39.2 TOPS, 51 GB/s LPDDR5,
    /// ~3.18 W), matched against the Jetson Orin Nano.
    pub fn exion4() -> Self {
        Self {
            name: "EXION4",
            // The paper sizes EXION24's GSC at 64 MB; the edge instance's is
            // unspecified. The reported edge TOPS/W numbers are only
            // reachable compute-bound, i.e. with benchmark weights resident,
            // so the same 64 MiB is assumed (documented in EXPERIMENTS.md).
            gsc_mib: 64.0,
            dsc_count: 4,
            clock_mhz: 800.0,
            geometry: DscGeometry::exion(),
            memory: MemorySizes::exion(),
            dram_gbps: 51.0,
            lpddr: true,
            operand_bits: 12,
        }
    }

    /// EXION24: the server instance (Table II — 235.2 TOPS, 819 GB/s GDDR6,
    /// ~20.4 W), matched against the RTX 6000 Ada.
    pub fn exion24() -> Self {
        Self {
            name: "EXION24",
            gsc_mib: 64.0,
            dsc_count: 24,
            clock_mhz: 800.0,
            geometry: DscGeometry::exion(),
            memory: MemorySizes::exion(),
            dram_gbps: 819.0,
            lpddr: false,
            operand_bits: 12,
        }
    }

    /// EXION42: the Cambricon-D comparison instance (Fig. 19(b) — 42 DSCs,
    /// 1935 GB/s), matched against the A100.
    pub fn exion42() -> Self {
        Self {
            name: "EXION42",
            gsc_mib: 64.0,
            dsc_count: 42,
            clock_mhz: 800.0,
            geometry: DscGeometry::exion(),
            memory: MemorySizes::exion(),
            dram_gbps: 1935.0,
            lpddr: false,
            operand_bits: 12,
        }
    }

    /// A single-DSC instance (Table III's power/area unit).
    pub fn single_dsc() -> Self {
        Self {
            name: "EXION1",
            gsc_mib: 0.5,
            dsc_count: 1,
            clock_mhz: 800.0,
            geometry: DscGeometry::exion(),
            memory: MemorySizes::exion(),
            dram_gbps: 12.8,
            lpddr: true,
            operand_bits: 12,
        }
    }

    /// The DRAM device timing for this instance.
    pub fn dram_timing(&self) -> DramTiming {
        if self.lpddr {
            DramTiming::lpddr5()
        } else {
            DramTiming::gddr6()
        }
    }

    /// Clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }

    /// Peak throughput in TOPS: SDUE MACs at 2 ops each plus EPRE log-MACs
    /// at 1 op each. For the paper's geometry this yields 9.8 TOPS per DSC
    /// (Table II's footnote: "throughput of a single DSC is 9.8 TOPS").
    pub fn peak_tops(&self) -> f64 {
        let per_dsc_ops_per_cycle =
            2 * self.geometry.sdue_macs_per_cycle() + self.geometry.epre_macs_per_cycle();
        per_dsc_ops_per_cycle as f64 * self.dsc_count as f64 * self.clock_mhz * 1e6 / 1e12
    }

    /// Operand width in bytes (INT12 packs to 1.5 bytes).
    pub fn operand_bytes(&self) -> f64 {
        self.operand_bits as f64 / 8.0
    }

    /// Global scratchpad capacity in bytes.
    pub fn gsc_bytes(&self) -> f64 {
        self.gsc_mib * 1024.0 * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dsc_peak_matches_paper() {
        let c = HwConfig::single_dsc();
        assert!((c.peak_tops() - 9.83).abs() < 0.05, "got {}", c.peak_tops());
    }

    #[test]
    fn exion4_matches_table_ii() {
        let c = HwConfig::exion4();
        // Table II: 39.2 TOPS, 51 GB/s.
        assert!((c.peak_tops() - 39.3).abs() < 0.2, "got {}", c.peak_tops());
        assert!((c.dram_gbps - 51.0).abs() < 1e-9);
        assert!(c.lpddr);
    }

    #[test]
    fn exion24_matches_table_ii() {
        let c = HwConfig::exion24();
        // Table II: 235.2 TOPS, 819 GB/s GDDR6.
        assert!((c.peak_tops() - 235.9).abs() < 1.0, "got {}", c.peak_tops());
        assert!(!c.lpddr);
    }

    #[test]
    fn geometry_mac_rates() {
        let g = DscGeometry::exion();
        assert_eq!(g.sdue_macs_per_cycle(), 4096);
        let toy = DscGeometry::toy();
        assert_eq!(toy.sdue_macs_per_cycle(), 8 * 3 * 4);
    }

    #[test]
    fn cycle_time_at_800mhz() {
        assert!((HwConfig::exion4().cycle_ns() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn memory_sizes_match_figure_11() {
        let m = MemorySizes::exion();
        assert_eq!(m.imem_bank_bytes * 16, 24 * 1024); // 24 kB IMEM
        assert_eq!(m.wmem_bank_bytes * 16, 192 * 1024); // 192 kB WMEM
        assert_eq!(m.omem_bank_bytes * 16, 24 * 1024); // 24 kB OMEM
    }
}
