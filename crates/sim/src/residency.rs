//! GSC residency: a capacity-aware cache model of the Global Shared Cache.
//!
//! The paper keeps "data such as weights and intermediate results …
//! continuously transferred among the DSC, GSC, and external DRAM". A
//! serving layer multiplexing tenants over one instance therefore needs a
//! *byte-accounted* view of what the GSC holds: which model's weight shards
//! are (partially) resident, and which preempted requests' denoising latents
//! are parked on chip. [`GscCache`] models exactly that — capacity-bounded
//! entries with pluggable eviction — and replaces the old all-or-nothing
//! warm/cold flag: an iteration is priced by the *fraction* of its weight
//! working set already resident, and eviction decides who pays the next
//! refill.

use std::collections::HashMap;

use exion_model::config::{ModelConfig, NetworkType};
use serde::{Deserialize, Serialize};

use crate::workload::{build_iteration, DscOp, IterationKindFlags, SparsityProfile};

/// Fraction of a `working_set`-byte object that fits in `capacity` bytes.
///
/// The single partial-residency formula shared by the GSC timeline model
/// ([`crate::dsc::DscSimulator`]), the banked scratch memories
/// ([`crate::sram::BankedMemory::capacity_fraction`]), and [`GscCache`]:
/// residency is byte-proportional, never all-or-nothing.
pub fn partial_residency(capacity_bytes: f64, working_set_bytes: f64) -> f64 {
    if working_set_bytes <= 0.0 {
        return 1.0;
    }
    (capacity_bytes / working_set_bytes).clamp(0.0, 1.0)
}

/// Identity of one cacheable object in the GSC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GscObject {
    /// The whole weight working set of one model (keyed by the serving
    /// layer's model identifier — [`exion_model::config::ModelKind`] as
    /// `u8` rank would lose type safety, so the kind itself is the key).
    Weights(exion_model::config::ModelKind),
    /// One partition shard of a model's weights: the residency unit of a
    /// tensor/pipeline-parallel gang member, whose footprint and refill
    /// cost come from [`crate::partition::PartitionPlan`] — each member
    /// instance caches *its* shard independently.
    WeightShard {
        /// The sharded model.
        model: exion_model::config::ModelKind,
        /// Shard index within the model's partition plan.
        shard: u8,
    },
    /// The parked denoising latent state of one preempted request.
    Latent(u64),
}

impl GscObject {
    /// Whether this entry is a parked request latent.
    pub fn is_latent(&self) -> bool {
        matches!(self, GscObject::Latent(_))
    }

    /// Whether this entry holds model weights (whole or one shard) of
    /// `kind`.
    pub fn is_weights_of(&self, kind: exion_model::config::ModelKind) -> bool {
        match *self {
            GscObject::Weights(k) => k == kind,
            GscObject::WeightShard { model, .. } => model == kind,
            GscObject::Latent(_) => false,
        }
    }
}

/// Which entry the cache sacrifices when capacity runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least-recently-used: evict the entry untouched for longest.
    Lru,
    /// Cost-aware: evict the entry that is *cheapest to refill* (smallest
    /// estimated re-fetch cost), keeping the expensive-to-refill tenant
    /// resident; ties fall back to LRU.
    CostAware,
}

impl EvictionPolicy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::CostAware => "cost-aware",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    /// Bytes of the object currently resident (≤ `full_bytes`).
    bytes: u64,
    /// The object's full footprint.
    full_bytes: u64,
    /// Estimated cost (ms) to re-establish the full entry from DRAM; the
    /// currency [`EvictionPolicy::CostAware`] ranks by.
    refill_cost_ms: f64,
    /// Logical touch tick (monotone per cache) for LRU ordering.
    last_touch: u64,
    /// Pinned entries (the active model's weights) are never evicted.
    pinned: bool,
}

/// Outcome of one [`GscCache::request`]: how much was already resident and
/// how much had to be (or could be) refilled.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencyOutcome {
    /// Bytes of the object resident *before* this request (the warm part).
    pub prior_bytes: u64,
    /// Bytes resident after refill (≤ the object's full footprint).
    pub resident_bytes: u64,
    /// Bytes streamed from DRAM by this request.
    pub refilled_bytes: u64,
    /// `(object, bytes released)` per eviction performed to make room.
    /// Weight-shard entries *shrink* (partial residency survives); latent
    /// entries are indivisible and leave whole — the serving layer prices
    /// those as DRAM spills.
    pub evicted: Vec<(GscObject, u64)>,
}

impl ResidencyOutcome {
    /// The warm fraction of `full_bytes` this request found resident.
    pub fn prior_fraction(&self, full_bytes: u64) -> f64 {
        if full_bytes == 0 {
            1.0
        } else {
            self.prior_bytes as f64 / full_bytes as f64
        }
    }
}

/// Capacity-aware model of the Global Shared Cache.
///
/// Invariant (property-tested in `tests/serving.rs`): the summed entry bytes
/// never exceed the configured capacity, across any sequence of requests,
/// pins, and removals.
#[derive(Debug, Clone, PartialEq)]
pub struct GscCache {
    capacity: u64,
    policy: EvictionPolicy,
    entries: HashMap<GscObject, Entry>,
    tick: u64,
    hit_bytes: u64,
    refill_bytes: u64,
    evictions: u64,
}

impl GscCache {
    /// An empty cache of `capacity_bytes` under `policy`.
    pub fn new(capacity_bytes: u64, policy: EvictionPolicy) -> Self {
        Self {
            capacity: capacity_bytes,
            policy,
            entries: HashMap::new(),
            tick: 0,
            hit_bytes: 0,
            refill_bytes: 0,
            evictions: 0,
        }
    }

    /// Configured capacity (bytes).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Summed resident bytes across entries.
    pub fn occupancy_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Unoccupied bytes.
    pub fn free_bytes(&self) -> u64 {
        self.capacity.saturating_sub(self.occupancy_bytes())
    }

    /// Capacity a new entry could claim by evicting every unpinned entry:
    /// the admission pre-check that lets callers spill straight to DRAM
    /// instead of uselessly evicting tenants for an object that cannot fit
    /// anyway.
    pub fn evictable_bytes(&self) -> u64 {
        let pinned: u64 = self
            .entries
            .values()
            .filter(|e| e.pinned)
            .map(|e| e.bytes)
            .sum();
        self.capacity.saturating_sub(pinned)
    }

    /// Capacity not already committed to pinned entries or parked latents:
    /// the headroom a *new* parked latent could claim by displacing only
    /// clean (re-streamable) weight shards. The sharded-latent-parking
    /// layer ranks gang members by this to pick the least-pressured host.
    pub fn park_headroom_bytes(&self) -> u64 {
        let committed: u64 = self
            .entries
            .iter()
            .filter(|(k, e)| e.pinned || k.is_latent())
            .map(|(_, e)| e.bytes)
            .sum();
        self.capacity.saturating_sub(committed)
    }

    /// Resident fraction of `obj` (0.0 when absent, 1.0 when fully held).
    pub fn resident_fraction(&self, obj: GscObject) -> f64 {
        self.entries
            .get(&obj)
            .map(|e| {
                if e.full_bytes == 0 {
                    1.0
                } else {
                    e.bytes as f64 / e.full_bytes as f64
                }
            })
            .unwrap_or(0.0)
    }

    /// Resident bytes of `obj` (0 when absent).
    pub fn resident_bytes(&self, obj: GscObject) -> u64 {
        self.entries.get(&obj).map(|e| e.bytes).unwrap_or(0)
    }

    /// Bytes found resident across all requests so far.
    pub fn hit_bytes(&self) -> u64 {
        self.hit_bytes
    }

    /// Bytes streamed from DRAM across all requests so far.
    pub fn refill_bytes(&self) -> u64 {
        self.refill_bytes
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Residency hit-rate: hit bytes over total demanded bytes (1.0 before
    /// any traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_bytes + self.refill_bytes;
        if total == 0 {
            1.0
        } else {
            self.hit_bytes as f64 / total as f64
        }
    }

    /// Pins or unpins `obj` (no-op when absent). Pinned entries are never
    /// evicted; the serving layer pins the active model's weight shards for
    /// the duration of its batch.
    pub fn set_pinned(&mut self, obj: GscObject, pinned: bool) {
        if let Some(e) = self.entries.get_mut(&obj) {
            e.pinned = pinned;
        }
    }

    /// Drops `obj`, returning the bytes it held (0 when absent).
    pub fn remove(&mut self, obj: GscObject) -> u64 {
        self.entries.remove(&obj).map(|e| e.bytes).unwrap_or(0)
    }

    /// Touches, and refills toward full residency, the entry for `obj` with
    /// footprint `full_bytes` and refill cost `refill_cost_ms`, evicting
    /// unpinned entries under the configured policy as needed. The entry
    /// ends as resident as free-able capacity allows (possibly partially:
    /// a working set larger than the GSC never fully fits).
    pub fn request(
        &mut self,
        obj: GscObject,
        full_bytes: u64,
        refill_cost_ms: f64,
        pinned: bool,
    ) -> ResidencyOutcome {
        self.tick += 1;
        let prior_bytes = self.resident_bytes(obj).min(full_bytes);
        let want = full_bytes - prior_bytes;

        // Free space for the missing part: capacity minus everything else
        // resident, growable by evicting unpinned entries other than `obj`.
        let others: u64 = self
            .entries
            .iter()
            .filter(|(k, _)| **k != obj)
            .map(|(_, e)| e.bytes)
            .sum();
        let mut free = self.capacity.saturating_sub(others + prior_bytes);
        let mut evicted = Vec::new();
        while free < want {
            match self.eviction_victim(obj) {
                Some(victim) => {
                    let released = self.shrink(victim, want - free);
                    self.evictions += 1;
                    free += released;
                    evicted.push((victim, released));
                }
                None => break,
            }
        }

        let refilled = want.min(free);
        let resident = prior_bytes + refilled;
        self.hit_bytes += prior_bytes;
        self.refill_bytes += full_bytes - prior_bytes;
        if resident > 0 || full_bytes == 0 {
            self.entries.insert(
                obj,
                Entry {
                    bytes: resident,
                    full_bytes,
                    refill_cost_ms,
                    last_touch: self.tick,
                    pinned,
                },
            );
        } else {
            self.entries.remove(&obj);
        }
        debug_assert!(self.occupancy_bytes() <= self.capacity);
        ResidencyOutcome {
            prior_bytes,
            resident_bytes: resident,
            refilled_bytes: full_bytes - prior_bytes,
            evicted,
        }
    }

    /// Releases up to `needed` bytes from `victim`: weight shards shrink
    /// to partial residency, latents (indivisible state) leave whole.
    /// Returns the bytes released.
    fn shrink(&mut self, victim: GscObject, needed: u64) -> u64 {
        let Some(e) = self.entries.get_mut(&victim) else {
            return 0;
        };
        if victim.is_latent() || e.bytes <= needed {
            return self.remove(victim);
        }
        e.bytes -= needed;
        needed
    }

    /// The next eviction victim under the policy, excluding `keep` and
    /// pinned entries; `None` when nothing is evictable.
    fn eviction_victim(&self, keep: GscObject) -> Option<GscObject> {
        let candidates = self
            .entries
            .iter()
            .filter(|(k, e)| **k != keep && !e.pinned && e.bytes > 0);
        match self.policy {
            EvictionPolicy::Lru => candidates
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(k, _)| *k),
            EvictionPolicy::CostAware => candidates
                .min_by(|(_, a), (_, b)| {
                    a.refill_cost_ms
                        .total_cmp(&b.refill_cost_ms)
                        .then(a.last_touch.cmp(&b.last_touch))
                })
                .map(|(k, _)| *k),
        }
    }
}

/// The DRAM weight footprint of one denoising iteration of `model` (bytes):
/// every weight matrix streamed once, dense (the residency working set; the
/// sparse phase streams a subset of the same bytes).
pub fn model_weight_bytes(model: &ModelConfig, bytes_per_operand: f64) -> u64 {
    let plan = build_iteration(
        &model.paper,
        model.network,
        model.geglu,
        IterationKindFlags {
            ffn_sparse: false,
            ffn_dense_with_cau: false,
            ep: false,
        },
        &SparsityProfile::dense(),
        1,
    );
    plan.ops
        .iter()
        .map(|op| match op {
            DscOp::Mmul(desc) => desc.weight_bytes(bytes_per_operand),
            _ => 0,
        })
        .sum()
}

/// The denoising latent state one in-flight request parks at an iteration
/// boundary (bytes): the current latent `x_t` plus the sampler's residual
/// scratch — two `tokens × d_model` tensors at the operand width. UNet
/// models park the full-resolution latent (the transformer runs
/// downsampled, but the state that must survive preemption is the
/// full-resolution one).
pub fn latent_state_bytes(model: &ModelConfig, bytes_per_operand: f64) -> u64 {
    let tokens = match model.network {
        NetworkType::TransformerOnly => model.paper.tokens,
        _ => model.paper.tokens * 2,
    };
    (2.0 * tokens as f64 * model.paper.d_model as f64 * bytes_per_operand).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::{ModelConfig, ModelKind};

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn partial_residency_is_clamped() {
        assert_eq!(partial_residency(64.0, 0.0), 1.0);
        assert_eq!(partial_residency(64.0, 32.0), 1.0);
        assert_eq!(partial_residency(32.0, 64.0), 0.5);
        assert_eq!(partial_residency(0.0, 64.0), 0.0);
    }

    #[test]
    fn request_grows_entry_to_full_residency() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::Lru);
        let w = GscObject::Weights(ModelKind::Mld);
        let first = gsc.request(w, 4 * MIB, 1.0, false);
        assert_eq!(first.prior_bytes, 0);
        assert_eq!(first.resident_bytes, 4 * MIB);
        assert_eq!(first.refilled_bytes, 4 * MIB);
        let second = gsc.request(w, 4 * MIB, 1.0, false);
        assert_eq!(second.prior_bytes, 4 * MIB);
        assert_eq!(second.refilled_bytes, 0);
        assert_eq!(gsc.resident_fraction(w), 1.0);
        assert!(gsc.hit_rate() > 0.0 && gsc.hit_rate() < 1.0);
    }

    #[test]
    fn oversized_object_stays_partially_resident() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::Lru);
        let w = GscObject::Weights(ModelKind::StableDiffusion);
        let out = gsc.request(w, 25 * MIB, 5.0, false);
        assert_eq!(out.resident_bytes, 10 * MIB);
        assert!((gsc.resident_fraction(w) - 0.4).abs() < 1e-12);
        assert_eq!(gsc.occupancy_bytes(), 10 * MIB);
        // The next request of the same object still finds the partial share.
        let again = gsc.request(w, 25 * MIB, 5.0, false);
        assert_eq!(again.prior_bytes, 10 * MIB);
        assert_eq!(again.refilled_bytes, 15 * MIB);
    }

    #[test]
    fn lru_shrinks_least_recently_used_weights() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::Lru);
        let a = GscObject::Weights(ModelKind::Mld);
        let b = GscObject::Weights(ModelKind::Mdm);
        let c = GscObject::Weights(ModelKind::Edge);
        gsc.request(a, 4 * MIB, 1.0, false);
        gsc.request(b, 4 * MIB, 1.0, false);
        gsc.request(a, 4 * MIB, 1.0, false); // refresh a
        let out = gsc.request(c, 4 * MIB, 1.0, false);
        // Only 2 MiB were missing, so the LRU victim shrinks to partial
        // residency instead of leaving outright.
        assert_eq!(out.evicted, vec![(b, 2 * MIB)]);
        assert_eq!(gsc.resident_bytes(b), 2 * MIB);
        assert!((gsc.resident_fraction(b) - 0.5).abs() < 1e-12);
        assert_eq!(gsc.resident_fraction(a), 1.0);
        assert_eq!(gsc.occupancy_bytes(), 10 * MIB);
    }

    #[test]
    fn cost_aware_keeps_the_expensive_tenant() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::CostAware);
        let cheap = GscObject::Weights(ModelKind::Mld);
        let dear = GscObject::Weights(ModelKind::StableDiffusion);
        gsc.request(dear, 6 * MIB, 9.0, false);
        gsc.request(cheap, 3 * MIB, 0.2, false);
        // `cheap` is more recent, but cost-aware eviction sacrifices it.
        let out = gsc.request(GscObject::Latent(7), 4 * MIB, 0.5, false);
        assert_eq!(out.evicted, vec![(cheap, 3 * MIB)]);
        assert_eq!(gsc.resident_fraction(dear), 1.0);
    }

    #[test]
    fn evicted_latents_leave_whole() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::Lru);
        let parked = GscObject::Latent(1);
        gsc.request(parked, 4 * MIB, 0.1, false);
        // Needing only 2 MiB still pushes the whole latent out — parked
        // denoising state is indivisible.
        let out = gsc.request(GscObject::Weights(ModelKind::Mld), 8 * MIB, 1.0, false);
        assert_eq!(out.evicted, vec![(parked, 4 * MIB)]);
        assert_eq!(gsc.resident_bytes(parked), 0);
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::Lru);
        let active = GscObject::Weights(ModelKind::Mld);
        let parked = GscObject::Latent(3);
        gsc.request(active, 6 * MIB, 1.0, true);
        gsc.request(parked, 3 * MIB, 0.1, false);
        // An 8 MiB demand can only reclaim the unpinned latent.
        let out = gsc.request(GscObject::Weights(ModelKind::Mdm), 8 * MIB, 2.0, false);
        assert_eq!(out.evicted, vec![(parked, 3 * MIB)]);
        assert_eq!(out.resident_bytes, 4 * MIB); // truncated by the pin
        assert_eq!(gsc.resident_fraction(active), 1.0);
        assert!(gsc.occupancy_bytes() <= gsc.capacity_bytes());
    }

    #[test]
    fn park_headroom_excludes_pins_and_latents() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::Lru);
        assert_eq!(gsc.park_headroom_bytes(), 10 * MIB);
        gsc.request(GscObject::Weights(ModelKind::Mld), 3 * MIB, 1.0, true);
        gsc.request(GscObject::Weights(ModelKind::Mdm), 2 * MIB, 1.0, false);
        gsc.request(GscObject::Latent(1), MIB, 0.1, false);
        // Unpinned weights are displaceable, pins and latents are not.
        assert_eq!(gsc.park_headroom_bytes(), 6 * MIB);
        gsc.set_pinned(GscObject::Weights(ModelKind::Mld), false);
        assert_eq!(gsc.park_headroom_bytes(), 9 * MIB);
    }

    #[test]
    fn evictable_bytes_excludes_pins() {
        let mut gsc = GscCache::new(10 * MIB, EvictionPolicy::Lru);
        assert_eq!(gsc.evictable_bytes(), 10 * MIB);
        gsc.request(GscObject::Weights(ModelKind::Mld), 6 * MIB, 1.0, true);
        gsc.request(GscObject::Latent(1), 2 * MIB, 0.1, false);
        // Only the pinned weights are off limits; the latent is reclaimable.
        assert_eq!(gsc.evictable_bytes(), 4 * MIB);
        gsc.set_pinned(GscObject::Weights(ModelKind::Mld), false);
        assert_eq!(gsc.evictable_bytes(), 10 * MIB);
    }

    #[test]
    fn unpinning_releases_the_entry() {
        let mut gsc = GscCache::new(8 * MIB, EvictionPolicy::Lru);
        let w = GscObject::Weights(ModelKind::Mld);
        gsc.request(w, 6 * MIB, 1.0, true);
        gsc.set_pinned(w, false);
        let out = gsc.request(GscObject::Weights(ModelKind::Mdm), 8 * MIB, 1.0, false);
        assert_eq!(out.evicted, vec![(w, 6 * MIB)]);
        assert_eq!(out.resident_bytes, 8 * MIB);
    }

    #[test]
    fn weight_footprints_track_model_scale() {
        let bytes = |k: ModelKind| model_weight_bytes(&ModelConfig::for_kind(k), 1.5);
        // MLD is a small latent transformer; Stable Diffusion and DiT are
        // orders of magnitude heavier — and SD exceeds a 64 MiB GSC while
        // MLD fits many times over.
        assert!(bytes(ModelKind::Mld) < 16 * MIB);
        assert!(bytes(ModelKind::StableDiffusion) > 64 * MIB);
        assert!(bytes(ModelKind::Dit) > bytes(ModelKind::StableDiffusion));
    }

    #[test]
    fn latent_state_is_small_relative_to_weights() {
        for kind in ModelKind::ALL {
            let model = ModelConfig::for_kind(kind);
            let latent = latent_state_bytes(&model, 1.5);
            let weights = model_weight_bytes(&model, 1.5);
            assert!(latent > 0, "{}", kind.name());
            assert!(latent * 10 < weights, "{}", kind.name());
        }
    }
}
