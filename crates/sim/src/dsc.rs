//! The diffusion-sparsity-aware core timeline (paper Fig. 10).
//!
//! One representative DSC executes its share of each iteration's ops (rows
//! are data-parallel across DSCs; weights are fetched once and broadcast).
//! Within an iteration the engines and the DMA overlap — the paper pipelines
//! EPRE under SDUE/CFSE and double/triple-buffers IMEM/WMEM to hide fetch
//! latency — so iteration latency is the maximum of the per-engine busy
//! times plus a small fill overhead.

use exion_dram::{Dram, DramStats};
use serde::{Deserialize, Serialize};

use crate::cau::CauModel;
use crate::cfse::CfseModel;
use crate::config::HwConfig;
use crate::energy::{EnergyAccumulator, Engine};
use crate::epre::EpreModel;
use crate::sdue::SdueModel;
use crate::workload::{DscOp, IterationPlan};

/// Pipeline fill/drain overhead per iteration (cycles).
const ITERATION_FILL_CYCLES: f64 = 64.0;

/// Accumulated per-engine busy cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineBusy {
    /// SDUE busy cycles.
    pub sdue: f64,
    /// EPRE busy cycles.
    pub epre: f64,
    /// CFSE busy cycles.
    pub cfse: f64,
    /// CAU busy cycles.
    pub cau: f64,
    /// DRAM-bound cycles.
    pub dram: f64,
}

/// Final report of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DscReport {
    /// Total elapsed cycles.
    pub total_cycles: f64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Energy of all DSCs (mJ).
    pub dsc_energy_mj: f64,
    /// DRAM energy, dynamic + background (mJ).
    pub dram_energy_mj: f64,
    /// Per-engine energy across all DSCs (mJ), Table III order.
    pub engine_energy_mj: Vec<(Engine, f64)>,
    /// Per-engine busy cycles (one DSC).
    pub busy: EngineBusy,
    /// DRAM statistics.
    pub dram_stats: DramStats,
}

impl DscReport {
    /// Total accelerator energy (mJ).
    pub fn total_energy_mj(&self) -> f64 {
        self.dsc_energy_mj + self.dram_energy_mj
    }
}

/// Cycle-level simulator of one accelerator instance.
#[derive(Debug, Clone)]
pub struct DscSimulator {
    config: HwConfig,
    sdue: SdueModel,
    epre: EpreModel,
    cfse: CfseModel,
    cau: CauModel,
    dram: Dram,
    acc: EnergyAccumulator,
    now_ns: f64,
    busy: EngineBusy,
    /// Fraction of the iteration's weight working set GSC-resident before
    /// the next iteration (0.0 = cold, capacity-capped on execution).
    resident_weight_frac: f64,
}

impl DscSimulator {
    /// Creates a simulator for an accelerator instance.
    pub fn new(config: &HwConfig) -> Self {
        Self {
            config: *config,
            sdue: SdueModel::new(config.geometry),
            epre: EpreModel::new(config.geometry),
            cfse: CfseModel::new(config.geometry),
            cau: CauModel::new(config.geometry.array_cols),
            dram: Dram::for_bandwidth(config.dram_timing(), config.dram_gbps),
            acc: EnergyAccumulator::new(),
            now_ns: 0.0,
            busy: EngineBusy::default(),
            resident_weight_frac: 0.0,
        }
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// Marks `frac` of the model's weight working set as already
    /// GSC-resident, as reported by a capacity-aware residency model
    /// ([`crate::residency::GscCache`]) multiplexing tenants over this
    /// instance. The next iteration streams only the non-resident
    /// remainder; the fraction is additionally capped by what the GSC can
    /// physically hold. `1.0` reproduces the steady state of a single-tenant
    /// serving loop, `0.0` a fully cold switch.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn preload_weight_fraction(&mut self, frac: f64) {
        assert!((0.0..=1.0).contains(&frac), "resident fraction range");
        self.resident_weight_frac = frac;
    }

    /// Executes one diffusion iteration's op list.
    pub fn execute_iteration(&mut self, plan: &IterationPlan) {
        let dsc = self.config.dsc_count as u64;
        let mut sdue_c = 0.0f64;
        let mut sdue_active = 0.0f64;
        let mut epre_c = 0.0f64;
        let mut cfse_c = 0.0f64;
        let mut cau_c = 0.0f64;
        let mut dram_bytes = 0u64;

        for op in &plan.ops {
            match op {
                DscOp::Mmul(desc) => {
                    let m_share = desc.m.div_ceil(dsc);
                    let dense_blocks = self.sdue.dense_blocks_per_tile(desc.n) as f64;
                    let blocks = (dense_blocks * desc.block_frac)
                        .max(f64::from(u8::from(desc.block_frac > 0.0)));
                    let c = self.sdue.mmul_cycles(m_share, desc.k_eff(), blocks) as f64;
                    sdue_c += c;
                    sdue_active += c * desc.utilization;
                    dram_bytes += desc.weight_bytes(self.config.operand_bytes());
                }
                DscOp::Special {
                    func,
                    elements,
                    width,
                } => {
                    let share = elements.div_ceil(dsc);
                    cfse_c += self.cfse.cycles(*func, share, *width) as f64;
                }
                DscOp::EpPredict {
                    tokens,
                    d_model,
                    heads,
                } => {
                    let share = tokens.div_ceil(dsc);
                    epre_c += self.epre.attention_predict_cycles(share, *d_model, *heads) as f64;
                }
                DscOp::CauGenerate {
                    cols,
                    surviving_frac,
                    tiles,
                } => {
                    let tile_share = tiles.div_ceil(dsc);
                    cau_c += (self.cau.estimate_cycles(*cols, *surviving_frac) * tile_share) as f64;
                }
            }
        }

        // DMA: weights are fetched once per tile group and broadcast;
        // streaming overlaps compute via the double/triple-buffered memories.
        // The GSC-resident fraction of the working set skips DRAM entirely;
        // residency is partial — the capacity cap and any externally
        // reported residency (a multi-tenant cache model) compose as a
        // minimum, never as an all-or-nothing warm/cold flag.
        let capacity_frac =
            crate::residency::partial_residency(self.config.gsc_bytes(), dram_bytes as f64);
        let resident = self.resident_weight_frac.min(capacity_frac);
        let effective_bytes = (dram_bytes as f64 * (1.0 - resident)) as u64;
        let dram_c = if effective_bytes > 0 {
            let done = self
                .dram
                .stream_transfer(effective_bytes, false, self.now_ns);
            (done - self.now_ns) / self.config.cycle_ns()
        } else {
            0.0
        };
        if dram_bytes > 0 {
            // Whatever fit stays resident for the following iterations.
            self.resident_weight_frac = capacity_frac;
        }

        let iter_cycles =
            sdue_c.max(epre_c).max(cfse_c).max(cau_c).max(dram_c) + ITERATION_FILL_CYCLES;

        self.acc.record(Engine::Sdue, sdue_active, 1.0);
        self.acc.record(Engine::Epre, epre_c, 1.0);
        self.acc.record(Engine::Cfse, cfse_c, 1.0);
        self.acc.record(Engine::Cau, cau_c, 1.0);
        self.acc.record(Engine::Memories, sdue_c.max(cfse_c), 1.0);
        self.acc.record(Engine::Control, dram_c, 1.0);
        self.acc.advance(iter_cycles);
        self.now_ns += iter_cycles * self.config.cycle_ns();

        self.busy.sdue += sdue_c;
        self.busy.epre += epre_c;
        self.busy.cfse += cfse_c;
        self.busy.cau += cau_c;
        self.busy.dram += dram_c;
    }

    /// Finalizes the run into a report.
    pub fn finish(&self) -> DscReport {
        let clock = self.config.clock_mhz;
        let dsc_count = self.config.dsc_count as f64;
        let seconds = self.acc.elapsed_cycles * 1e-6 / clock;
        let engine_energy_mj: Vec<(Engine, f64)> = Engine::ALL
            .iter()
            .map(|&e| (e, self.acc.engine_energy_mj(e, clock) * dsc_count))
            .collect();
        let dsc_energy_mj = engine_energy_mj.iter().map(|(_, e)| e).sum();
        let dram_energy_mj =
            (self.dram.dynamic_energy_pj() + self.dram.background_energy_pj(self.now_ns)) * 1e-9;
        DscReport {
            total_cycles: self.acc.elapsed_cycles,
            seconds,
            dsc_energy_mj,
            dram_energy_mj,
            engine_energy_mj,
            busy: self.busy,
            dram_stats: self.dram.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{MmulDesc, SparsityProfile};
    use exion_model::config::NetworkType;

    fn plan_one_mmul(desc: MmulDesc) -> IterationPlan {
        IterationPlan {
            ops: vec![DscOp::Mmul(desc)],
            dense_equivalent_macs: desc.m * desc.k * desc.n,
        }
    }

    #[test]
    fn sparse_mmul_is_faster_than_dense() {
        let hw = HwConfig::single_dsc();
        let mut dense_sim = DscSimulator::new(&hw);
        dense_sim.execute_iteration(&plan_one_mmul(MmulDesc::dense(256, 1024, 4096)));
        let dense = dense_sim.finish();

        let mut sparse_sim = DscSimulator::new(&hw);
        sparse_sim.execute_iteration(&plan_one_mmul(MmulDesc {
            block_frac: 0.15,
            utilization: 0.4,
            weight_frac: 0.2,
            ..MmulDesc::dense(256, 1024, 4096)
        }));
        let sparse = sparse_sim.finish();

        assert!(sparse.total_cycles < dense.total_cycles / 2.0);
        assert!(sparse.total_energy_mj() < dense.total_energy_mj());
    }

    #[test]
    fn more_dscs_reduce_latency() {
        let plan = plan_one_mmul(MmulDesc::dense(4096, 1024, 4096));
        let mut one = DscSimulator::new(&HwConfig::single_dsc());
        one.execute_iteration(&plan);
        let mut many = DscSimulator::new(&HwConfig::exion24());
        many.execute_iteration(&plan);
        let r1 = one.finish();
        let r24 = many.finish();
        assert!(
            r24.total_cycles < r1.total_cycles / 8.0,
            "1 DSC {} vs 24 DSC {}",
            r1.total_cycles,
            r24.total_cycles
        );
    }

    #[test]
    fn dram_bound_layers_hit_the_bandwidth_wall() {
        // A skinny MMUL (few rows, huge weights) is DRAM-bound: latency
        // tracks the weight fetch, not the SDUE.
        let hw = HwConfig::exion4();
        let mut sim = DscSimulator::new(&hw);
        let desc = MmulDesc::dense(16, 4096, 16384);
        sim.execute_iteration(&plan_one_mmul(desc));
        let r = sim.finish();
        let weight_ns = desc.weight_bytes(hw.operand_bytes()) as f64 / hw.dram_gbps;
        let weight_cycles = weight_ns / hw.cycle_ns();
        assert!(r.busy.dram > r.busy.sdue);
        assert!(r.total_cycles > 0.9 * weight_cycles);
    }

    #[test]
    fn engine_overlap_latency_is_max_not_sum() {
        let hw = HwConfig::single_dsc();
        let mut sim = DscSimulator::new(&hw);
        let plan = IterationPlan {
            ops: vec![
                DscOp::Mmul(MmulDesc::dense_onchip(256, 256, 256)),
                DscOp::EpPredict {
                    tokens: 256,
                    d_model: 256,
                    heads: 4,
                },
            ],
            dense_equivalent_macs: 0,
        };
        sim.execute_iteration(&plan);
        let r = sim.finish();
        assert!(r.total_cycles < r.busy.sdue + r.busy.epre);
        assert!(r.total_cycles + 1.0 >= r.busy.sdue.max(r.busy.epre));
    }

    #[test]
    fn gsc_resident_weights_amortize_dram_traffic() {
        // A model whose weights fit the GSC pays DRAM only on iteration 0.
        let hw = HwConfig::exion4(); // 16 MiB GSC
        let small = MmulDesc::dense(64, 256, 256); // 96 kB of INT12 weights
        let mut sim = DscSimulator::new(&hw);
        sim.execute_iteration(&plan_one_mmul(small));
        let first_read = sim.finish().dram_stats.bytes_read;
        sim.execute_iteration(&plan_one_mmul(small));
        sim.execute_iteration(&plan_one_mmul(small));
        let total_read = sim.finish().dram_stats.bytes_read;
        assert_eq!(total_read, first_read, "later iterations hit the GSC");
    }

    #[test]
    fn partial_residency_interpolates_dram_time() {
        // A skinny DRAM-bound MMUL: iteration latency tracks the streamed
        // bytes, so each preloaded fraction prices strictly cheaper.
        let hw = HwConfig::exion4();
        let desc = MmulDesc::dense(16, 4096, 16384); // ~100 MB of weights
        let cycles_at = |frac: f64| {
            let mut sim = DscSimulator::new(&hw);
            sim.preload_weight_fraction(frac);
            sim.execute_iteration(&plan_one_mmul(desc));
            sim.finish().total_cycles
        };
        let (cold, third, capped) = (cycles_at(0.0), cycles_at(0.3), cycles_at(0.6));
        assert!(cold > third, "{cold} vs {third}");
        assert!(third > capped, "{third} vs {capped}");
    }

    #[test]
    fn oversized_weights_keep_streaming() {
        let hw = HwConfig::single_dsc(); // 0.5 MiB GSC
        let big = MmulDesc::dense(64, 2048, 2048); // 6 MiB of INT12 weights
        let mut sim = DscSimulator::new(&hw);
        sim.execute_iteration(&plan_one_mmul(big));
        let first = sim.finish().dram_stats.bytes_read;
        sim.execute_iteration(&plan_one_mmul(big));
        let second = sim.finish().dram_stats.bytes_read - first;
        // Over 90% of the weights must re-stream each iteration.
        assert!(second as f64 > 0.9 * first as f64, "{second} vs {first}");
    }

    #[test]
    fn full_iteration_produces_energy_breakdown() {
        let hw = HwConfig::exion4();
        let params =
            exion_model::config::ModelConfig::for_kind(exion_model::config::ModelKind::Mdm).paper;
        let flags = crate::workload::IterationKindFlags {
            ffn_sparse: true,
            ffn_dense_with_cau: false,
            ep: true,
        };
        let profile = SparsityProfile::analytic(0.95, 0.95, 16);
        let plan = crate::workload::build_iteration(
            &params,
            NetworkType::TransformerOnly,
            false,
            flags,
            &profile,
            1,
        );
        let mut sim = DscSimulator::new(&hw);
        sim.execute_iteration(&plan);
        let r = sim.finish();
        assert!(r.dsc_energy_mj > 0.0);
        assert!(r.dram_energy_mj > 0.0);
        assert_eq!(r.engine_energy_mj.len(), 6);
        // SDUE consumes the largest share among engines when computing.
        let sdue = r.engine_energy_mj[0].1;
        assert!(sdue > 0.0);
    }
}
