//! The eager-prediction engine's cycle model (paper Section IV-D, Fig. 15).
//!
//! The EPRE is an LD_DPU array of the same geometry as the SDUE, running
//! log-domain MACs (TS-LOD shift/OR/add pipelines). Its job per transformer
//! block: predict the Q and K projections in the log domain, then predict the
//! per-head attention scores. "During the process, EPRE's latency is mostly
//! hidden by SDUE and CFSE execution due to pipelining schemes" — the DSC
//! timeline overlaps it accordingly.

use crate::config::DscGeometry;

/// EPRE cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpreModel {
    geometry: DscGeometry,
}

impl EpreModel {
    /// Creates a model with the given LD_DPU array geometry.
    pub fn new(geometry: DscGeometry) -> Self {
        Self { geometry }
    }

    /// Cycles of a log-domain MMUL `m × k × n` on the LD_DPU array.
    pub fn mmul_cycles(&self, m: u64, k: u64, n: u64) -> u64 {
        let row_tiles = m.div_ceil(self.geometry.array_rows as u64);
        let col_blocks = n.div_ceil(self.geometry.array_cols as u64);
        let k_steps = k.div_ceil(self.geometry.lane_length as u64).max(1);
        row_tiles * col_blocks * (k_steps + 1)
    }

    /// Cycles to predict one transformer block's attention: log-domain Q and
    /// K projections plus per-head predicted scores, plus the top-k /
    /// dominance scan of each score row (1 cycle per row-tile pass).
    pub fn attention_predict_cycles(&self, tokens: u64, d_model: u64, heads: u64) -> u64 {
        let proj = 2 * self.mmul_cycles(tokens, d_model, d_model);
        let d_head = (d_model / heads).max(1);
        let scores = heads * self.mmul_cycles(tokens, d_head, tokens);
        let scan = heads * tokens.div_ceil(self.geometry.array_rows as u64);
        proj + scores + scan
    }

    /// Log-domain MAC count of one block prediction (for energy activity).
    pub fn attention_predict_macs(&self, tokens: u64, d_model: u64, heads: u64) -> u64 {
        let d_head = (d_model / heads).max(1);
        2 * tokens * d_model * d_model + heads * tokens * tokens * d_head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EpreModel {
        EpreModel::new(DscGeometry::exion())
    }

    #[test]
    fn mmul_cycles_match_array_shape() {
        let m = model();
        // 16×16×16 is one tile, one block, one k-step (+1 pipeline).
        assert_eq!(m.mmul_cycles(16, 16, 16), 2);
        // Four times the rows → four times the cycles.
        assert_eq!(m.mmul_cycles(64, 16, 16), 8);
    }

    #[test]
    fn prediction_cycles_scale_with_tokens() {
        let m = model();
        let small = m.attention_predict_cycles(64, 64, 4);
        let large = m.attention_predict_cycles(256, 64, 4);
        assert!(large > 3 * small);
    }

    #[test]
    fn prediction_is_cheaper_than_block_compute() {
        // EPRE (12-bit log-domain) work per block should be a fraction of the
        // SDUE's real-domain work, or hiding it would be impossible.
        let m = model();
        let sdue = crate::sdue::SdueModel::new(DscGeometry::exion());
        let tokens = 256u64;
        let d = 1024u64;
        let epre_cycles = m.attention_predict_cycles(tokens, d, 16);
        // SDUE per block: QKV+O projections and FFN at d_ff = 4d.
        let proj = sdue.mmul_cycles(tokens, d, 4.0 * (d as f64 / 16.0));
        let ffn = sdue.mmul_cycles(tokens, d, 4.0 * d as f64 / 16.0)
            + sdue.mmul_cycles(tokens, 4 * d, d as f64 / 16.0);
        assert!(
            epre_cycles < proj + ffn,
            "EPRE {epre_cycles} vs SDUE {}",
            proj + ffn
        );
    }

    #[test]
    fn mac_count_positive() {
        assert!(model().attention_predict_macs(64, 64, 4) > 0);
    }
}
