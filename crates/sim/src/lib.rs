//! # exion-sim
//!
//! Cycle-level simulator of the EXION hardware architecture (paper Section
//! IV, Figs. 10–11, Table III).
//!
//! The simulator follows the paper's own methodology: a custom cycle-level
//! model integrated with a DRAM simulator ([`exion_dram`]), with power and
//! area taken from the synthesized design's Table III breakdown. It consumes
//! *workload descriptors* — layer shapes plus the sparsity/compaction
//! summaries produced by `exion-core`/`exion-model` — and produces latency,
//! energy, and utilization reports. Functional correctness of the datapaths
//! is established separately: [`sdue`] executes ConMerge merged blocks
//! bit-faithfully through the cv_sw/i_sw/w_sw switch semantics and is tested
//! against dense MMUL.
//!
//! Components:
//!
//! * [`config`] — hardware configurations (EXION4 / EXION24 / EXION42 of
//!   Table II, plus a single-DSC instance and the paper's toy model),
//! * [`sdue`] — the sparse-dense unified engine: 16×16 dot-product units with
//!   conflict-vector, input, and weight switches,
//! * [`epre`] — the eager-prediction engine's cycle/energy model,
//! * [`cfse`] — the configurable SIMD engine for softmax/LayerNorm/GELU,
//! * [`cau`] — the ConMerge assistant unit (classifier + SortBuffer + CVG),
//! * [`sram`] — banked on-chip memories with double/triple buffering,
//! * [`energy`] — the Table-III power/area model with clock gating,
//! * [`workload`] — descriptor builder from benchmark configs and sparsity
//!   profiles (shard-sliceable via [`workload::ShardSpec`]),
//! * [`partition`] — tensor/pipeline model cuts across instance gangs:
//!   exact per-shard working-set byte partitions, shard iteration costs,
//!   and the interconnect collective term,
//! * [`residency`] — the capacity-aware GSC cache model ([`GscCache`]):
//!   byte-accounted weight-shard and parked-latent entries with pluggable
//!   eviction, shared by the serving layer's schedulers,
//! * [`dsc`] — the diffusion-sparsity-aware core timeline (engine overlap,
//!   DMA double-buffering),
//! * [`perf`] — end-to-end model simulation entry points.

pub mod cau;
pub mod cfse;
pub mod config;
pub mod dsc;
pub mod energy;
pub mod epre;
pub mod isa;
pub mod partition;
pub mod perf;
pub mod residency;
pub mod sdue;
pub mod sram;
pub mod workload;

pub use config::HwConfig;
pub use partition::{simulate_iteration_shard, Interconnect, PartitionPlan, PartitionStrategy};
pub use perf::{
    simulate_iteration, simulate_model, try_simulate_model, IterationCost, PerfReport, SimError,
};
pub use residency::{EvictionPolicy, GscCache, GscObject, ResidencyOutcome};
pub use workload::SparsityProfile;
