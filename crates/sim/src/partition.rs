//! Model partitioning across accelerator instances (tensor / pipeline
//! parallel).
//!
//! A VideoCrafter2-class backbone streams hundreds of megabytes of weights
//! per denoising iteration — far past one instance's GSC — so a replicated
//! deployment re-reads most of the working set from DRAM every iteration.
//! Sharding cuts the model across a *gang* of instances instead:
//! tensor-parallel ranks take column/row slices of every projection (whole
//! attention heads per rank) and pay a per-block all-reduce; pipeline stages
//! take contiguous block ranges and pay activation hand-offs. Either way,
//! each member instance holds only its shard's working set, so per-shard
//! GSC residency ([`crate::residency::GscObject::WeightShard`]) recovers
//! what whole-model residency cannot.
//!
//! [`PartitionPlan`] is the per-model description of one such cut: the
//! exact byte partition of the weight working set (shard bytes *sum to the
//! whole-model bytes by construction* — a cumulative integer split for TP,
//! disjoint op assignment for PP), the [`ShardSpec`] each member executes,
//! and the interconnect collective term. [`simulate_iteration_shard`]
//! prices one shard's compute; [`PartitionPlan::combine`] folds the shard
//! costs into the gang-level iteration cost (max + all-reduce for TP, sum +
//! hand-offs for PP).

use exion_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

use crate::config::HwConfig;
use crate::perf::{flags_for_step, IterationCost, SimAblation, SimError};
use crate::residency::model_weight_bytes;
use crate::workload::{build_iteration_shard, DscOp, ShardSpec, SparsityProfile};

/// How a model is cut across the member instances of one serving gang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// No cut: one instance holds (and executes) the whole model.
    Replicated,
    /// Tensor parallel: every projection is column/row-split `ways` ways,
    /// whole attention heads per rank; two all-reduces per transformer
    /// block per iteration.
    Tensor {
        /// Parallel ways (gang size).
        ways: u32,
    },
    /// Pipeline parallel: contiguous transformer-block ranges per stage;
    /// one activation hand-off per stage boundary per iteration.
    Pipeline {
        /// Pipeline depth (gang size).
        stages: u32,
    },
}

impl PartitionStrategy {
    /// Instances one gang of this strategy occupies.
    pub fn degree(&self) -> usize {
        match *self {
            PartitionStrategy::Replicated => 1,
            PartitionStrategy::Tensor { ways } => ways.max(1) as usize,
            PartitionStrategy::Pipeline { stages } => stages.max(1) as usize,
        }
    }

    /// Short label for reports (`replicated`, `tp2`, `pp4`, …).
    pub fn label(&self) -> String {
        match *self {
            PartitionStrategy::Replicated => "replicated".to_string(),
            PartitionStrategy::Tensor { ways } => format!("tp{}", ways.max(1)),
            PartitionStrategy::Pipeline { stages } => format!("pp{}", stages.max(1)),
        }
    }
}

/// How the board fabric wires instances together — the shape of the links
/// a gang's collectives run over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// A unidirectional ring: each member drives one link, every gang's
    /// traffic crosses the same shared segments. The cheap board layout —
    /// and the one the original collective model priced implicitly.
    Ring,
    /// A fully connected (all-to-all) fabric: each member pair owns a
    /// dedicated link, so a tensor all-reduce spreads its payload across
    /// `degree − 1` links in parallel and concurrent gangs never contend.
    AllToAll,
}

impl Topology {
    /// Short name for reports (`ring`, `all-to-all`).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Ring => "ring",
            Topology::AllToAll => "all-to-all",
        }
    }
}

/// The link between gang members (board-level die-to-die interconnect).
///
/// The paper's instances scale DSC count within one chip; a multi-instance
/// gang crosses a board-level link, slower than DRAM bandwidth but cheap in
/// energy relative to DRAM refills — the trade sharding monetizes. The
/// [`Topology`] decides how many links a collective can drive at once and
/// whether concurrent gangs contend for them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Link bandwidth per direction (GB/s).
    pub link_gbps: f64,
    /// Per-collective launch latency (µs).
    pub latency_us: f64,
    /// Transfer energy (pJ/bit) — below DRAM's ~15–20 pJ/bit.
    pub pj_per_bit: f64,
    /// How the board fabric wires the members together.
    pub topology: Topology,
}

impl Default for Interconnect {
    fn default() -> Self {
        Self::ring()
    }
}

impl Interconnect {
    /// The default board fabric: a ring at 64 GB/s per link.
    pub fn ring() -> Self {
        Self {
            link_gbps: 64.0,
            latency_us: 2.0,
            pj_per_bit: 4.0,
            topology: Topology::Ring,
        }
    }

    /// The same link parameters over a fully connected fabric.
    pub fn all_to_all() -> Self {
        Self {
            topology: Topology::AllToAll,
            ..Self::ring()
        }
    }

    /// Bandwidth-sharing divisor when `concurrent_gangs` gangs drive
    /// collectives over this fabric at once: ring segments are shared by
    /// every gang's traffic, an all-to-all fabric gives each member pair a
    /// dedicated link and never contends across gangs.
    pub fn contention_factor(&self, concurrent_gangs: usize) -> f64 {
        match self.topology {
            Topology::Ring => concurrent_gangs.max(1) as f64,
            Topology::AllToAll => 1.0,
        }
    }
}

/// One model's cut across a gang: per-shard execution specs, the exact
/// byte partition of the weight working set, and the collective term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    strategy: PartitionStrategy,
    interconnect: Interconnect,
    specs: Vec<ShardSpec>,
    shard_bytes: Vec<u64>,
    total_bytes: u64,
    /// Per-member interconnect bytes of one iteration at batch 1 (scales
    /// linearly with batch rows).
    collective_bytes_b1: u64,
    /// Collective launches per iteration (all-reduces or hand-offs).
    collective_ops: u64,
}

impl PartitionPlan {
    /// Plans `model` under `strategy` over `interconnect`, with weights at
    /// `bytes_per_operand`.
    pub fn new(
        model: &ModelConfig,
        strategy: PartitionStrategy,
        interconnect: Interconnect,
        bytes_per_operand: f64,
    ) -> Self {
        let n = strategy.degree();
        let params = &model.paper;
        let specs: Vec<ShardSpec> = (0..n as u32)
            .map(|i| match strategy {
                PartitionStrategy::Replicated => ShardSpec::full(params),
                PartitionStrategy::Tensor { ways } => ShardSpec::tensor(params, ways, i),
                PartitionStrategy::Pipeline { stages } => ShardSpec::pipeline(params, stages, i),
            })
            .collect();
        let total_bytes = model_weight_bytes(model, bytes_per_operand);
        let shard_bytes: Vec<u64> = match strategy {
            // Column/row splits slice every weight matrix proportionally;
            // the cumulative integer split partitions the byte total
            // exactly.
            PartitionStrategy::Tensor { .. } => (0..n as u64)
                .map(|r| total_bytes * (r + 1) / n as u64 - total_bytes * r / n as u64)
                .collect(),
            // Stages own disjoint op subsets of the full plan, so summing
            // their dense per-op weight bytes partitions the total exactly.
            _ => specs
                .iter()
                .map(|spec| dense_shard_weight_bytes(model, spec, bytes_per_operand))
                .collect(),
        };

        // Activation rows one transformer block emits per sample (UNet
        // topologies run their blocks downsampled).
        let m = match model.network {
            exion_model::config::NetworkType::TransformerOnly => params.tokens as u64,
            _ => (params.tokens as u64 / 2).max(1),
        };
        let act_bytes =
            |rows: u64| (rows as f64 * params.d_model as f64 * bytes_per_operand) as u64;
        let (collective_bytes_b1, collective_ops) = match strategy {
            PartitionStrategy::Replicated => (0, 0),
            PartitionStrategy::Tensor { ways } => {
                let w = ways.max(1) as u64;
                // Two all-reduces per transformer block (post-attention,
                // post-FFN) and one per ResBlock pass; a ring moves
                // 2·(w−1)/w of the payload per member.
                let resblocks = if model.network == exion_model::config::NetworkType::UNetRes {
                    crate::workload::RESBLOCKS_PER_ITERATION as u64
                } else {
                    0
                };
                let launches = 2 * params.blocks as u64 + resblocks;
                let payload = params.blocks as u64 * 2 * act_bytes(m)
                    + resblocks * act_bytes(params.tokens as u64);
                let per_member = (payload as f64 * 2.0 * (w - 1) as f64 / w as f64) as u64;
                (per_member, launches)
            }
            PartitionStrategy::Pipeline { stages } => {
                let s = stages.max(1) as u64;
                // One activation hand-off per stage boundary.
                ((s - 1) * act_bytes(m), s - 1)
            }
        };

        Self {
            strategy,
            interconnect,
            specs,
            shard_bytes,
            total_bytes,
            collective_bytes_b1,
            collective_ops,
        }
    }

    /// The strategy this plan realizes.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The interconnect this plan prices its collectives over.
    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    /// Gang size (shards in the plan).
    pub fn num_shards(&self) -> usize {
        self.specs.len()
    }

    /// The iteration slice shard `shard` executes.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn spec(&self, shard: usize) -> &ShardSpec {
        &self.specs[shard]
    }

    /// The weight working-set bytes shard `shard` is responsible for — its
    /// GSC residency footprint. Shards partition
    /// [`Self::total_weight_bytes`] exactly (property-tested in
    /// `tests/serving.rs`).
    pub fn shard_weight_bytes(&self, shard: usize) -> u64 {
        self.shard_bytes[shard]
    }

    /// The whole model's weight working-set bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The largest member footprint in the plan — the GSC-capacity
    /// currency of placement feasibility checks (an uneven pipeline cut is
    /// only as resident as its heaviest stage).
    pub fn max_shard_bytes(&self) -> u64 {
        self.shard_bytes.iter().copied().max().unwrap_or(0)
    }

    /// The steady-state resident fraction the most loaded member can hold
    /// in a GSC of `gsc_bytes` — what a placement planner projects each
    /// gang member's warm fraction to be once traffic settles.
    pub fn min_member_residency(&self, gsc_bytes: f64) -> f64 {
        crate::residency::partial_residency(gsc_bytes, self.max_shard_bytes() as f64)
    }

    /// Per-member interconnect bytes of one iteration at `batch` rows.
    pub fn collective_bytes(&self, batch: u64) -> u64 {
        self.collective_bytes_b1 * batch.max(1)
    }

    /// Links each member can drive concurrently for this plan's
    /// collectives: a tensor all-reduce over a fully connected fabric
    /// spreads its payload across the `ways − 1` peer links, everything
    /// else (ring steps, pipeline hand-offs — both neighbor-to-neighbor)
    /// moves over one link at a time.
    fn parallel_links(&self) -> f64 {
        match (self.strategy, self.interconnect.topology) {
            (PartitionStrategy::Tensor { ways }, Topology::AllToAll) => {
                ways.saturating_sub(1).max(1) as f64
            }
            _ => 1.0,
        }
    }

    /// Wall-clock cost (ms) of one iteration's collectives at `batch` rows:
    /// payload over the fabric (spread across however many links the
    /// topology lets one member drive) plus per-launch latency.
    pub fn collective_ms(&self, batch: u64) -> f64 {
        self.collective_ms_contended(batch, 1)
    }

    /// Like [`Self::collective_ms`], but with `concurrent_gangs` gangs
    /// sharing the board fabric: ring segments divide their bandwidth
    /// across every gang's traffic ([`Interconnect::contention_factor`]),
    /// a fully connected fabric does not contend. The placement planner
    /// prices candidate multi-gang placements with this term.
    pub fn collective_ms_contended(&self, batch: u64, concurrent_gangs: usize) -> f64 {
        let effective_gbps = self.interconnect.link_gbps * self.parallel_links()
            / self.interconnect.contention_factor(concurrent_gangs);
        self.collective_bytes(batch) as f64 / (effective_gbps.max(1e-9) * 1e6)
            + self.collective_ops as f64 * self.interconnect.latency_us * 1e-3
    }

    /// Transfer energy (mJ) of one iteration's collectives at `batch` rows.
    pub fn collective_energy_mj(&self, batch: u64) -> f64 {
        self.collective_bytes(batch) as f64 * 8.0 * self.interconnect.pj_per_bit * 1e-9
    }

    /// Folds per-shard iteration costs into the gang-level cost: tensor
    /// ranks run concurrently (latency is the slowest shard), pipeline
    /// stages run a batch sequentially (latency is the stage sum); both add
    /// the collective term. Energy and dense-equivalent ops sum.
    ///
    /// # Panics
    ///
    /// Panics when `shard_costs.len()` differs from the gang size.
    pub fn combine(&self, shard_costs: &[IterationCost], batch: u64) -> IterationCost {
        assert_eq!(
            shard_costs.len(),
            self.num_shards(),
            "one cost per gang member"
        );
        let compute_ms = match self.strategy {
            PartitionStrategy::Replicated | PartitionStrategy::Tensor { .. } => {
                shard_costs.iter().map(|c| c.latency_ms).fold(0.0, f64::max)
            }
            PartitionStrategy::Pipeline { .. } => shard_costs.iter().map(|c| c.latency_ms).sum(),
        };
        IterationCost {
            latency_ms: compute_ms + self.collective_ms(batch),
            energy_mj: shard_costs.iter().map(|c| c.energy_mj).sum::<f64>()
                + self.collective_energy_mj(batch),
            dense_ops: shard_costs.iter().map(|c| c.dense_ops).sum(),
        }
    }
}

/// Dense weight bytes of the iteration slice `spec` executes (every weight
/// matrix streamed once, dense — the shard's residency working set).
fn dense_shard_weight_bytes(model: &ModelConfig, spec: &ShardSpec, bytes_per_operand: f64) -> u64 {
    let plan = build_iteration_shard(
        &model.paper,
        model.network,
        model.geglu,
        crate::workload::IterationKindFlags {
            ffn_sparse: false,
            ffn_dense_with_cau: false,
            ep: false,
        },
        &SparsityProfile::dense(),
        1,
        spec,
    );
    plan.ops
        .iter()
        .map(|op| match op {
            DscOp::Mmul(desc) => desc.weight_bytes(bytes_per_operand),
            _ => 0,
        })
        .sum()
}

/// Simulates one shard's share of a single denoising iteration: the
/// per-shard analogue of [`crate::perf::simulate_iteration`].
///
/// `resident_frac` is the fraction of *this shard's* weight working set
/// already GSC-resident on the member instance executing it. The returned
/// cost is pure shard compute — the gang's collective term is added by
/// [`PartitionPlan::combine`], which also resolves tensor-vs-pipeline
/// latency composition.
///
/// # Panics
///
/// Panics when `shard` is out of the plan's range.
#[allow(clippy::too_many_arguments)]
pub fn simulate_iteration_shard(
    hw: &HwConfig,
    model: &ModelConfig,
    plan: &PartitionPlan,
    shard: usize,
    profile: &SparsityProfile,
    ablation: SimAblation,
    batch: u64,
    step: usize,
    resident_frac: f64,
) -> Result<IterationCost, SimError> {
    assert!(shard < plan.num_shards(), "shard index within the gang");
    if batch == 0 {
        return Err(SimError::ZeroBatch);
    }
    if step >= model.iterations {
        return Err(SimError::StepOutOfRange {
            step,
            iterations: model.iterations,
        });
    }
    let dense_profile = SparsityProfile::dense();
    let active_profile = if ablation == SimAblation::Base {
        &dense_profile
    } else {
        profile
    };
    let iter_plan = build_iteration_shard(
        &model.paper,
        model.network,
        model.geglu,
        flags_for_step(model, ablation, step),
        active_profile,
        batch,
        plan.spec(shard),
    );
    let mut sim = crate::dsc::DscSimulator::new(hw);
    sim.preload_weight_fraction(resident_frac.clamp(0.0, 1.0));
    sim.execute_iteration(&iter_plan);
    let detail = sim.finish();
    Ok(IterationCost {
        latency_ms: detail.seconds * 1e3,
        energy_mj: detail.total_energy_mj(),
        dense_ops: 2.0 * iter_plan.dense_equivalent_macs as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::{ModelConfig, ModelKind};

    const BPO: f64 = 1.5;

    fn plan_for(kind: ModelKind, strategy: PartitionStrategy) -> (ModelConfig, PartitionPlan) {
        let model = ModelConfig::for_kind(kind);
        let plan = PartitionPlan::new(&model, strategy, Interconnect::default(), BPO);
        (model, plan)
    }

    #[test]
    fn shard_bytes_partition_the_total_exactly() {
        for kind in [ModelKind::VideoCrafter2, ModelKind::Dit, ModelKind::Mld] {
            for strategy in [
                PartitionStrategy::Replicated,
                PartitionStrategy::Tensor { ways: 2 },
                PartitionStrategy::Tensor { ways: 3 },
                PartitionStrategy::Pipeline { stages: 2 },
                PartitionStrategy::Pipeline { stages: 4 },
            ] {
                let (model, plan) = plan_for(kind, strategy);
                let sum: u64 = (0..plan.num_shards())
                    .map(|s| plan.shard_weight_bytes(s))
                    .sum();
                assert_eq!(
                    sum,
                    model_weight_bytes(&model, BPO),
                    "{} {}",
                    kind.name(),
                    strategy.label()
                );
                assert_eq!(plan.num_shards(), strategy.degree());
            }
        }
    }

    #[test]
    fn full_shard_spec_reproduces_the_whole_plan() {
        use crate::workload::{build_iteration, IterationKindFlags};
        let model = ModelConfig::for_kind(ModelKind::StableDiffusion);
        let flags = IterationKindFlags {
            ffn_sparse: true,
            ffn_dense_with_cau: false,
            ep: true,
        };
        let profile = SparsityProfile::analytic(0.9, 0.5, 16);
        let whole = build_iteration(&model.paper, model.network, model.geglu, flags, &profile, 4);
        let via_shard = build_iteration_shard(
            &model.paper,
            model.network,
            model.geglu,
            flags,
            &profile,
            4,
            &ShardSpec::full(&model.paper),
        );
        assert_eq!(whole, via_shard);
    }

    #[test]
    fn tensor_shards_split_compute_and_pay_a_collective() {
        let (model, plan) = plan_for(ModelKind::Dit, PartitionStrategy::Tensor { ways: 2 });
        let hw = HwConfig::exion24();
        let profile = SparsityProfile::dense();
        let whole =
            crate::perf::simulate_iteration(&hw, &model, &profile, SimAblation::Base, 1, 0, 1.0)
                .unwrap();
        let shards: Vec<IterationCost> = (0..2)
            .map(|s| {
                simulate_iteration_shard(
                    &hw,
                    &model,
                    &plan,
                    s,
                    &profile,
                    SimAblation::Base,
                    1,
                    0,
                    1.0,
                )
                .unwrap()
            })
            .collect();
        // Each rank runs roughly half the compute.
        for c in &shards {
            assert!(c.latency_ms < 0.75 * whole.latency_ms, "{c:?} vs {whole:?}");
            assert!(c.dense_ops < 0.6 * whole.dense_ops);
        }
        let gang = plan.combine(&shards, 1);
        // The gang beats one instance but pays the all-reduce over the max.
        assert!(gang.latency_ms < whole.latency_ms);
        assert!(gang.latency_ms > shards[0].latency_ms.max(shards[1].latency_ms));
        assert!(plan.collective_bytes(1) > 0);
        // Dense-equivalent work is conserved across the split.
        let shard_ops: f64 = shards.iter().map(|c| c.dense_ops).sum();
        let rel = (shard_ops - whole.dense_ops).abs() / whole.dense_ops;
        assert!(
            rel < 0.01,
            "split ops {shard_ops} vs whole {}",
            whole.dense_ops
        );
    }

    #[test]
    fn pipeline_stages_sum_and_hand_off() {
        let (model, plan) = plan_for(
            ModelKind::VideoCrafter2,
            PartitionStrategy::Pipeline { stages: 2 },
        );
        let hw = HwConfig::exion24();
        let profile = SparsityProfile::dense();
        let shards: Vec<IterationCost> = (0..2)
            .map(|s| {
                simulate_iteration_shard(
                    &hw,
                    &model,
                    &plan,
                    s,
                    &profile,
                    SimAblation::Base,
                    1,
                    0,
                    0.0,
                )
                .unwrap()
            })
            .collect();
        let gang = plan.combine(&shards, 1);
        let sum: f64 = shards.iter().map(|c| c.latency_ms).sum();
        assert!(gang.latency_ms > sum, "stage hand-off must cost time");
        assert!((gang.latency_ms - sum - plan.collective_ms(1)).abs() < 1e-9);
    }

    #[test]
    fn collectives_scale_with_batch_and_ways() {
        let (_, tp2) = plan_for(ModelKind::Dit, PartitionStrategy::Tensor { ways: 2 });
        let (_, tp4) = plan_for(ModelKind::Dit, PartitionStrategy::Tensor { ways: 4 });
        assert_eq!(tp2.collective_bytes(4), 4 * tp2.collective_bytes(1));
        // Ring all-reduce per-member traffic grows with ways: 2(w−1)/w.
        assert!(tp4.collective_bytes(1) > tp2.collective_bytes(1));
        let (_, rep) = plan_for(ModelKind::Dit, PartitionStrategy::Replicated);
        assert_eq!(rep.collective_bytes(8), 0);
        assert_eq!(rep.collective_ms(8), 0.0);
    }

    #[test]
    fn all_to_all_strictly_beats_ring_at_world_size_4() {
        let model = ModelConfig::for_kind(ModelKind::Dit);
        let strategy = PartitionStrategy::Tensor { ways: 4 };
        let ring = PartitionPlan::new(&model, strategy, Interconnect::ring(), BPO);
        let full = PartitionPlan::new(&model, strategy, Interconnect::all_to_all(), BPO);
        // Same wire bytes, but the all-reduce payload spreads across the
        // three dedicated peer links.
        assert_eq!(ring.collective_bytes(4), full.collective_bytes(4));
        assert!(
            full.collective_ms(4) < ring.collective_ms(4),
            "all-to-all {} vs ring {}",
            full.collective_ms(4),
            ring.collective_ms(4)
        );
        // At world size 2 there is only one peer either way.
        let s2 = PartitionStrategy::Tensor { ways: 2 };
        let ring2 = PartitionPlan::new(&model, s2, Interconnect::ring(), BPO);
        let full2 = PartitionPlan::new(&model, s2, Interconnect::all_to_all(), BPO);
        assert_eq!(ring2.collective_ms(1), full2.collective_ms(1));
    }

    #[test]
    fn ring_contention_divides_bandwidth_all_to_all_does_not() {
        let model = ModelConfig::for_kind(ModelKind::VideoCrafter2);
        let strategy = PartitionStrategy::Tensor { ways: 2 };
        let ring = PartitionPlan::new(&model, strategy, Interconnect::ring(), BPO);
        let solo = ring.collective_ms_contended(1, 1);
        let shared = ring.collective_ms_contended(1, 3);
        assert_eq!(solo, ring.collective_ms(1));
        // Three gangs on the ring: the bandwidth term triples, the launch
        // latency term does not.
        let launch = ring.collective_ops as f64 * ring.interconnect.latency_us * 1e-3;
        assert!((shared - launch - 3.0 * (solo - launch)).abs() < 1e-12);
        let full = PartitionPlan::new(&model, strategy, Interconnect::all_to_all(), BPO);
        assert_eq!(
            full.collective_ms_contended(1, 3),
            full.collective_ms_contended(1, 1)
        );
        assert_eq!(Interconnect::ring().contention_factor(3), 3.0);
        assert_eq!(Interconnect::all_to_all().contention_factor(3), 1.0);
        assert_eq!(Topology::Ring.name(), "ring");
        assert_eq!(Topology::AllToAll.name(), "all-to-all");
    }

    #[test]
    fn capacity_helpers_bound_member_residency() {
        let (model, plan) = plan_for(
            ModelKind::VideoCrafter2,
            PartitionStrategy::Pipeline { stages: 3 },
        );
        let max = plan.max_shard_bytes();
        assert!(max >= plan.total_weight_bytes() / 3);
        assert!(max <= plan.total_weight_bytes());
        assert!((0..3).any(|s| plan.shard_weight_bytes(s) == max));
        // A GSC holding the heaviest shard outright gives full residency;
        // half of it gives half.
        assert_eq!(plan.min_member_residency(max as f64), 1.0);
        assert!((plan.min_member_residency(max as f64 / 2.0) - 0.5).abs() < 1e-12);
        let (_, rep) = plan_for(ModelKind::VideoCrafter2, PartitionStrategy::Replicated);
        assert_eq!(rep.max_shard_bytes(), model_weight_bytes(&model, BPO));
    }

    #[test]
    fn strategy_labels_and_degrees() {
        assert_eq!(PartitionStrategy::Replicated.degree(), 1);
        assert_eq!(PartitionStrategy::Tensor { ways: 2 }.label(), "tp2");
        assert_eq!(PartitionStrategy::Pipeline { stages: 3 }.label(), "pp3");
        assert_eq!(PartitionStrategy::Pipeline { stages: 3 }.degree(), 3);
    }
}
