//! Power/area model derived from the paper's Table III (single DSC,
//! synthesized at 14 nm, 800 MHz, 0.8 V).
//!
//! | Component | Area (mm²) | Power (mW) |
//! |---|---|---|
//! | SDUE | 1.35 | 957.97 |
//! | CAU | 0.04 | 16.03 |
//! | EPRE | 0.81 | 265.15 |
//! | CFSE | 0.32 | 160.61 |
//! | On-chip memories | 1.79 | 60.41 |
//! | Top controller, DMA, etc. | 0.06 | 51.27 |
//! | **Total** | **4.37** | **1511.43** |
//!
//! The dynamic portion of each engine's power scales with its activity
//! (clock gating: "clock gating is applied to all the registers in the
//! SDUE's datapath … addresses any remaining output sparsity after merging");
//! a fixed leakage/idle fraction is always drawn.

use serde::{Deserialize, Serialize};

/// The engines of one DSC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// Sparse-dense unified engine (the DPU array).
    Sdue,
    /// ConMerge assistant unit.
    Cau,
    /// Eager-prediction engine.
    Epre,
    /// Configurable SIMD engine.
    Cfse,
    /// On-chip SRAM (IMEM/WMEM/OMEM/CVMEM/GSC/INSTMEM).
    Memories,
    /// Top controller, DMA, bus.
    Control,
}

impl Engine {
    /// All engines in Table III order.
    pub const ALL: [Engine; 6] = [
        Engine::Sdue,
        Engine::Cau,
        Engine::Epre,
        Engine::Cfse,
        Engine::Memories,
        Engine::Control,
    ];

    /// Table III nominal power at full activity (mW).
    pub fn nominal_power_mw(&self) -> f64 {
        match self {
            Engine::Sdue => 957.97,
            Engine::Cau => 16.03,
            Engine::Epre => 265.15,
            Engine::Cfse => 160.61,
            Engine::Memories => 60.41,
            Engine::Control => 51.27,
        }
    }

    /// Table III area (mm²).
    pub fn area_mm2(&self) -> f64 {
        match self {
            Engine::Sdue => 1.35,
            Engine::Cau => 0.04,
            Engine::Epre => 0.81,
            Engine::Cfse => 0.32,
            Engine::Memories => 1.79,
            Engine::Control => 0.06,
        }
    }

    /// Display name matching Table III.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Sdue => "SDUE",
            Engine::Cau => "CAU",
            Engine::Epre => "EPRE",
            Engine::Cfse => "CFSE",
            Engine::Memories => "On-Chip Memories",
            Engine::Control => "Top Controller, DMA, Etc.",
        }
    }
}

/// Fraction of nominal power drawn even when an engine is clock-gated idle
/// (leakage + clock tree residue at 14 nm).
pub const IDLE_POWER_FRACTION: f64 = 0.12;

/// SRAM macro area per MiB at 14 nm, calibrated so 24 DSCs (24 × 4.37 mm²)
/// plus a 64 MiB GSC reproduce the paper's 152.28 mm² for EXION24.
pub const SRAM_MM2_PER_MIB: f64 = 0.741;

/// Per-DSC energy accumulator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyAccumulator {
    /// Active (cycles × utilization) per engine, in cycle units.
    active_cycles: [f64; 6],
    /// Total elapsed cycles.
    pub elapsed_cycles: f64,
}

impl EnergyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(engine: Engine) -> usize {
        Engine::ALL
            .iter()
            .position(|&e| e == engine)
            .expect("known engine")
    }

    /// Records `cycles` of activity on `engine` at the given utilization
    /// (clock gating scales dynamic power by the active fraction).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn record(&mut self, engine: Engine, cycles: f64, utilization: f64) {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization {utilization} outside [0, 1]"
        );
        self.active_cycles[Self::idx(engine)] += cycles * utilization;
    }

    /// Advances total elapsed time.
    pub fn advance(&mut self, cycles: f64) {
        self.elapsed_cycles += cycles;
    }

    /// Active cycle count of one engine.
    pub fn active(&self, engine: Engine) -> f64 {
        self.active_cycles[Self::idx(engine)]
    }

    /// Energy of one engine over the recorded timeline (mJ) at `clock_mhz`:
    /// dynamic (activity-scaled) plus idle draw over the whole elapsed time.
    pub fn engine_energy_mj(&self, engine: Engine, clock_mhz: f64) -> f64 {
        let p = engine.nominal_power_mw();
        let cycle_s = 1e-6 / clock_mhz;
        let active_s = self.active(engine) * cycle_s;
        let elapsed_s = self.elapsed_cycles * cycle_s;
        let dynamic = p * (1.0 - IDLE_POWER_FRACTION) * active_s;
        let idle = p * IDLE_POWER_FRACTION * elapsed_s;
        dynamic + idle
    }

    /// Total DSC energy (mJ).
    pub fn total_energy_mj(&self, clock_mhz: f64) -> f64 {
        Engine::ALL
            .iter()
            .map(|&e| self.engine_energy_mj(e, clock_mhz))
            .sum()
    }

    /// Mean power over the elapsed timeline (mW).
    pub fn mean_power_mw(&self, clock_mhz: f64) -> f64 {
        if self.elapsed_cycles == 0.0 {
            return 0.0;
        }
        let elapsed_s = self.elapsed_cycles * 1e-6 / clock_mhz;
        self.total_energy_mj(clock_mhz) / elapsed_s
    }
}

/// Total single-DSC power at full activity (Table III bottom line, mW).
pub fn dsc_nominal_power_mw() -> f64 {
    Engine::ALL.iter().map(|e| e.nominal_power_mw()).sum()
}

/// Total single-DSC area (Table III bottom line, mm²).
pub fn dsc_area_mm2() -> f64 {
    Engine::ALL.iter().map(|e| e.area_mm2()).sum()
}

/// Total accelerator area: DSCs plus a shared global scratchpad of
/// `gsc_mib` (the paper: EXION24 with 64 MB GSC occupies 152.28 mm²).
pub fn accelerator_area_mm2(dsc_count: usize, gsc_mib: f64) -> f64 {
    dsc_count as f64 * dsc_area_mm2() + gsc_mib * SRAM_MM2_PER_MIB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_totals() {
        assert!((dsc_nominal_power_mw() - 1511.44).abs() < 0.1);
        assert!((dsc_area_mm2() - 4.37).abs() < 0.01);
    }

    #[test]
    fn exion24_area_matches_paper() {
        let area = accelerator_area_mm2(24, 64.0);
        assert!((area - 152.28).abs() < 0.5, "got {area}");
    }

    #[test]
    fn sdue_dominates_power() {
        let sdue = Engine::Sdue.nominal_power_mw();
        for e in Engine::ALL {
            assert!(sdue >= e.nominal_power_mw());
        }
        // Sparsity-handling hardware (EPRE + CAU) is up to ~18.6% of total.
        let overhead = (Engine::Epre.nominal_power_mw() + Engine::Cau.nominal_power_mw())
            / dsc_nominal_power_mw();
        assert!((overhead - 0.186).abs() < 0.01, "got {overhead}");
    }

    #[test]
    fn idle_engine_still_draws_leakage() {
        let mut acc = EnergyAccumulator::new();
        acc.advance(800e6); // one second at 800 MHz
        let e = acc.engine_energy_mj(Engine::Sdue, 800.0);
        let expect = Engine::Sdue.nominal_power_mw() * IDLE_POWER_FRACTION;
        assert!((e - expect).abs() / expect < 1e-6, "got {e} want {expect}");
    }

    #[test]
    fn full_activity_draws_nominal_power() {
        let mut acc = EnergyAccumulator::new();
        acc.advance(800e6);
        for e in Engine::ALL {
            acc.record(e, 800e6, 1.0);
        }
        let p = acc.mean_power_mw(800.0);
        assert!((p - dsc_nominal_power_mw()).abs() < 0.5, "got {p}");
    }

    #[test]
    fn clock_gating_halves_dynamic_energy() {
        let mut full = EnergyAccumulator::new();
        full.advance(1000.0);
        full.record(Engine::Sdue, 1000.0, 1.0);
        let mut half = EnergyAccumulator::new();
        half.advance(1000.0);
        half.record(Engine::Sdue, 1000.0, 0.5);
        let ef = full.engine_energy_mj(Engine::Sdue, 800.0);
        let eh = half.engine_energy_mj(Engine::Sdue, 800.0);
        let dynamic_f = ef * (1.0 - IDLE_POWER_FRACTION);
        assert!(eh < ef && eh > ef / 2.0 - dynamic_f * 0.01);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn utilization_validated() {
        let mut acc = EnergyAccumulator::new();
        acc.record(Engine::Sdue, 1.0, 1.5);
    }
}
