//! End-to-end model simulation (the entry point of Figs. 18–19).

use exion_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

use crate::config::HwConfig;
use crate::dsc::{DscReport, DscSimulator};
use crate::energy::Engine;
use crate::workload::{build_iteration, IterationKindFlags, SparsityProfile};

/// The ablation axes of Fig. 18 (`EXIONx_Base` / `_EP` / `_FFNR` / `_All`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimAblation {
    /// No sparsity optimizations.
    Base,
    /// Eager prediction only.
    Ep,
    /// FFN-Reuse only.
    Ffnr,
    /// Both.
    All,
}

impl SimAblation {
    /// All ablations in the paper's plotting order.
    pub const ALL: [SimAblation; 4] = [
        SimAblation::Base,
        SimAblation::Ep,
        SimAblation::Ffnr,
        SimAblation::All,
    ];

    /// Suffix used in the paper's config names.
    pub fn suffix(&self) -> &'static str {
        match self {
            SimAblation::Base => "Base",
            SimAblation::Ep => "EP",
            SimAblation::Ffnr => "FFNR",
            SimAblation::All => "All",
        }
    }

    /// Whether FFN-Reuse is active.
    pub fn ffn_reuse(&self) -> bool {
        matches!(self, SimAblation::Ffnr | SimAblation::All)
    }

    /// Whether eager prediction is active.
    pub fn ep(&self) -> bool {
        matches!(self, SimAblation::Ep | SimAblation::All)
    }
}

/// Errors of the non-panicking simulation entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// `batch == 0` was requested.
    ZeroBatch,
    /// A per-iteration simulation was asked for a step past the model's
    /// denoising schedule.
    StepOutOfRange {
        /// The requested 0-based step.
        step: usize,
        /// The model's iteration count.
        iterations: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ZeroBatch => write!(f, "batch must be positive"),
            SimError::StepOutOfRange { step, iterations } => {
                write!(f, "step {step} out of range for {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// End-to-end performance report of one (hardware, model, ablation, batch)
/// point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Configuration name, e.g. `EXION24_All`.
    pub name: String,
    /// End-to-end generation latency (ms).
    pub latency_ms: f64,
    /// Total energy: DSCs + DRAM (mJ).
    pub energy_mj: f64,
    /// Dense-equivalent operations of the workload (2 ops per MAC).
    pub dense_ops: f64,
    /// Effective throughput (dense-equivalent TOPS).
    pub effective_tops: f64,
    /// Energy efficiency (dense-equivalent TOPS/W) — Fig. 18's y-axis.
    pub tops_per_watt: f64,
    /// Underlying simulator report.
    pub detail: DscReport,
}

impl PerfReport {
    /// Mean power during the run (W).
    pub fn mean_power_w(&self) -> f64 {
        if self.latency_ms == 0.0 {
            0.0
        } else {
            self.energy_mj / self.latency_ms
        }
    }

    /// Energy share of one engine across DSCs.
    pub fn engine_share(&self, engine: Engine) -> f64 {
        let total: f64 = self.detail.engine_energy_mj.iter().map(|(_, e)| e).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.detail
            .engine_energy_mj
            .iter()
            .find(|(e, _)| *e == engine)
            .map(|(_, v)| v / total)
            .unwrap_or(0.0)
    }
}

/// The iteration flags `ablation` implies for denoising step `step` of
/// `model` — the FFN-Reuse phase comes from the model's iteration-boundary
/// metadata.
pub(crate) fn flags_for_step(
    model: &ModelConfig,
    ablation: SimAblation,
    step: usize,
) -> IterationKindFlags {
    let ffnr = ablation.ffn_reuse();
    let sparse = ffnr && model.ffn_reuse.phase_of_step(step).is_sparse();
    IterationKindFlags {
        ffn_sparse: sparse,
        ffn_dense_with_cau: ffnr && !sparse,
        ep: ablation.ep(),
    }
}

/// Cost of one denoising iteration on an accelerator instance — the
/// per-iteration hook that request-level serving simulators batch against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Iteration latency (ms).
    pub latency_ms: f64,
    /// Iteration energy: DSCs + DRAM (mJ).
    pub energy_mj: f64,
    /// Dense-equivalent operations of the iteration.
    pub dense_ops: f64,
}

/// Simulates a single denoising iteration of `model` at `batch` rows.
///
/// `step` selects the FFN-Reuse phase (dense boundary or sparse reuse) via
/// the model's iteration metadata. `resident_frac` is the fraction of the
/// model's weight working set already GSC-resident, as tracked by a
/// capacity-aware residency model ([`crate::residency::GscCache`]): `1.0`
/// is the steady state of a single-tenant serving loop, `0.0` a fully cold
/// model switch, and anything between prices a partial refill. The value is
/// clamped to `[0, 1]`.
pub fn simulate_iteration(
    hw: &HwConfig,
    model: &ModelConfig,
    profile: &SparsityProfile,
    ablation: SimAblation,
    batch: u64,
    step: usize,
    resident_frac: f64,
) -> Result<IterationCost, SimError> {
    if batch == 0 {
        return Err(SimError::ZeroBatch);
    }
    if step >= model.iterations {
        return Err(SimError::StepOutOfRange {
            step,
            iterations: model.iterations,
        });
    }
    let dense_profile = SparsityProfile::dense();
    let active_profile = if ablation == SimAblation::Base {
        &dense_profile
    } else {
        profile
    };
    let plan = build_iteration(
        &model.paper,
        model.network,
        model.geglu,
        flags_for_step(model, ablation, step),
        active_profile,
        batch,
    );
    let mut sim = DscSimulator::new(hw);
    sim.preload_weight_fraction(resident_frac.clamp(0.0, 1.0));
    sim.execute_iteration(&plan);
    let detail = sim.finish();
    Ok(IterationCost {
        latency_ms: detail.seconds * 1e3,
        energy_mj: detail.total_energy_mj(),
        dense_ops: 2.0 * plan.dense_equivalent_macs as f64,
    })
}

/// Simulates one benchmark end to end on an accelerator instance.
///
/// `profile` carries the measured (or analytic) sparsity/compaction summary
/// for this model; the `Base` ablation ignores it. `batch` multiplies the
/// token rows (Fig. 18/19 use batch 1 and 8).
///
/// # Panics
///
/// Panics if `batch == 0`. [`try_simulate_model`] is the non-panicking
/// variant.
pub fn simulate_model(
    hw: &HwConfig,
    model: &ModelConfig,
    profile: &SparsityProfile,
    ablation: SimAblation,
    batch: u64,
) -> PerfReport {
    match try_simulate_model(hw, model, profile, ablation, batch) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Non-panicking [`simulate_model`]: rejects `batch == 0` as a [`SimError`].
pub fn try_simulate_model(
    hw: &HwConfig,
    model: &ModelConfig,
    profile: &SparsityProfile,
    ablation: SimAblation,
    batch: u64,
) -> Result<PerfReport, SimError> {
    if batch == 0 {
        return Err(SimError::ZeroBatch);
    }
    let mut sim = DscSimulator::new(hw);
    let dense_profile = SparsityProfile::dense();
    let mut dense_macs = 0u64;

    for i in 0..model.iterations {
        let active_profile = if ablation == SimAblation::Base {
            &dense_profile
        } else {
            profile
        };
        let plan = build_iteration(
            &model.paper,
            model.network,
            model.geglu,
            flags_for_step(model, ablation, i),
            active_profile,
            batch,
        );
        dense_macs += plan.dense_equivalent_macs;
        sim.execute_iteration(&plan);
    }

    let detail = sim.finish();
    let dense_ops = 2.0 * dense_macs as f64;
    let latency_ms = detail.seconds * 1e3;
    let energy_mj = detail.total_energy_mj();
    let effective_tops = if detail.seconds > 0.0 {
        dense_ops / detail.seconds / 1e12
    } else {
        0.0
    };
    let tops_per_watt = if energy_mj > 0.0 {
        dense_ops / (energy_mj * 1e-3) / 1e12
    } else {
        0.0
    };
    Ok(PerfReport {
        name: format!("{}_{}", hw.name, ablation.suffix()),
        latency_ms,
        energy_mj,
        dense_ops,
        effective_tops,
        tops_per_watt,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;

    fn profile_for(model: &ModelConfig) -> SparsityProfile {
        SparsityProfile::analytic(
            model.ffn_reuse.target_sparsity,
            model.ep.paper_sparsity_pct / 100.0,
            16,
        )
    }

    #[test]
    fn ablations_strictly_improve_efficiency() {
        let model = ModelConfig::for_kind(ModelKind::Dit);
        let profile = profile_for(&model);
        let hw = HwConfig::exion24();
        let base = simulate_model(&hw, &model, &profile, SimAblation::Base, 1);
        let ep = simulate_model(&hw, &model, &profile, SimAblation::Ep, 1);
        let ffnr = simulate_model(&hw, &model, &profile, SimAblation::Ffnr, 1);
        let all = simulate_model(&hw, &model, &profile, SimAblation::All, 1);
        // Fig. 18's ordering: Base < EP < FFNR < All for DiT-like models.
        assert!(ep.tops_per_watt > base.tops_per_watt);
        assert!(ffnr.tops_per_watt > ep.tops_per_watt);
        assert!(all.tops_per_watt > ffnr.tops_per_watt);
        assert!(all.latency_ms < base.latency_ms);
    }

    #[test]
    fn base_effective_tops_bounded_by_peak() {
        let model = ModelConfig::for_kind(ModelKind::Dit);
        let hw = HwConfig::exion24();
        let base = simulate_model(&hw, &model, &SparsityProfile::dense(), SimAblation::Base, 8);
        assert!(base.effective_tops <= hw.peak_tops());
        assert!(base.effective_tops > 0.05 * hw.peak_tops());
    }

    #[test]
    fn sparsity_can_exceed_peak_effective_throughput() {
        // Skipped work counts in the numerator, so _All can beat peak TOPS —
        // this is how the paper reports up to 67.8 TOPS/W on a 39-TOPS part.
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let profile = profile_for(&model);
        let hw = HwConfig::exion24();
        let all = simulate_model(&hw, &model, &profile, SimAblation::All, 8);
        let base = simulate_model(&hw, &model, &profile, SimAblation::Base, 8);
        assert!(all.effective_tops > 2.0 * base.effective_tops);
    }

    #[test]
    fn batch_8_amortizes_weight_traffic() {
        let model = ModelConfig::for_kind(ModelKind::StableDiffusion);
        let profile = profile_for(&model);
        let hw = HwConfig::exion4();
        let b1 = simulate_model(&hw, &model, &profile, SimAblation::All, 1);
        let b8 = simulate_model(&hw, &model, &profile, SimAblation::All, 8);
        // 8× work in less than 8× latency.
        assert!(b8.latency_ms < 8.0 * b1.latency_ms);
        assert!(b8.latency_ms > b1.latency_ms);
    }

    #[test]
    fn report_shares_sum_to_one() {
        let model = ModelConfig::for_kind(ModelKind::Mld);
        let profile = profile_for(&model);
        let r = simulate_model(&HwConfig::exion4(), &model, &profile, SimAblation::All, 1);
        let total: f64 = Engine::ALL.iter().map(|&e| r.engine_share(e)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.mean_power_w() > 0.0);
    }

    #[test]
    fn try_simulate_matches_panicking_variant() {
        let model = ModelConfig::for_kind(ModelKind::Mld);
        let profile = profile_for(&model);
        let hw = HwConfig::exion4();
        let a = simulate_model(&hw, &model, &profile, SimAblation::All, 2);
        let b = try_simulate_model(&hw, &model, &profile, SimAblation::All, 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            try_simulate_model(&hw, &model, &profile, SimAblation::All, 0),
            Err(SimError::ZeroBatch)
        );
    }

    #[test]
    fn iteration_costs_sum_to_generation_latency() {
        // Warm per-iteration costs plus one cold first step reproduce the
        // end-to-end simulation within the pipeline-fill rounding.
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let profile = profile_for(&model);
        let hw = HwConfig::exion4();
        let full = simulate_model(&hw, &model, &profile, SimAblation::All, 1);
        let mut summed = 0.0;
        for step in 0..model.iterations {
            let frac = if step > 0 { 1.0 } else { 0.0 };
            let c =
                simulate_iteration(&hw, &model, &profile, SimAblation::All, 1, step, frac).unwrap();
            summed += c.latency_ms;
        }
        let gap = (summed - full.latency_ms).abs() / full.latency_ms;
        assert!(gap < 0.05, "sum {summed} vs full {}", full.latency_ms);
    }

    #[test]
    fn sparse_steps_are_cheaper_than_dense() {
        let model = ModelConfig::for_kind(ModelKind::Dit);
        let profile = profile_for(&model);
        let hw = HwConfig::exion24();
        let dense = simulate_iteration(&hw, &model, &profile, SimAblation::All, 4, 0, 1.0).unwrap();
        let sparse =
            simulate_iteration(&hw, &model, &profile, SimAblation::All, 4, 1, 1.0).unwrap();
        assert!(sparse.latency_ms < dense.latency_ms);
        assert!(sparse.energy_mj < dense.energy_mj);
        // Dense-equivalent work is identical either way.
        assert_eq!(sparse.dense_ops, dense.dense_ops);
    }

    #[test]
    fn residency_fraction_interpolates_cold_to_warm() {
        // MDM's weights fit the GSC entirely, so the requested fraction is
        // not capacity-capped and each residency level prices distinctly.
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let profile = profile_for(&model);
        let hw = HwConfig::exion4();
        let at = |frac: f64| {
            simulate_iteration(&hw, &model, &profile, SimAblation::All, 1, 0, frac)
                .unwrap()
                .latency_ms
        };
        let (cold, half, warm) = (at(0.0), at(0.5), at(1.0));
        // Latency is monotone non-increasing in residency: a cold start is
        // DRAM-bound and strictly slower; once the stream dips under the
        // compute time further residency cannot help (overlapped DMA).
        assert!(cold > half, "cold {cold} vs half {half}");
        assert!(half >= warm, "half {half} vs warm {warm}");
    }

    #[test]
    fn iteration_step_bounds_checked() {
        let model = ModelConfig::for_kind(ModelKind::Mld);
        let err = simulate_iteration(
            &HwConfig::exion4(),
            &model,
            &SparsityProfile::dense(),
            SimAblation::Base,
            1,
            model.iterations,
            1.0,
        );
        assert_eq!(
            err,
            Err(SimError::StepOutOfRange {
                step: model.iterations,
                iterations: model.iterations
            })
        );
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let model = ModelConfig::for_kind(ModelKind::Mld);
        let _ = simulate_model(
            &HwConfig::exion4(),
            &model,
            &SparsityProfile::dense(),
            SimAblation::Base,
            0,
        );
    }
}
