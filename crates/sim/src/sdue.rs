//! The sparse-dense unified engine (paper Section IV-B, Fig. 11).
//!
//! The SDUE is a 16×16 array of dot-product units. Dense MMULs broadcast
//! IMEM bank *i* to DPU lane *i* and WMEM bank *j* to array column *j*.
//! Merged blocks from ConMerge additionally use three switches per DPU:
//!
//! * `cv_sw` (per lane) selects which IMEM bank feeds the lane's *conflict
//!   line* — the conflict vector,
//! * `i_sw` (per DPU) picks the original or conflict input line,
//! * `w_sw` (per DPU) picks one of the three broadcast WMEM buffers.
//!
//! [`SdueModel::execute_merged_block`] implements those switch semantics
//! *functionally* — it is the proof that a ConMerge schedule computes exactly
//! the dense results — and the `*_cycles` methods give the performance model
//! used by the DSC timeline.

use exion_core::conmerge::MergedBlock;
use exion_tensor::{ops, Matrix};

use crate::config::DscGeometry;

/// One computed output element of a merged block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdueOutput {
    /// Input (token) row within the tile.
    pub input_row: usize,
    /// Original weight column.
    pub weight_col: usize,
    /// Dot-product value.
    pub value: f32,
}

/// SDUE functional and cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdueModel {
    geometry: DscGeometry,
}

impl SdueModel {
    /// Creates a model with the given array geometry.
    pub fn new(geometry: DscGeometry) -> Self {
        Self { geometry }
    }

    /// The array geometry.
    pub fn geometry(&self) -> DscGeometry {
        self.geometry
    }

    /// Cycles to execute one block (dense or merged) with inner dimension
    /// `k`: each DPU consumes `lane_length` operand pairs per cycle.
    pub fn block_cycles(&self, k: u64) -> u64 {
        k.div_ceil(self.geometry.lane_length as u64).max(1)
    }

    /// Cycles for a full MMUL of `m × k × n` executing `blocks_per_tile`
    /// blocks per row-tile (dense: `ceil(n / array_cols)`).
    pub fn mmul_cycles(&self, m: u64, k: u64, blocks_per_tile: f64) -> u64 {
        let row_tiles = m.div_ceil(self.geometry.array_rows as u64);
        let per_tile = (blocks_per_tile.max(0.0) * self.block_cycles(k) as f64).ceil() as u64;
        // A small drain/fill overhead per row-tile for accumulator flush and
        // output write-back.
        row_tiles * (per_tile + 2)
    }

    /// Dense blocks per row-tile for an `n`-column output.
    pub fn dense_blocks_per_tile(&self, n: u64) -> u64 {
        n.div_ceil(self.geometry.array_cols as u64)
    }

    /// Executes a merged block bit-faithfully through the switch semantics.
    ///
    /// `inputs` holds the tile's input rows (`tile_height × k`); `weights`
    /// holds the full weight matrix (`k × n_total`) indexed by each slot's
    /// original weight column.
    ///
    /// # Panics
    ///
    /// Panics if the block geometry exceeds the array, a slot references an
    /// input row outside the tile or a weight column outside `weights`, or a
    /// conflict-line slot disagrees with its lane's conflict vector (a
    /// ConMerge invariant violation).
    pub fn execute_merged_block(
        &self,
        block: &MergedBlock,
        inputs: &Matrix,
        weights: &Matrix,
    ) -> Vec<SdueOutput> {
        assert!(
            block.height() <= self.geometry.array_rows && block.width() <= self.geometry.array_cols,
            "merged block exceeds array geometry"
        );
        assert!(inputs.rows() >= block.height(), "missing input rows");
        assert_eq!(inputs.cols(), weights.rows(), "inner dimension mismatch");

        let mut out = Vec::with_capacity(block.occupied_slots());
        for lane in 0..block.height() {
            for col in 0..block.width() {
                let Some(slot) = block.slot(lane, col) else {
                    continue; // clock-gated DPU
                };
                // i_sw: original line carries the lane's own row; the conflict
                // line carries exactly the CV row.
                if slot.input_row != lane {
                    assert_eq!(
                        block.cv()[lane],
                        Some(slot.input_row),
                        "slot ({lane},{col}) reads row {} but CV is {:?}",
                        slot.input_row,
                        block.cv()[lane]
                    );
                }
                assert!(
                    slot.weight_col < weights.cols(),
                    "weight column out of range"
                );
                let w_col = weights.col(slot.weight_col);
                let value = ops::dot(inputs.row(slot.input_row), &w_col);
                out.push(SdueOutput {
                    input_row: slot.input_row,
                    weight_col: slot.weight_col,
                    value,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_core::bitmask::Bitmask2D;
    use exion_core::conmerge::{CompactionConfig, TileCompactor};
    use exion_tensor::rng::seeded_uniform;

    fn model() -> SdueModel {
        SdueModel::new(DscGeometry::exion())
    }

    #[test]
    fn block_cycles_scale_with_k() {
        let m = model();
        assert_eq!(m.block_cycles(16), 1);
        assert_eq!(m.block_cycles(17), 2);
        assert_eq!(m.block_cycles(256), 16);
        assert_eq!(m.block_cycles(0), 1);
    }

    #[test]
    fn dense_mmul_cycles() {
        let m = model();
        // 64×256×64: 4 row-tiles × 4 blocks × 16 cycles (+2 fill each).
        assert_eq!(m.mmul_cycles(64, 256, 4.0), 4 * (4 * 16 + 2));
        assert_eq!(m.dense_blocks_per_tile(64), 4);
    }

    #[test]
    fn merged_execution_matches_dense_mmul() {
        // End-to-end ConMerge validation: sparse output positions computed
        // through merged blocks equal the dense MMUL at those positions.
        let k = 24;
        let n = 48;
        let height = 16;
        let inputs = seeded_uniform(height, k, -1.0, 1.0, 1);
        let weights = seeded_uniform(k, n, -1.0, 1.0, 2);
        let dense = ops::matmul(&inputs, &weights);

        // An ~85%-sparse output bitmask.
        let mask = Bitmask2D::from_fn(height, n, |r, c| (r * 13 + c * 7) % 7 == 0);
        let compactor = TileCompactor::new(CompactionConfig::default());
        let result = compactor.compact_tile(&mask, 0, height);
        assert!(result.merged_blocks.len() < n.div_ceil(16));

        let sdue = model();
        let mut covered = 0usize;
        for block in &result.merged_blocks {
            for o in sdue.execute_merged_block(block, &inputs, &weights) {
                let want = dense[(o.input_row, o.weight_col)];
                assert!(
                    (o.value - want).abs() < 1e-4,
                    "({}, {}): {} vs {}",
                    o.input_row,
                    o.weight_col,
                    o.value,
                    want
                );
                assert!(mask.get(o.input_row, o.weight_col));
                covered += 1;
            }
        }
        assert_eq!(covered, mask.count_ones(), "every masked element computed");
    }

    #[test]
    fn merged_execution_respects_toy_geometry() {
        let sdue = SdueModel::new(DscGeometry::toy());
        let inputs = seeded_uniform(8, 12, -1.0, 1.0, 3);
        let weights = seeded_uniform(12, 9, -1.0, 1.0, 4);
        let mask = Bitmask2D::from_fn(8, 9, |r, c| (r + c) % 4 == 0);
        let compactor = TileCompactor::new(CompactionConfig::toy());
        let result = compactor.compact_tile(&mask, 0, 8);
        let dense = ops::matmul(&inputs, &weights);
        let mut covered = 0;
        for block in &result.merged_blocks {
            for o in sdue.execute_merged_block(block, &inputs, &weights) {
                assert!((o.value - dense[(o.input_row, o.weight_col)]).abs() < 1e-4);
                covered += 1;
            }
        }
        assert_eq!(covered, mask.count_ones());
    }

    #[test]
    #[should_panic(expected = "exceeds array geometry")]
    fn oversized_block_rejected() {
        let sdue = SdueModel::new(DscGeometry::toy());
        let mask = Bitmask2D::ones(16, 16);
        let compactor = TileCompactor::new(CompactionConfig::default());
        let result = compactor.compact_tile(&mask, 0, 16);
        let inputs = Matrix::zeros(16, 4);
        let weights = Matrix::zeros(4, 16);
        let _ = sdue.execute_merged_block(&result.merged_blocks[0], &inputs, &weights);
    }
}
