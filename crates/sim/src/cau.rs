//! The ConMerge assistant unit's cycle model (paper Section IV-C,
//! Figs. 12–14).
//!
//! The CAU classifies column bitmasks, sorts them coarsely in the SortBuffer,
//! and generates ConMerge vectors in the CVG. Its exact cycle behaviour is
//! implemented in `exion_core::conmerge::cvg` (shared with the algorithmic
//! experiments); this module wraps it for the DSC timeline and adds the
//! analytic estimate used when only sparsity summaries are available.

use exion_core::conmerge::cvg::CvgResult;

/// CAU cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CauModel {
    /// Array width (block width in columns).
    pub width: usize,
}

impl CauModel {
    /// Creates a model for `width`-column blocks.
    pub fn new(width: usize) -> Self {
        Self { width }
    }

    /// Exact cycles of a measured CVG run.
    pub fn measured_cycles(result: &CvgResult) -> u64 {
        result.cycles
    }

    /// Analytic estimate of CVG cycles for one row-tile with `cols` columns
    /// of which `surviving_frac` survive condensing: classification (1/col) +
    /// block reads + ~2 successful merge attempts per output block with a
    /// handful of conflict resolutions each (sorted merging keeps failures
    /// rare, Fig. 12).
    pub fn estimate_cycles(&self, cols: u64, surviving_frac: f64) -> u64 {
        let surviving = (cols as f64 * surviving_frac.clamp(0.0, 1.0)).ceil();
        let blocks = (surviving / self.width as f64).ceil();
        let merges = blocks; // ~2 merges per emitted block ≈ 1 per input block
        let resolution = 6.0; // map + DOF + ~4 relocations per attempt
        cols + blocks as u64 + (merges * resolution) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_core::conmerge::{ColumnEntry, VectorGenerator};

    #[test]
    fn estimate_scales_with_columns() {
        let m = CauModel::new(16);
        assert!(m.estimate_cycles(4096, 0.4) > m.estimate_cycles(1024, 0.4));
        assert!(m.estimate_cycles(1024, 0.8) > m.estimate_cycles(1024, 0.2));
    }

    #[test]
    fn estimate_tracks_measured_within_factor() {
        // The analytic estimate should be the same order of magnitude as a
        // real CVG run on a random sparse tile.
        let cols = 512usize;
        let entries: Vec<ColumnEntry> = (0..cols)
            .map(|origin| ColumnEntry {
                origin,
                mask: if origin % 3 == 0 {
                    1u64 << (origin % 16)
                } else {
                    0
                },
            })
            .collect();
        let result = VectorGenerator::new(16, 16, true).generate(entries);
        let measured = CauModel::measured_cycles(&result);
        let estimate = CauModel::new(16).estimate_cycles(cols as u64, 1.0 / 3.0);
        let ratio = measured as f64 / estimate as f64;
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zero_survivors_cost_classification_only() {
        let m = CauModel::new(16);
        assert_eq!(m.estimate_cycles(100, 0.0), 100);
    }
}
